//! Worker-pool soak tests for the serving layer: multi-relation isolation
//! and admission control under load.
//!
//! The pinned guarantees:
//! * a deliberately **slow relation** (its evaluation sleeps) must not
//!   delay another relation's flush past its deadline plus scheduling
//!   noise — that is exactly what the flush worker pool buys over PR 5's
//!   single flusher thread, and the single-worker control shows the
//!   inverse: with one worker the fast relation *is* stuck behind the
//!   sleeper;
//! * with a bounded per-relation queue, `try_submit` **sheds** with
//!   [`QueryError::Overloaded`] once the bound fills, the shed count is
//!   observable through [`ServeMetrics`], and every *accepted* query still
//!   resolves exactly once;
//! * a mixed multi-relation trace under many clients conserves queries:
//!   `accepted + shed == attempts`, every accepted handle resolves, and
//!   the per-server flush counters agree.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use prf::core::query::CorrelationClass;
use prf::prelude::*;

fn small_db(n: usize) -> IndependentDb {
    IndependentDb::from_pairs(
        (0..n).map(|i| (100.0 - i as f64, 0.2 + 0.6 * ((i % 5) as f64 / 5.0))),
    )
    .expect("valid pairs")
}

/// A relation whose evaluation sleeps: delegates every view to an inner
/// [`IndependentDb`] but stalls the PRF kernels, so any flush against it
/// occupies its worker for `delay`. `evaluations` counts kernel entries,
/// letting tests confirm the sleeper actually ran.
struct SlowRelation {
    inner: IndependentDb,
    delay: Duration,
    evaluations: AtomicUsize,
}

impl SlowRelation {
    fn new(n: usize, delay: Duration) -> Self {
        Self {
            inner: small_db(n),
            delay,
            evaluations: AtomicUsize::new(0),
        }
    }

    fn stall(&self) {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        thread::sleep(self.delay);
    }
}

impl ProbabilisticRelation for SlowRelation {
    fn n_tuples(&self) -> usize {
        self.inner.n_tuples()
    }
    fn tuple_scores(&self) -> Vec<f64> {
        self.inner.tuple_scores()
    }
    fn tuple_marginals(&self) -> Vec<f64> {
        self.inner.tuple_marginals()
    }
    fn correlation_class(&self) -> CorrelationClass {
        CorrelationClass::Independent
    }
    fn prf_values(
        &self,
        omega: &(dyn prf::core::WeightFunction + Sync),
        threads: Option<usize>,
    ) -> Vec<Complex> {
        self.stall();
        self.inner.prf_values(omega, threads)
    }
    fn prfe_values(&self, alpha: Complex) -> Vec<Complex> {
        self.stall();
        self.inner.prfe_values(alpha)
    }
}

// ---------------------------------------------------------------------
// Worker-pool isolation
// ---------------------------------------------------------------------

/// With two workers, a flush of the sleeping relation occupies one worker
/// while the other keeps serving the fast relation within its deadline.
#[test]
fn slow_relation_does_not_starve_a_fast_relation() {
    let slow = Arc::new(SlowRelation::new(6, Duration::from_secs(2)));
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_millis(5))
            .max_batch(64)
            .workers(2),
    );
    let slow_rel = server.register_shared("slow", slow.clone());
    let fast_rel = server.register("fast", small_db(8));

    let slow_handle = server.submit(slow_rel, RankQuery::prfe(0.9)).unwrap();
    // Give the 5 ms deadline time to fire and a worker time to enter the
    // sleeping kernel.
    while slow.evaluations.load(Ordering::Relaxed) == 0 {
        thread::sleep(Duration::from_millis(1));
    }

    // The fast relation's flush must ride the second worker: it resolves
    // in far less than the 2 s the sleeper holds its worker for.
    let started = Instant::now();
    let mut fast_handle = server.submit(fast_rel, RankQuery::pt(3)).unwrap();
    let fast = fast_handle
        .recv_timeout(Duration::from_millis(800))
        .expect("fast relation must flush while the sleeper holds one worker")
        .expect("fast query succeeds");
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "fast flush waited on the sleeper"
    );
    let cost = fast.report.serve.expect("provenance");
    assert!(
        cost.queue_seconds < 1.0,
        "fast query queued {:.3}s behind the slow relation",
        cost.queue_seconds
    );

    // The sleeper still completes.
    let slow_res = slow_handle.recv().expect("slow query completes");
    assert_eq!(slow_res.values.len(), 6);
    server.shutdown();
}

/// The single-worker control: with one worker the sleeper's flush blocks
/// the fast relation — the pool, not luck, is what isolates relations.
#[test]
fn one_worker_serializes_relations_the_pool_isolates() {
    let slow = Arc::new(SlowRelation::new(6, Duration::from_secs(2)));
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_millis(5))
            .max_batch(64)
            .workers(1),
    );
    let slow_rel = server.register_shared("slow", slow.clone());
    let fast_rel = server.register("fast", small_db(8));

    let slow_handle = server.submit(slow_rel, RankQuery::prfe(0.9)).unwrap();
    while slow.evaluations.load(Ordering::Relaxed) == 0 {
        thread::sleep(Duration::from_millis(1));
    }

    let mut fast_handle = server.submit(fast_rel, RankQuery::pt(3)).unwrap();
    // The only worker sleeps for ~2 s: the fast flush cannot have run yet.
    assert!(
        fast_handle
            .recv_timeout(Duration::from_millis(300))
            .is_none(),
        "a single worker should still be inside the sleeping flush"
    );
    // Once the sleeper finishes, the fast query drains normally.
    let fast = fast_handle.recv().expect("fast query eventually runs");
    assert!(fast.report.serve.unwrap().queue_seconds > 0.2);
    assert!(slow_handle.recv().is_ok());
    server.shutdown();
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

/// Fill a bounded queue behind a sleeping flush: `try_submit` sheds with
/// `Overloaded`, the shed count surfaces in the metrics, and every
/// accepted query resolves.
#[test]
fn bounded_queue_sheds_with_overloaded_and_accepted_queries_resolve() {
    let slow = Arc::new(SlowRelation::new(5, Duration::from_millis(600)));
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::ZERO) // first submit flushes immediately
            .max_batch(1000)
            .workers(1)
            .max_pending(3),
    );
    let rel = server.register_shared("slow", slow.clone());

    // Occupies the worker for ~600 ms.
    let first = server.try_submit(rel, RankQuery::prfe(0.9)).unwrap();
    while slow.evaluations.load(Ordering::Relaxed) == 0 {
        thread::sleep(Duration::from_millis(1));
    }

    // The worker is asleep: these three fill the bounded queue…
    let queued: Vec<_> = (1..=3)
        .map(|h| server.try_submit(rel, RankQuery::pt(h)).unwrap())
        .collect();
    // …and the fourth must shed.
    let shed = server.try_submit(rel, RankQuery::pt(4));
    assert!(matches!(shed, Err(QueryError::Overloaded)), "{shed:?}");
    assert_eq!(server.metrics().shed, 1);

    // Every accepted query still resolves (exactly once: recv consumes).
    assert!(first.recv().is_ok());
    server.shutdown();
    for handle in queued {
        let res = handle.recv().expect("queued queries drain");
        // The flush that carries them reports the sheds observed so far.
        assert_eq!(res.report.serve.unwrap().shed, 1);
    }
    assert_eq!(server.metrics().shed, 1);
}

/// Blocking `submit` never sheds: it waits for space instead, so under
/// the same overload every submission is eventually accepted and served.
#[test]
fn blocking_submit_backpressures_instead_of_shedding() {
    let slow = Arc::new(SlowRelation::new(5, Duration::from_millis(200)));
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::ZERO)
            .max_batch(1000)
            .workers(1)
            .max_pending(2),
    );
    let rel = server.register_shared("slow", slow);

    let handles: Vec<_> = thread::scope(|s| {
        (0..4)
            .map(|c| {
                let server = &server;
                s.spawn(move || {
                    (0..3)
                        .map(|i| server.submit(rel, RankQuery::pt(1 + (c + i) % 5)).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|w| w.join().expect("client"))
            .collect()
    });
    assert_eq!(server.metrics().shed, 0, "submit must never shed");
    server.shutdown();
    for handle in handles {
        assert!(handle.recv().is_ok(), "backpressured queries all resolve");
    }
}

// ---------------------------------------------------------------------
// Mixed multi-relation soak
// ---------------------------------------------------------------------

/// Many clients hammer three relations (one slow) through a bounded
/// queue, mixing `submit` and `try_submit`. Conservation must hold:
/// every attempt is accepted or shed, every accepted handle resolves to
/// its own relation's answer, and the server's flush counters agree.
#[test]
fn mixed_trace_conserves_queries_under_overload() {
    let slow = Arc::new(SlowRelation::new(4, Duration::from_millis(30)));
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_millis(1))
            .max_batch(8)
            .workers(3)
            .max_pending(4),
    );
    let rels = [
        server.register("a", small_db(7)),
        server.register("b", small_db(5)),
        server.register_shared("slow", slow),
    ];
    let sizes = [7usize, 5, 4];

    let (resolved, shed) = thread::scope(|s| {
        let workers: Vec<_> = (0..8)
            .map(|c: usize| {
                let server = &server;
                let rels = &rels;
                s.spawn(move || {
                    let mut accepted = Vec::new();
                    let mut shed = 0usize;
                    for i in 0..30usize {
                        let r = (c + i) % 3;
                        let q = RankQuery::pt(1 + i % sizes[r]);
                        if i % 2 == 0 {
                            accepted.push((r, server.submit(rels[r], q).unwrap()));
                        } else {
                            match server.try_submit(rels[r], q) {
                                Ok(h) => accepted.push((r, h)),
                                Err(QueryError::Overloaded) => shed += 1,
                                Err(e) => panic!("unexpected rejection: {e}"),
                            }
                        }
                    }
                    (accepted, shed)
                })
            })
            .collect();
        let mut resolved = Vec::new();
        let mut shed_total = 0usize;
        for w in workers {
            let (accepted, shed) = w.join().expect("client");
            shed_total += shed;
            resolved.extend(accepted);
        }
        (resolved, shed_total)
    });

    assert_eq!(resolved.len() + shed, 8 * 30, "every attempt accounted for");
    assert_eq!(server.metrics().shed as usize, shed);
    server.shutdown();
    let accepted = resolved.len();
    for (r, handle) in resolved {
        let res = handle.recv().expect("accepted queries resolve");
        assert_eq!(
            res.values.len(),
            sizes[r],
            "answer routed to wrong relation"
        );
    }
    let metrics = server.metrics();
    assert_eq!(metrics.flushed_queries as usize, accepted);
    assert_eq!(metrics.pending, 0);
    assert_eq!(metrics.in_flight, 0);
}

// ---------------------------------------------------------------------
// Injected-fault soak (chaos builds only)
// ---------------------------------------------------------------------

/// Soak the pool with a burst of panics, a mutation-path panic, and two
/// worker kills while many clients submit: **zero wedged handles** — every
/// accepted submission resolves within the timeout, to a sanctioned
/// outcome, and the pool is healthy enough afterwards to serve cleanly.
#[cfg(feature = "chaos")]
#[test]
fn injected_fault_soak_leaves_no_wedged_handles() {
    use prf::serve::{FaultKind, FaultPlan};

    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_micros(100))
            .max_batch(8)
            .workers(2)
            .stuck_after(Duration::from_millis(200)),
    );
    server.inject_faults(
        FaultPlan::new()
            .times("eval", FaultKind::Panic, 5)
            .times("deliver", FaultKind::Panic, 3)
            .times("apply", FaultKind::Panic, 2)
            .times("worker", FaultKind::KillWorker, 2)
            .times(
                "flush-take",
                FaultKind::Delay(Duration::from_micros(200)),
                4,
            ),
    );
    let live = Arc::new(LiveRelation::new(small_db(6)));
    let rels = [
        server.register("a", small_db(7)),
        server.register_live("live", Arc::clone(&live)),
    ];

    let (handles, acks) = thread::scope(|s| {
        let workers: Vec<_> = (0..6)
            .map(|c: usize| {
                let server = &server;
                let rels = &rels;
                s.spawn(move || {
                    let mut handles = Vec::new();
                    let mut acks = Vec::new();
                    for i in 0..40usize {
                        if (c + i) % 10 == 0 {
                            let m = Mutation::Reweight(TupleId((i % 6) as u32), 0.5);
                            acks.push(server.apply(rels[1], m).expect("accepted"));
                        } else {
                            let q = RankQuery::pt(1 + i % 6);
                            handles.push(server.submit(rels[(c + i) % 2], q).expect("accepted"));
                        }
                    }
                    (handles, acks)
                })
            })
            .collect();
        let mut handles = Vec::new();
        let mut acks = Vec::new();
        for w in workers {
            let (h, a) = w.join().expect("client");
            handles.extend(h);
            acks.extend(a);
        }
        (handles, acks)
    });

    let mut wedged = 0usize;
    for mut handle in handles {
        match handle.recv_timeout(Duration::from_secs(30)) {
            Some(Ok(_)) | Some(Err(QueryError::Internal { .. })) => {}
            Some(Err(e)) => panic!("soak handle resolved uncleanly: {e}"),
            None => wedged += 1,
        }
    }
    for mut ack in acks {
        match ack.recv_timeout(Duration::from_secs(30)) {
            Some(Ok(_)) | Some(Err(QueryError::Internal { .. })) => {}
            Some(Err(e)) => panic!("soak mutation resolved uncleanly: {e}"),
            None => wedged += 1,
        }
    }
    assert_eq!(wedged, 0, "every handle must resolve under injected faults");

    // The pool recovered: once the (finite) plan exhausts, a clean query
    // round-trips. Early retries may still absorb leftover armed faults.
    let recovered = (0..20).any(|_| {
        let after = server.submit(rels[0], RankQuery::pt(2)).expect("accepted");
        after.recv().is_ok()
    });
    assert!(
        recovered,
        "pool serves cleanly once the fault plan is exhausted"
    );
    assert!(server.metrics().panics_caught >= 1);
    server.shutdown();
}
