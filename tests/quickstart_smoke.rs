//! Smoke test pinning the crate-level "Thirty-second tour" (`src/lib.rs`)
//! to a deterministic, hand-checkable 3-tuple ranking.

use prf::prelude::*;

#[test]
fn quickstart_tour_is_deterministic() {
    // Identical to the lib.rs doctest: (score, existence probability).
    let db = IndependentDb::from_pairs([
        (100.0, 0.5), // t0: great score, coin-flip existence
        (50.0, 1.0),  // t1: mediocre but certain
        (80.0, 0.8),  // t2
    ])
    .unwrap();

    // PT(2) = Pr(rank ≤ 2), checkable by hand:
    //   t0 ranks first whenever present              → 0.5
    //   t2 ranks ≤ 2 whenever present                → 0.8
    //   t1 ranks ≤ 2 unless both t0 and t2 exist     → 1 − 0.5·0.8 = 0.6
    let pt = RankQuery::pt(2).run(&db).unwrap();
    let v = pt.values.as_complex().expect("exact PT values are complex");
    assert!((v[0].re - 0.5).abs() < 1e-12);
    assert!((v[1].re - 0.6).abs() < 1e-12);
    assert!((v[2].re - 0.8).abs() < 1e-12);
    assert_eq!(pt.ranking.order(), &[TupleId(2), TupleId(1), TupleId(0)]);
    assert_eq!(pt.report.algorithm, Algorithm::ExactGf);
    assert!(pt.report.auto_selected);

    // PRFe(0.9), also checkable by hand (Υ(t) = Σᵢ 0.9^i · Pr(r(t) = i)):
    //   t1: 0.1·0.9 + 0.5·0.81 + 0.4·0.729 = 0.7866
    //   t2: 0.4·0.9 + 0.4·0.81             = 0.684
    //   t0: 0.5·0.9                        = 0.45
    // Its top choice (t1) differs from PT(2)'s (t2) — the paper's point:
    // different ω, different ranking.
    let prfe = RankQuery::prfe(0.9).run(&db).unwrap();
    let v = prfe.values.as_complex().expect("small n stays exact");
    assert!((v[0].re - 0.45).abs() < 1e-12);
    assert!((v[1].re - 0.7866).abs() < 1e-12);
    assert!((v[2].re - 0.684).abs() < 1e-12);
    assert_eq!(prfe.ranking.order(), &[TupleId(1), TupleId(2), TupleId(0)]);

    // The identical query runs unchanged on correlated data and agrees on
    // independent input.
    let tree = AndXorTree::from_independent(&db);
    let correlated = RankQuery::prfe(0.9).run(&tree).unwrap();
    assert_eq!(prfe.ranking.order(), correlated.ranking.order());

    // Both rankings are stable across runs.
    let rerun = RankQuery::prfe(0.9).run(&db).unwrap();
    assert_eq!(prfe.ranking.order(), rerun.ranking.order());

    // The legacy free functions remain wrappers over the same machinery.
    let legacy = prf::baselines::pt_ranking(&db, 2);
    assert_eq!(legacy.order(), pt.ranking.order());
}
