//! Smoke test pinning the crate-level "Thirty-second tour" (`src/lib.rs`)
//! to a deterministic, hand-checkable 3-tuple ranking.

use prf::core::{prf_rank, prfe_rank_log, Ranking, StepWeight, ValueOrder};
use prf::pdb::{IndependentDb, TupleId};

#[test]
fn quickstart_tour_is_deterministic() {
    // Identical to the lib.rs doctest: (score, existence probability).
    let db = IndependentDb::from_pairs([
        (100.0, 0.5), // t0: great score, coin-flip existence
        (50.0, 1.0),  // t1: mediocre but certain
        (80.0, 0.8),  // t2
    ])
    .unwrap();

    // PT(2) = Pr(rank ≤ 2), checkable by hand:
    //   t0 ranks first whenever present              → 0.5
    //   t2 ranks ≤ 2 whenever present                → 0.8
    //   t1 ranks ≤ 2 unless both t0 and t2 exist     → 1 − 0.5·0.8 = 0.6
    let pt = prf_rank(&db, &StepWeight { h: 2 });
    assert!((pt[0].re - 0.5).abs() < 1e-12);
    assert!((pt[1].re - 0.6).abs() < 1e-12);
    assert!((pt[2].re - 0.8).abs() < 1e-12);
    let pt_rank = Ranking::from_values(&pt, ValueOrder::RealPart);
    assert_eq!(pt_rank.order(), &[TupleId(2), TupleId(1), TupleId(0)]);

    // PRFe(0.9), also checkable by hand (Υ(t) = Σᵢ 0.9^i · Pr(r(t) = i)):
    //   t1: 0.1·0.9 + 0.5·0.81 + 0.4·0.729 = 0.7866
    //   t2: 0.4·0.9 + 0.4·0.81             = 0.684
    //   t0: 0.5·0.9                        = 0.45
    // Its top choice (t1) differs from PT(2)'s (t2) — the paper's point:
    // different ω, different ranking.
    let keys = prfe_rank_log(&db, 0.9);
    assert!((keys[0] - 0.45f64.ln()).abs() < 1e-9);
    assert!((keys[1] - 0.7866f64.ln()).abs() < 1e-9);
    assert!((keys[2] - 0.684f64.ln()).abs() < 1e-9);
    let prfe = Ranking::from_keys(&keys);
    assert_eq!(prfe.order(), &[TupleId(1), TupleId(2), TupleId(0)]);

    // Both rankings are permutations of {t0, t1, t2} and stable across runs.
    let rerun = Ranking::from_keys(&prfe_rank_log(&db, 0.9));
    assert_eq!(prfe.order(), rerun.order());
}
