//! Differential suite for live relations: after every mutation,
//! **mutate-then-query** (running queries against the patched
//! [`LiveRelation`]) must agree with **rebuild-then-query** (cloning the
//! mutated backend and evaluating from scratch) to 1e-9 — across both
//! mutable backends (`IndependentDb`, `AndXorTree`), every shared-walk
//! semantics, and all three numeric modes (plain complex, log-domain,
//! scaled).
//!
//! Comparisons are on the Υ *values*, not the orders: probabilities are
//! chosen distinct so rankings agree too, but a value comparison cannot be
//! fooled by a tie broken differently on the two paths.

use prf::prelude::*;

const TOL: f64 = 1e-9;

/// The query battery: every shared-walk semantics, with PRFe exercised in
/// all three numeric modes. Log-domain applies to PRFe with real α only —
/// the other semantics run in their supported modes.
fn battery() -> Vec<(&'static str, RankQuery)> {
    vec![
        (
            "prfe-complex",
            RankQuery::prfe(0.85).algorithm(Algorithm::ExactGf),
        ),
        (
            "prfe-log",
            RankQuery::prfe(0.85).algorithm(Algorithm::LogDomain),
        ),
        (
            "prfe-scaled",
            RankQuery::prfe(0.85).algorithm(Algorithm::Scaled),
        ),
        ("prfe-auto", RankQuery::prfe(0.6)),
        ("pt", RankQuery::pt(5)),
        ("prf-linear", RankQuery::prf(LinearWeight)),
        ("urank", RankQuery::urank(3)),
        ("utop", RankQuery::utop(3)),
        ("erank", RankQuery::erank()),
        ("escore", RankQuery::escore()),
        ("consensus", RankQuery::consensus(3)),
    ]
}

fn close(a: f64, b: f64, ctx: &str) {
    if a.is_infinite() && b.is_infinite() && a.signum() == b.signum() {
        return;
    }
    let err = (a - b).abs() / (1.0 + b.abs());
    assert!(err <= TOL, "{ctx}: {a} vs {b} (rel err {err:.3e})");
}

fn assert_values_close(live: &Values, rebuilt: &Values, ctx: &str) {
    assert_eq!(live.len(), rebuilt.len(), "{ctx}: value count");
    match (live, rebuilt) {
        (Values::Complex(a), Values::Complex(b)) => {
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                close(x.re, y.re, &format!("{ctx}[{i}].re"));
                close(x.im, y.im, &format!("{ctx}[{i}].im"));
            }
        }
        (Values::LogDomain(a), Values::LogDomain(b)) => {
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                close(*x, *y, &format!("{ctx}[{i}].ln"));
            }
        }
        (Values::Scaled(a), Values::Scaled(b)) => {
            // Small test relations: the plain value is representable.
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                let (x, y) = (x.to_plain(), y.to_plain());
                close(x.re, y.re, &format!("{ctx}[{i}].re"));
                close(x.im, y.im, &format!("{ctx}[{i}].im"));
            }
        }
        _ => panic!("{ctx}: numeric modes diverged between live and rebuilt"),
    }
}

/// The battery for correlated (tree) backends: same as [`battery`] minus
/// U-Top, whose most-probable-set search on correlated data enumerates
/// exponentially many candidate sets (~20 s at n = 40 in debug builds) —
/// U-Top × mutation coverage comes from the independent script.
fn tree_battery() -> Vec<(&'static str, RankQuery)> {
    battery()
        .into_iter()
        .filter(|(l, _)| *l != "utop")
        .collect()
}

/// The cheap subset used on every churn step (the full battery runs at the
/// structural checkpoints): PRFe in all three numeric modes plus one
/// weight-function semantics.
fn fast_battery() -> Vec<(&'static str, RankQuery)> {
    vec![
        (
            "prfe-complex",
            RankQuery::prfe(0.85).algorithm(Algorithm::ExactGf),
        ),
        (
            "prfe-log",
            RankQuery::prfe(0.85).algorithm(Algorithm::LogDomain),
        ),
        (
            "prfe-scaled",
            RankQuery::prfe(0.85).algorithm(Algorithm::Scaled),
        ),
        ("pt", RankQuery::pt(5)),
    ]
}

/// Runs a query battery against the live wrapper and against a freshly
/// rebuilt backend, comparing values (and, with distinct probabilities,
/// orders).
fn assert_live_matches_rebuild_with<B>(
    live: &LiveRelation<B>,
    ctx: &str,
    queries: Vec<(&'static str, RankQuery)>,
) where
    B: MutableRelation + Clone + Send + Sync,
{
    let rebuilt = live.snapshot_backend();
    for (label, query) in queries {
        let ctx = format!("{ctx}/{label}");
        let via_live = query.clone().run(live);
        let via_rebuild = query.run(&rebuilt);
        match (via_live, via_rebuild) {
            (Ok(l), Ok(r)) => {
                assert_values_close(&l.values, &r.values, &ctx);
                assert_eq!(l.ranking.order(), r.ranking.order(), "{ctx}: ranking order");
            }
            (Err(l), Err(r)) => {
                assert_eq!(l.to_string(), r.to_string(), "{ctx}: errors must match");
            }
            (l, r) => panic!("{ctx}: live {l:?} vs rebuilt {r:?}"),
        }
    }
}

/// The full battery at a structural checkpoint.
fn assert_live_matches_rebuild<B>(live: &LiveRelation<B>, ctx: &str)
where
    B: MutableRelation + Clone + Send + Sync,
{
    assert_live_matches_rebuild_with(live, ctx, battery());
}

/// Distinct scores and probabilities so no tie can mask a diff.
fn seed_db(n: usize) -> IndependentDb {
    IndependentDb::from_pairs((0..n).map(|i| {
        let score = 1000.0 - (i as f64) * 1.37;
        let prob = 0.05 + 0.9 * (((i * 7919) % 997) as f64 / 997.0);
        (score, prob)
    }))
    .expect("valid pairs")
}

#[test]
fn independent_mutation_script_matches_rebuild() {
    let live = LiveRelation::new(seed_db(40));
    assert_live_matches_rebuild(&live, "ind/seed");

    // Reweight (patched in place), including the extremes.
    live.apply(&Mutation::Reweight(TupleId(17), 0.915)).unwrap();
    assert_live_matches_rebuild(&live, "ind/reweight");
    live.apply(&Mutation::Reweight(TupleId(0), 1.0)).unwrap();
    assert_live_matches_rebuild(&live, "ind/reweight-to-one");

    // Inserts at the top, middle, and bottom of the score order.
    live.apply(&Mutation::Insert {
        score: 2000.0,
        prob: 0.33,
    })
    .unwrap();
    live.apply(&Mutation::Insert {
        score: 955.5,
        prob: 0.44,
    })
    .unwrap();
    live.apply(&Mutation::Insert {
        score: -5.0,
        prob: 0.55,
    })
    .unwrap();
    assert_live_matches_rebuild(&live, "ind/insert");

    // Deletes, including a just-inserted tuple (ids renumber densely).
    live.apply(&Mutation::Delete(TupleId(5))).unwrap();
    assert_live_matches_rebuild(&live, "ind/delete");
    let effect = live
        .apply(&Mutation::Insert {
            score: 500.0,
            prob: 0.66,
        })
        .unwrap();
    let MutationEffect::Inserted(fresh) = effect else {
        panic!("insert must report Inserted, got {effect:?}");
    };
    live.apply(&Mutation::Delete(fresh)).unwrap();
    assert_live_matches_rebuild(&live, "ind/insert-then-delete");

    // Interleaved churn.
    for step in 0..10 {
        let n = live.n_tuples();
        match step % 3 {
            0 => {
                let t = TupleId(((step * 13) % n) as u32);
                let p = 0.1 + 0.08 * step as f64;
                live.apply(&Mutation::Reweight(t, p)).unwrap();
            }
            1 => {
                live.apply(&Mutation::Insert {
                    score: 100.0 + 31.7 * step as f64,
                    prob: 0.2 + 0.05 * step as f64,
                })
                .unwrap();
            }
            _ => {
                let t = TupleId(((step * 7) % n) as u32);
                live.apply(&Mutation::Delete(t)).unwrap();
            }
        }
        assert_live_matches_rebuild_with(&live, &format!("ind/churn-{step}"), fast_battery());
    }
    assert_live_matches_rebuild(&live, "ind/final");
}

#[test]
fn tree_mutation_script_matches_rebuild() {
    // A correlated backend: x-tuples (exclusive groups) under an ∧ root.
    let mut builder = TreeBuilder::new(NodeKind::And);
    let root = builder.root();
    let mut leaves = Vec::new();
    for g in 0..12 {
        let group = builder.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        for j in 0..4 {
            let prob = 0.03 + 0.05 * j as f64 + 0.012 * g as f64;
            let score = 500.0 - (g * 4 + j) as f64 * 3.3;
            leaves.push(builder.add_leaf(group, prob, score).unwrap());
        }
    }
    let live = LiveRelation::new(builder.build().expect("valid tree"));
    assert_live_matches_rebuild_with(&live, "tree/seed", tree_battery());

    // Reweight leaves across different exclusive groups.
    live.apply(&Mutation::Reweight(leaves[2], 0.31)).unwrap();
    live.apply(&Mutation::Reweight(leaves[45], 0.012)).unwrap();
    assert_live_matches_rebuild_with(&live, "tree/reweight", tree_battery());

    // Inserts: under an ∧ root each lands as its own fresh singleton group.
    live.apply(&Mutation::Insert {
        score: 1000.0,
        prob: 0.27,
    })
    .unwrap();
    live.apply(&Mutation::Insert {
        score: 250.1,
        prob: 0.61,
    })
    .unwrap();
    assert_live_matches_rebuild_with(&live, "tree/insert", tree_battery());

    // Deletes, then churn mixing all three mutations.
    live.apply(&Mutation::Delete(leaves[7])).unwrap();
    assert_live_matches_rebuild_with(&live, "tree/delete", tree_battery());
    for step in 0..8 {
        let n = live.n_tuples();
        match step % 3 {
            0 => {
                let t = TupleId(((step * 11) % n) as u32);
                live.apply(&Mutation::Reweight(t, 0.02 + 0.01 * step as f64))
                    .unwrap();
            }
            1 => {
                live.apply(&Mutation::Insert {
                    score: 600.0 + 13.3 * step as f64,
                    prob: 0.1 + 0.04 * step as f64,
                })
                .unwrap();
            }
            _ => {
                let t = TupleId(((step * 5) % n) as u32);
                live.apply(&Mutation::Delete(t)).unwrap();
            }
        }
        assert_live_matches_rebuild_with(&live, &format!("tree/churn-{step}"), fast_battery());
    }
    assert_live_matches_rebuild_with(&live, "tree/final", tree_battery());
}

#[test]
fn xor_root_insert_joins_the_exclusive_group() {
    // Under a ∨ root an insert joins the root's exclusive group — the sum
    // constraint must keep holding and queries must match a rebuild.
    let mut builder = TreeBuilder::new(NodeKind::Xor);
    let root = builder.root();
    for j in 0..6 {
        builder
            .add_leaf(root, 0.04 + 0.02 * j as f64, 90.0 - j as f64)
            .unwrap();
    }
    let live = LiveRelation::new(builder.build().expect("valid tree"));
    live.apply(&Mutation::Insert {
        score: 95.0,
        prob: 0.11,
    })
    .unwrap();
    assert_live_matches_rebuild_with(&live, "xor-root/insert", tree_battery());

    // Overfilling the group must be rejected and change nothing.
    let before = live.generation();
    let err = live.apply(&Mutation::Insert {
        score: 99.0,
        prob: 0.95,
    });
    assert!(err.is_err(), "group sum > 1 must be rejected");
    assert_eq!(live.generation(), before, "failed mutation bumps nothing");
    assert_live_matches_rebuild_with(&live, "xor-root/rejected-insert", tree_battery());
}

#[test]
fn served_mutations_match_offline_rebuild() {
    // End-to-end through the server: apply a mutation script via
    // `RankServer::apply`, then check a served query against an offline
    // rebuild of the final backend state.
    use std::time::Duration;

    let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
    let live = std::sync::Arc::new(LiveRelation::new(seed_db(40)));
    let rel = server.register_live("live", std::sync::Arc::clone(&live));

    for (i, m) in [
        Mutation::Reweight(TupleId(3), 0.77),
        Mutation::Insert {
            score: 1500.0,
            prob: 0.5,
        },
        Mutation::Delete(TupleId(11)),
        Mutation::Reweight(TupleId(0), 0.123),
    ]
    .into_iter()
    .enumerate()
    {
        let effect = server.apply(rel, m).unwrap().recv();
        assert!(effect.is_ok(), "mutation {i} failed: {effect:?}");
    }

    let rebuilt = live.snapshot_backend();
    for (label, query) in battery() {
        let served = server.submit(rel, query.clone()).unwrap().recv();
        let direct = query.run(&rebuilt);
        match (served, direct) {
            (Ok(s), Ok(d)) => {
                assert_values_close(&s.values, &d.values, &format!("served/{label}"));
                assert_eq!(s.ranking.order(), d.ranking.order(), "served/{label}");
            }
            (Err(s), Err(d)) => assert_eq!(s.to_string(), d.to_string(), "served/{label}"),
            (s, d) => panic!("served/{label}: {s:?} vs {d:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn log_prfe_answers_stay_exact_across_cache_patched_churn() {
    // Focused regression for the log-domain PRFe key cache: once a
    // log-domain query has warmed the cache, every subsequent insert and
    // delete takes the O(n) patch path (closed-form key update plus a
    // rank-preserving merge) instead of a rebuild. Drive a long churn
    // script through that path and pin each step's answer to a fresh
    // rebuild at 1e-9 — before the patch fix, inserts and deletes silently
    // invalidated the cache and the comparison drifted.
    let live = LiveRelation::new(seed_db(24));
    let log_probe = || {
        vec![(
            "prfe-log",
            RankQuery::prfe(0.85).algorithm(Algorithm::LogDomain),
        )]
    };

    // Warm the log key cache so the churn below patches it rather than
    // building it from scratch each step.
    RankQuery::prfe(0.85)
        .algorithm(Algorithm::LogDomain)
        .run(&live)
        .expect("warm-up query");

    for step in 0..60usize {
        let n = live.n_tuples();
        match step % 4 {
            // Distinct probabilities so ranking ties can't mask a diff.
            0 => {
                let t = TupleId(((step * 13) % n) as u32);
                let p = 0.03 + 0.9 * (((step * 577) % 331) as f64 / 331.0);
                live.apply(&Mutation::Reweight(t, p)).unwrap();
            }
            1 | 2 => {
                live.apply(&Mutation::Insert {
                    score: 2000.0 + 17.3 * step as f64,
                    prob: 0.04 + 0.9 * (((step * 733) % 211) as f64 / 211.0),
                })
                .unwrap();
            }
            _ => {
                let t = TupleId(((step * 7) % n) as u32);
                live.apply(&Mutation::Delete(t)).unwrap();
            }
        }
        assert_live_matches_rebuild_with(&live, &format!("log-churn-{step}"), log_probe());
    }
    // The cache survived sixty patches; the full battery still agrees.
    assert_live_matches_rebuild(&live, "log-churn/final");
}
