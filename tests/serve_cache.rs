//! Differential suite for the serving layer's **result cache**: repeated
//! queries must be served from the cache with provenance
//! ([`ServeCost::served_from_cache`]), cached answers must be
//! value-identical (1e-9) to direct evaluation, and — the staleness
//! contract — a **mutate-then-query** sequence must *never* observe a
//! pre-mutation answer, whether the mutation went through
//! [`RankServer::apply`] (eager purge) or directly through a retained
//! `Arc` between flushes (caught lazily by the generation-exact lookup).
//!
//! The direct side never touches `prf-serve`, so the comparison pins the
//! whole cached path: canonical keying, generation stamping, purge on
//! mutation, and hit delivery without a walk.

use std::sync::Arc;
use std::time::Duration;

use prf::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * b.abs().max(1.0) || (a.is_infinite() && b.is_infinite() && a == b)
}

/// Value-identical within `TOL`, identical order and numeric mode.
fn assert_equivalent(got: &RankedResult, want: &RankedResult, ctx: &str) {
    assert_eq!(
        got.report.numeric_mode, want.report.numeric_mode,
        "{ctx}: numeric mode"
    );
    assert_eq!(got.ranking.order(), want.ranking.order(), "{ctx}: order");
    for pos in 0..got.ranking.len() {
        let (g, w) = (got.ranking.key_at(pos), want.ranking.key_at(pos));
        assert!(close(g, w), "{ctx}: key at {pos}: {g} vs {w}");
    }
    match (&got.values, &want.values) {
        (Values::Complex(g), Values::Complex(w)) => {
            for (t, (a, b)) in g.iter().zip(w).enumerate() {
                assert!(
                    close(a.re, b.re) && close(a.im, b.im),
                    "{ctx}: complex value t{t}: {a} vs {b}"
                );
            }
        }
        (Values::LogDomain(g), Values::LogDomain(w)) => {
            for (t, (&a, &b)) in g.iter().zip(w).enumerate() {
                assert!(close(a, b), "{ctx}: log key t{t}: {a} vs {b}");
            }
        }
        (Values::Scaled(g), Values::Scaled(w)) => {
            for (t, (a, b)) in g.iter().zip(w).enumerate() {
                let (ka, kb) = (a.magnitude_key(), b.magnitude_key());
                assert!(close(ka, kb), "{ctx}: scaled magnitude t{t}: {ka} vs {kb}");
            }
        }
        (g, w) => panic!("{ctx}: value shape mismatch: {g:?} vs {w:?}"),
    }
}

fn random_db(seed: u64, n: usize) -> IndependentDb {
    let mut rng = StdRng::seed_from_u64(seed);
    IndependentDb::from_pairs(
        (0..n).map(|_| (rng.gen_range(0.0..1000.0), rng.gen_range(0.01..1.0))),
    )
    .expect("valid pairs")
}

fn random_xtuple_tree(seed: u64, groups: usize) -> AndXorTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec: Vec<Vec<(f64, f64)>> = (0..groups)
        .map(|_| {
            let alts = rng.gen_range(1..4);
            let mut budget = 1.0f64;
            (0..alts)
                .map(|_| {
                    let p = rng.gen_range(0.0..budget.min(0.7));
                    budget -= p;
                    (rng.gen_range(0.0..1000.0), p)
                })
                .collect()
        })
        .collect();
    AndXorTree::from_x_tuples(&spec).expect("valid groups")
}

/// Every cacheable shared-walk semantics across the numeric modes, plus
/// `top_k` variants.
fn cacheable_battery(n: usize) -> Vec<(&'static str, RankQuery)> {
    vec![
        ("pt", RankQuery::pt(n.min(5))),
        ("pt-topk", RankQuery::pt(n.min(5)).top_k(n.min(4))),
        ("consensus", RankQuery::consensus(n.min(3))),
        ("prfe-auto", RankQuery::prfe(0.7)),
        (
            "prfe-exact",
            RankQuery::prfe(0.85).algorithm(Algorithm::ExactGf),
        ),
        (
            "prfe-log",
            RankQuery::prfe(0.85).algorithm(Algorithm::LogDomain),
        ),
        (
            "prfe-scaled",
            RankQuery::prfe_complex(Complex::new(0.6, 0.3)).algorithm(Algorithm::Scaled),
        ),
        ("erank", RankQuery::erank()),
        ("escore", RankQuery::escore()),
        ("urank", RankQuery::urank(n.min(3))),
    ]
}

/// Submit-and-recv one query through the server.
fn roundtrip(server: &RankServer, rel: RelationId, q: RankQuery) -> RankedResult {
    server
        .submit(rel, q)
        .unwrap()
        .recv()
        .expect("served answer")
}

/// For each cacheable semantics on each backend: the first submission
/// evaluates, the repeat is served from the cache, and both match a direct
/// offline evaluation at 1e-9. An uncacheable control (`PRF^omega`)
/// re-evaluates every time.
#[test]
fn repeats_hit_across_semantics_and_backends() {
    type Direct = Box<dyn Fn(&RankQuery) -> RankedResult>;

    let db = random_db(71, 30);
    let tree = random_xtuple_tree(72, 12);
    let tree_n = AndXorTree::n_tuples(&tree);

    let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
    let db_rel = server.register("db", db.clone());
    let tree_rel = server.register("tree", tree.clone());
    let db_direct: Direct = Box::new(move |q| q.run(&db).expect("direct evaluation"));
    let tree_direct: Direct = Box::new(move |q| q.run(&tree).expect("direct evaluation"));
    let backends: Vec<(&str, Direct, RelationId, usize)> = vec![
        ("independent", db_direct, db_rel, 30),
        ("xtuple", tree_direct, tree_rel, tree_n),
    ];

    let mut expected_hits = 0;
    for (backend, direct, rel, n) in &backends {
        for (label, q) in cacheable_battery(*n) {
            let ctx = format!("{backend}/{label}");
            let first = roundtrip(&server, *rel, q.clone());
            assert!(
                !first.report.serve.as_ref().unwrap().served_from_cache,
                "{ctx}: first submission must evaluate"
            );
            let repeat = roundtrip(&server, *rel, q.clone());
            assert!(
                repeat.report.serve.as_ref().unwrap().served_from_cache,
                "{ctx}: repeat on an unchanged relation must hit"
            );
            expected_hits += 1;
            let want = direct(&q);
            assert_equivalent(&first, &want, &format!("{ctx}/evaluated"));
            assert_equivalent(&repeat, &want, &format!("{ctx}/cached"));
        }
        // Uncacheable control: a general-ω PRF query has no canonical key
        // and must re-evaluate on every submission.
        let q = RankQuery::prf(TabulatedWeight::from_real(&[2.0, 1.0, 0.5]));
        for round in 0..2 {
            let got = roundtrip(&server, *rel, q.clone());
            assert!(
                !got.report.serve.as_ref().unwrap().served_from_cache,
                "{backend}: PRF^omega round {round} must not be served from cache"
            );
            assert_equivalent(&got, &direct(&q), &format!("{backend}/prf-omega/{round}"));
        }
    }
    let m = server.metrics();
    assert_eq!(
        m.cache_hits, expected_hits,
        "every repeat (and nothing else) hits"
    );
    assert!(m.cache_misses >= expected_hits, "each hit had a first miss");
    server.shutdown();
}

/// The staleness contract, end to end: interleave server-applied
/// mutations (reweight / insert / delete) with queries — every answer,
/// hit or evaluated, must match an offline rebuild of the backend as it
/// stood *after* the preceding mutation. Repeats between mutations verify
/// the cache actually participates.
#[test]
fn mutate_then_query_is_never_served_stale() {
    let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
    let live = Arc::new(LiveRelation::new(random_db(81, 24)));
    let rel = server.register_live("live", Arc::clone(&live));
    let mut rng = StdRng::seed_from_u64(82);

    let probes = |n: usize| {
        vec![
            ("pt", RankQuery::pt(n.min(4))),
            (
                "prfe-log",
                RankQuery::prfe(0.85).algorithm(Algorithm::LogDomain),
            ),
            ("erank", RankQuery::erank()),
        ]
    };
    for step in 0..24 {
        let n = live.n_tuples();
        let mutation = match rng.gen_range(0..3u8) {
            0 => Mutation::Reweight(
                TupleId(rng.gen_range(0..n as u32)),
                rng.gen_range(0.01..1.0),
            ),
            1 => Mutation::Insert {
                score: rng.gen_range(0.0..1000.0),
                prob: rng.gen_range(0.01..1.0),
            },
            _ if n > 8 => Mutation::Delete(TupleId(rng.gen_range(0..n as u32))),
            _ => Mutation::Reweight(TupleId(0), rng.gen_range(0.01..1.0)),
        };
        server
            .apply(rel, mutation)
            .unwrap()
            .recv()
            .expect("mutation applies");
        let rebuilt = live.snapshot_backend();
        for (label, q) in probes(live.n_tuples()) {
            let ctx = format!("step {step}/{label}");
            let served = roundtrip(&server, rel, q.clone());
            assert!(
                !served.report.serve.as_ref().unwrap().served_from_cache,
                "{ctx}: the first query after a mutation must re-evaluate"
            );
            let want = q.run(&rebuilt).expect("offline rebuild");
            assert_equivalent(&served, &want, &ctx);
            // The repeat must hit — and hit with the *post-mutation*
            // answer.
            let repeat = roundtrip(&server, rel, q.clone());
            assert!(
                repeat.report.serve.as_ref().unwrap().served_from_cache,
                "{ctx}: repeat between mutations must hit"
            );
            assert_equivalent(&repeat, &want, &format!("{ctx}/cached"));
        }
    }
    let m = server.metrics();
    assert!(m.cache_hits >= 24 * 3, "the cache participated every step");
    assert!(
        m.cache_invalidations >= 24,
        "every mutated flush invalidated"
    );
    server.shutdown();
}

/// A mutation applied *directly* through a retained `Arc` — outside
/// [`RankServer::apply`], so no flush purges the cache — must still never
/// cause a stale answer: the generation-exact lookup discards the
/// pre-mutation entry lazily.
#[test]
fn offline_mutation_is_caught_by_the_generation_check() {
    let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
    let live = Arc::new(LiveRelation::new(random_db(91, 16)));
    let rel = server.register_live("live", Arc::clone(&live));
    let q = || RankQuery::prfe(0.85).algorithm(Algorithm::LogDomain);

    // Populate, then confirm the entry is really live.
    roundtrip(&server, rel, q());
    assert!(
        roundtrip(&server, rel, q())
            .report
            .serve
            .unwrap()
            .served_from_cache
    );

    // Mutate directly, between flushes (the server is idle: every prior
    // submission was received, so no flush is in flight to race).
    live.apply(&Mutation::Reweight(TupleId(2), 0.999))
        .expect("offline mutation");

    let after = roundtrip(&server, rel, q());
    assert!(
        !after.report.serve.as_ref().unwrap().served_from_cache,
        "a post-mutation query must not be served from the stale entry"
    );
    let want = q().run(&live.snapshot_backend()).expect("offline rebuild");
    assert_equivalent(&after, &want, "offline-mutation answer");
    assert!(
        server.metrics().cache_invalidations >= 1,
        "the stale entry was discarded at lookup"
    );
    // And the re-populated entry serves the fresh answer.
    let repeat = roundtrip(&server, rel, q());
    assert!(repeat.report.serve.as_ref().unwrap().served_from_cache);
    assert_equivalent(&repeat, &want, "re-populated answer");
    server.shutdown();
}

/// Identical untracked queries submitted into one flush coalesce onto a
/// single walk slot; tracked submissions keep their own slots. Either
/// way, every answer matches direct evaluation.
#[test]
fn within_flush_coalescing_matches_direct_evaluation() {
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_secs(3600))
            .max_batch(6),
    );
    let db = random_db(95, 20);
    let rel = server.register("db", db.clone());
    // Six identical untracked submissions fill the size trigger at once.
    let handles: Vec<_> = (0..6)
        .map(|_| server.submit(rel, RankQuery::prfe(0.7)).unwrap())
        .collect();
    let want = RankQuery::prfe(0.7).run(&db).expect("direct evaluation");
    for (i, h) in handles.into_iter().enumerate() {
        let got = h.recv().expect("coalesced answer");
        assert_eq!(
            got.report.batch.as_ref().unwrap().consumers,
            1,
            "identical untracked queries share one walk slot"
        );
        assert_equivalent(&got, &want, &format!("coalesced/{i}"));
    }
    server.shutdown();
}
