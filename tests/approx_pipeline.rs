//! Integration tests: the approximation and learning pipeline end-to-end.

use prf::approx::learn::{learn_prf_omega, learn_prfe_alpha_topk, RankLearnConfig};
use prf::approx::{approximate_weights, DftApproxConfig};
use prf::baselines::pt_ranking;
use prf::core::{prf_rank, prfe_rank_log, Ranking, TabulatedWeight, ValueOrder};
use prf::datasets::{subsample_independent, syn_ind};
use prf::metrics::kendall_topk;

#[test]
fn mixture_reproduces_pt_ranking_cross_crate() {
    let db = syn_ind(5_000, 55);
    let h = 200;
    let k = 200;
    let exact = pt_ranking(&db, h).top_k_u32(k);
    let step = move |i: usize| if i < h { 1.0 } else { 0.0 };
    for (l, bound) in [(20usize, 0.12), (40, 0.08), (80, 0.05)] {
        let mix = approximate_weights(&step, h, &DftApproxConfig::refined(l));
        let approx = mix.ranking_independent(&db).top_k_u32(k);
        let d = kendall_topk(&exact, &approx, k);
        assert!(d < bound, "L = {l}: distance {d} ≥ {bound}");
    }
}

#[test]
fn mixture_reproduces_learned_omega() {
    // Learn ω from a PT teacher, then approximate the *learned* table by a
    // mixture — the full Section 5 workflow.
    let db = syn_ind(2_000, 56);
    let (sample, _) = subsample_independent(&db, 150, 57);
    let teacher = pt_ranking(&sample, 30);
    let weights = learn_prf_omega(
        &sample,
        teacher.order(),
        &RankLearnConfig {
            h: 60,
            epochs: 120,
            ..Default::default()
        },
    );
    // Exact learned ranking.
    let w = TabulatedWeight::from_real(&weights);
    let exact = Ranking::from_values(&prf_rank(&db, &w), ValueOrder::RealPart);
    // Mixture of the learned (possibly non-monotone) table.
    let table = weights.clone();
    let omega = move |i: usize| if i < table.len() { table[i] } else { 0.0 };
    let mix = approximate_weights(&omega, weights.len(), &DftApproxConfig::refined(40));
    let approx = mix.ranking_independent(&db);
    let k = 100;
    let d = kendall_topk(&exact.top_k_u32(k), &approx.top_k_u32(k), k);
    assert!(d < 0.15, "mixture of learned ω: distance {d}");
}

#[test]
fn alpha_learning_generalizes_from_sample_to_population() {
    let db = syn_ind(20_000, 58);
    let k = 100;
    // Teacher: PRFe(0.9).
    let truth = Ranking::from_keys(&prfe_rank_log(&db, 0.9)).top_k_u32(k);
    let (sample, _) = subsample_independent(&db, 1_000, 59);
    let teacher_ranking = Ranking::from_keys(&prfe_rank_log(&sample, 0.9));
    let alpha = learn_prfe_alpha_topk(&sample, teacher_ranking.order(), 4, k);
    let learned = Ranking::from_keys(&prfe_rank_log(&db, alpha)).top_k_u32(k);
    let d = kendall_topk(&learned, &truth, k);
    assert!(d < 0.05, "α̂ = {alpha}, distance {d}");
}

#[test]
fn mixture_weight_reconstruction_bounds() {
    // Weight-space sanity across several supports: the refined pipeline's
    // reconstruction error decreases with L and the tail stays controlled.
    for n in [100usize, 500, 2_000] {
        let step = move |i: usize| if i < n { 1.0 } else { 0.0 };
        let mut last = f64::INFINITY;
        for l in [10usize, 30, 60] {
            let mix = approximate_weights(&step, n, &DftApproxConfig::refined(l));
            let rms = mix.rms_error(&step, 2 * n);
            assert!(
                rms < last * 1.05,
                "n={n}: rms not improving: {rms} after {last}"
            );
            last = rms;
        }
        assert!(last < 0.12, "n={n}: final rms {last}");
    }
}
