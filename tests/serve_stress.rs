//! Concurrency failure-mode tests for the serving layer, plus a
//! schedule-shaking proptest: the `RankServer` has no loom-style model
//! checker available (std-only workspace), so interleaving coverage comes
//! from **repeated seeded schedules** — randomized client counts, submit
//! bursts, deadlines, batch sizes and shutdown points, each derived from a
//! `rand`-shim seed so failures replay deterministically.
//!
//! The invariants under test:
//! * shutdown with in-flight queries **drains** — no hang, every handle
//!   resolves (to a result, or `Shutdown` if the server died abnormally);
//! * a zero deadline flushes immediately;
//! * a dropped [`ResponseHandle`] never wedges the flusher;
//! * submissions after shutdown error cleanly;
//! * no response is ever lost, duplicated, or routed to the wrong query;
//! * mutations racing the shutdown are either rejected cleanly or applied
//!   and acknowledged — never accepted-then-lost.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use prf::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_db(n: usize) -> IndependentDb {
    IndependentDb::from_pairs(
        (0..n).map(|i| (100.0 - i as f64, 0.2 + 0.6 * ((i % 5) as f64 / 5.0))),
    )
    .expect("valid pairs")
}

// ---------------------------------------------------------------------
// Directed failure modes
// ---------------------------------------------------------------------

#[test]
fn shutdown_with_in_flight_queries_drains_without_hanging() {
    // An hour-long deadline and a huge batch size: nothing can flush these
    // five queries except the shutdown drain.
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_secs(3600))
            .max_batch(1000),
    );
    let rel = server.register("db", small_db(6));
    let handles: Vec<_> = (1..=5)
        .map(|h| server.submit(rel, RankQuery::pt(h)).unwrap())
        .collect();
    assert_eq!(server.pending(), 5);
    server.shutdown();
    for (i, handle) in handles.into_iter().enumerate() {
        let result = handle.recv().expect("drained queries are evaluated");
        let serve = result.report.serve.expect("provenance");
        assert_eq!(serve.trigger, FlushTrigger::Shutdown, "query {i}");
        assert_eq!(serve.flush_size, 5);
        // The drained flush still shares one walk.
        assert_eq!(result.report.batch.unwrap().consumers, 5);
    }
}

#[test]
fn shutdown_races_with_submitting_clients() {
    // Clients hammer the server while another thread shuts it down:
    // every accepted submission must resolve, every rejected one must be
    // the clean `Shutdown` error.
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_micros(100))
            .max_batch(4),
    );
    let rel = server.register("db", small_db(8));
    let outcomes: Vec<Result<Result<RankedResult, QueryError>, QueryError>> = thread::scope(|s| {
        let mut workers = Vec::new();
        for c in 0..4usize {
            let server = &server;
            workers.push(s.spawn(move || {
                let mut out = Vec::new();
                for i in 0..25usize {
                    match server.submit(rel, RankQuery::pt(1 + (c + i) % 8)) {
                        Ok(handle) => out.push(Ok(handle.recv())),
                        Err(e) => out.push(Err(e)),
                    }
                }
                out
            }));
        }
        let stopper = s.spawn(|| {
            thread::yield_now();
            server.shutdown();
        });
        stopper.join().expect("stopper");
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client"))
            .collect()
    });
    assert_eq!(outcomes.len(), 100);
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            // Accepted: must have been answered (drain evaluates).
            Ok(Ok(result)) => assert!(result.report.serve.is_some(), "submission {i}"),
            Ok(Err(e)) => panic!("accepted submission {i} failed: {e}"),
            // Rejected: only the clean shutdown error is acceptable.
            Err(e) => assert_eq!(*e, QueryError::Shutdown, "submission {i}"),
        }
    }
}

#[test]
fn zero_deadline_flushes_immediately() {
    let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO).max_batch(1000));
    let rel = server.register("db", small_db(6));
    for _ in 0..5 {
        let mut handle = server.submit(rel, RankQuery::prfe(0.9)).unwrap();
        let result = handle
            .recv_timeout(Duration::from_secs(10))
            .expect("zero deadline must flush without waiting for more load")
            .expect("query succeeds");
        assert_eq!(result.report.serve.unwrap().trigger, FlushTrigger::Deadline);
    }
}

#[test]
fn dropped_response_handle_does_not_wedge_the_flusher() {
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_secs(3600))
            .max_batch(3),
    );
    let rel = server.register("db", small_db(6));
    let keep_a = server.submit(rel, RankQuery::pt(2)).unwrap();
    let dropped = server.submit(rel, RankQuery::pt(3)).unwrap();
    drop(dropped); // client went away before the flush
    let keep_b = server.submit(rel, RankQuery::pt(4)).unwrap();
    // The size-3 flush fires and delivers the two live handles.
    assert!(keep_a.recv().is_ok());
    assert!(keep_b.recv().is_ok());
    // The flusher survived the dead channel: the server keeps serving.
    let again = server.submit(rel, RankQuery::erank()).unwrap();
    server.shutdown();
    assert!(again.recv().is_ok());
}

#[test]
fn submissions_after_shutdown_error_cleanly() {
    let server = RankServer::new(ServeConfig::new());
    let rel = server.register("db", small_db(4));
    server.shutdown();
    assert!(matches!(
        server.submit(rel, RankQuery::pt(1)),
        Err(QueryError::Shutdown)
    ));
    // Shutdown is idempotent, and late registrations don't panic either.
    server.shutdown();
    let late = server.register("late", small_db(3));
    assert!(matches!(
        server.submit(late, RankQuery::pt(1)),
        Err(QueryError::Shutdown)
    ));
}

#[test]
fn polling_before_the_flush_then_blocking_still_resolves() {
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_secs(3600))
            .max_batch(1000),
    );
    let rel = server.register("db", small_db(6));
    let mut handle = server.submit(rel, RankQuery::escore()).unwrap();
    // Nothing can have flushed yet (hour-long deadline, batch of 1000).
    assert!(handle.try_recv().is_none());
    assert!(handle.recv_timeout(Duration::from_millis(5)).is_none());
    server.shutdown(); // drain answers it
    assert!(handle.recv().is_ok());
}

// ---------------------------------------------------------------------
// Schedule-shaking proptest: seeded random interleavings
// ---------------------------------------------------------------------

/// Every resolved submission of a schedule: the semantics name and
/// relation size the answer must match, plus the answer itself.
type ResolvedSchedule = Vec<(String, usize, Result<RankedResult, QueryError>)>;

/// One seeded schedule: random server config, client count, per-client
/// submission bursts against two relations of different sizes (the first
/// one **live**, with a mutator thread reweighting it mid-schedule), and a
/// shutdown point that may race everything. Returns the resolved
/// submissions plus the count of clean `Shutdown` rejections; accepted
/// mutations are asserted inside (they must all acknowledge).
fn run_schedule(seed: u64) -> (ResolvedSchedule, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let deadline = match rng.gen_range(0..4) {
        0 => Duration::ZERO,
        1 => Duration::from_micros(50),
        2 => Duration::from_millis(1),
        _ => Duration::from_secs(3600), // only size limit / shutdown flush
    };
    let mut config = ServeConfig::new()
        .max_delay(deadline)
        .max_batch(rng.gen_range(1..7));
    if rng.gen_bool(0.25) {
        config = config.parallel(2);
    }
    let clients = rng.gen_range(1..5usize);
    let per_client: Vec<usize> = (0..clients).map(|_| rng.gen_range(0..9)).collect();
    let shutdown_mid = rng.gen_bool(0.5);
    let sizes = [7usize, 4usize];

    let server = RankServer::new(config);
    let live = Arc::new(LiveRelation::new(small_db(sizes[0])));
    let rels = [
        server.register_live("a", Arc::clone(&live)),
        server.register("b", small_db(sizes[1])),
    ];
    // Pre-draw each client's schedule so the worker threads stay free of
    // the (non-Sync) generator: (relation index, PT horizon, yield?).
    let schedules: Vec<Vec<(usize, usize, bool)>> = per_client
        .iter()
        .map(|&count| {
            (0..count)
                .map(|_| {
                    let r = rng.gen_range(0..2usize);
                    (r, rng.gen_range(1..=sizes[r]), rng.gen_bool(0.3))
                })
                .collect()
        })
        .collect();
    // A mutator schedule against the live relation: reweights only, so the
    // tuple count the queries are checked against never changes.
    let mutations: Vec<(usize, f64, bool)> = (0..rng.gen_range(0..7usize))
        .map(|_| {
            (
                rng.gen_range(0..sizes[0]),
                rng.gen_range(0.1..0.9),
                rng.gen_bool(0.3),
            )
        })
        .collect();

    let (answers, rejected, acks) = thread::scope(|s| {
        let mut workers = Vec::new();
        for schedule in &schedules {
            let server = &server;
            let rels = &rels;
            workers.push(s.spawn(move || {
                let mut accepted = Vec::new();
                for &(r, h, pause) in schedule {
                    if pause {
                        thread::yield_now();
                    }
                    match server.submit(rels[r], RankQuery::pt(h)) {
                        Ok(handle) => accepted.push((format!("PT({h})"), r, handle)),
                        Err(e) => assert_eq!(e, QueryError::Shutdown, "only clean rejections"),
                    }
                }
                accepted
            }));
        }
        let mutator = {
            let server = &server;
            let mutations = &mutations;
            s.spawn(move || {
                let mut acks = Vec::new();
                for &(t, p, pause) in mutations {
                    if pause {
                        thread::yield_now();
                    }
                    match server.apply(rels[0], Mutation::Reweight(TupleId(t as u32), p)) {
                        Ok(handle) => acks.push(handle),
                        Err(e) => assert_eq!(e, QueryError::Shutdown, "only clean rejections"),
                    }
                }
                acks
            })
        };
        if shutdown_mid {
            let server = &server;
            s.spawn(move || {
                thread::yield_now();
                server.shutdown();
            });
        }
        let acks = mutator.join().expect("mutator thread");
        let mut answers = Vec::new();
        for w in workers {
            for (name, r, handle) in w.join().expect("client thread") {
                answers.push((name, sizes[r], handle));
            }
        }
        // Workers return only accepted handles; the difference is the
        // count of clean `Shutdown` rejections.
        let total: usize = per_client.iter().sum();
        let rejected = total - answers.len();
        (answers, rejected, acks)
    });
    server.shutdown(); // idempotent; guarantees the drain before recv

    // Accepted mutations must acknowledge even when shutdown raced the
    // schedule: the drain applies pending mutations, never drops them.
    for ack in acks {
        ack.recv()
            .expect("accepted reweights apply (valid tuple, valid probability)");
    }

    let resolved = answers
        .into_iter()
        .map(|(name, n, handle)| (name, n, handle.recv()))
        .collect();
    (resolved, rejected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every accepted submission resolves **exactly once**, to the answer
    /// of *its own* query (checked through the semantics echoed in the
    /// report and the relation's tuple count), and rejections only happen
    /// once shutdown began.
    #[test]
    fn random_interleavings_never_lose_or_misroute_responses(seed in 0u64..100_000) {
        let (resolved, _rejected) = run_schedule(seed);
        for (i, (name, n, answer)) in resolved.iter().enumerate() {
            match answer {
                Ok(result) => {
                    prop_assert_eq!(&result.report.semantics, name, "query {}", i);
                    prop_assert_eq!(result.values.len(), *n, "query {} relation", i);
                    prop_assert!(result.report.serve.is_some(), "query {} provenance", i);
                }
                // Accepted-then-unanswered is only legal if the flusher
                // died; the orderly drain always evaluates. Treat any
                // error as a lost response.
                Err(e) => prop_assert!(false, "query {} lost: {}", i, e),
            }
        }
    }
}

#[test]
fn query_ids_stay_unique_across_concurrent_submitters() {
    let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(100)));
    let rel = server.register("db", small_db(5));
    let ids: Vec<u64> = thread::scope(|s| {
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let server = &server;
                s.spawn(move || {
                    (0..20)
                        .map(|_| {
                            server
                                .submit(rel, RankQuery::escore())
                                .expect("server is up")
                                .id()
                                .as_u64()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client"))
            .collect()
    });
    let unique: HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "query ids must never repeat");
}
