//! Differential suite: every `Semantics` × `Algorithm` combination through
//! the unified `RankQuery` engine must match the legacy free functions —
//! value-for-value (within numeric tolerance; most comparisons are
//! bit-exact) and with identical `Ranking` order.
//!
//! The legacy side calls the `prf-core` kernel free functions directly
//! (`prf_rank`, `prfe_rank*`, `prf_rank_tree*`, …), which never route
//! through the engine, so the comparison is not circular; the
//! `prf-baselines` test suites separately anchor those kernels to
//! brute-force world enumeration.

use prf::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Seeded random instances
// ---------------------------------------------------------------------

fn random_db(seed: u64, n: usize) -> IndependentDb {
    let mut rng = StdRng::seed_from_u64(seed);
    IndependentDb::from_pairs((0..n).map(|_| {
        (
            rng.gen_range(0.0..1000.0),
            // Include the edge masses 0 and 1 occasionally.
            match rng.gen_range(0..10) {
                0 => 0.0,
                1 => 1.0,
                _ => rng.gen_range(0.01..1.0),
            },
        )
    }))
    .expect("valid pairs")
}

/// A random x-tuple tree (mutually exclusive groups).
fn random_xtuple_tree(seed: u64, groups: usize) -> AndXorTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec: Vec<Vec<(f64, f64)>> = (0..groups)
        .map(|_| {
            let alts = rng.gen_range(1..4);
            let mut budget = 1.0f64;
            (0..alts)
                .map(|_| {
                    let p = rng.gen_range(0.0..budget.min(0.7));
                    budget -= p;
                    (rng.gen_range(0.0..1000.0), p)
                })
                .collect()
        })
        .collect();
    AndXorTree::from_x_tuples(&spec).expect("valid groups")
}

/// A random general and/xor tree (nested ∧/∨ — *not* x-tuple form).
fn random_general_tree(seed: u64, target_leaves: usize) -> AndXorTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TreeBuilder::new(NodeKind::And);
    let root = b.root();
    // Frontier of (node, is_xor, remaining xor budget).
    let mut frontier = vec![(root, false, 1.0f64)];
    let mut leaves = 0usize;
    while leaves < target_leaves {
        let idx = rng.gen_range(0..frontier.len());
        let (node, is_xor, budget) = frontier[idx];
        let p = if is_xor {
            let p = rng.gen_range(0.0..budget.min(0.6));
            frontier[idx].2 -= p;
            p
        } else {
            1.0
        };
        if frontier.len() > 6 || rng.gen_bool(0.7) {
            b.add_leaf(node, p, rng.gen_range(0.0..1000.0)).unwrap();
            leaves += 1;
        } else {
            let child_xor = rng.gen_bool(0.5);
            let kind = if child_xor {
                NodeKind::Xor
            } else {
                NodeKind::And
            };
            let child = b.add_inner(node, kind, p).unwrap();
            frontier.push((child, child_xor, 1.0));
        }
    }
    b.build().unwrap()
}

fn assert_same_order(a: &Ranking, b: &Ranking, ctx: &str) {
    assert_eq!(
        a.order(),
        b.order(),
        "{ctx}: ranking order must be identical"
    );
}

fn assert_values_close(got: &[Complex], want: &[Complex], tol: f64, ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (t, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(g.approx_eq(*w, tol), "{ctx}: tuple {t}: {g} vs {w}");
    }
}

// ---------------------------------------------------------------------
// Weight-based semantics (Prf, Pt, Consensus, EScore) — both backends
// ---------------------------------------------------------------------

#[test]
fn weighted_semantics_match_legacy_on_independent() {
    for seed in 0..5u64 {
        let db = random_db(seed, 40);
        let n = db.len();

        // PT(h) ≡ prf_rank with a step weight, ranked by real part.
        for h in [1usize, 3, n] {
            let legacy = prf_rank(&db, &StepWeight { h });
            let legacy_rank = Ranking::from_values(&legacy, ValueOrder::RealPart);
            let got = RankQuery::pt(h).run(&db).unwrap();
            assert_values_close(got.values.as_complex().unwrap(), &legacy, 0.0, "PT values");
            assert_same_order(&got.ranking, &legacy_rank, "PT");
        }

        // Consensus(k) ≡ PT(k) (Theorem 2).
        let cons = RankQuery::consensus(5).run(&db).unwrap();
        let pt5 = RankQuery::pt(5).run(&db).unwrap();
        assert_same_order(&cons.ranking, &pt5.ranking, "Consensus ≡ PT");

        // Generic PRFω with a random tabulated weight.
        let mut rng = StdRng::seed_from_u64(seed + 100);
        let table: Vec<f64> = (0..8).map(|_| rng.gen_range(0.0..2.0)).collect();
        let w = TabulatedWeight::from_real(&table);
        let legacy = prf_rank(&db, &w);
        let legacy_rank = Ranking::from_values(&legacy, ValueOrder::RealPart);
        let got = RankQuery::prf(w)
            .value_order(ValueOrder::RealPart)
            .run(&db)
            .unwrap();
        assert_values_close(
            got.values.as_complex().unwrap(),
            &legacy,
            0.0,
            "PRFω values",
        );
        assert_same_order(&got.ranking, &legacy_rank, "PRFω");

        // E-Score ≡ p·score.
        let legacy: Vec<f64> = db.tuples().iter().map(|t| t.prob * t.score).collect();
        let got = RankQuery::escore().run(&db).unwrap();
        for (t, v) in got.values.as_complex().unwrap().iter().enumerate() {
            assert_eq!(v.re, legacy[t], "E-Score value t{t}");
        }
        assert_same_order(&got.ranking, &Ranking::from_keys(&legacy), "E-Score");
    }
}

#[test]
fn weighted_semantics_match_legacy_on_trees() {
    for seed in 0..4u64 {
        for tree in [random_xtuple_tree(seed, 12), random_general_tree(seed, 14)] {
            let n = tree.n_tuples();
            for h in [2usize, n] {
                let w = StepWeight { h };
                // Legacy dispatch: x-tuple fast path when available, else
                // the symbolic expansion.
                let legacy = prf::core::prf_omega_rank_xtuple(&tree, &w)
                    .unwrap_or_else(|| prf_rank_tree(&tree, &w));
                let legacy_rank = Ranking::from_values(&legacy, ValueOrder::RealPart);
                let got = RankQuery::pt(h).run(&tree).unwrap();
                assert_values_close(
                    got.values.as_complex().unwrap(),
                    &legacy,
                    0.0,
                    "tree PT values",
                );
                assert_same_order(&got.ranking, &legacy_rank, "tree PT");
            }

            // Parallel execution must not change values (beyond nothing —
            // the shards compute identical expansions).
            let w = StepWeight { h: 4 };
            let serial = RankQuery::prf(w).run(&tree).unwrap();
            let parallel = RankQuery::prf(w).parallel(4).run(&tree).unwrap();
            assert_values_close(
                parallel.values.as_complex().unwrap(),
                serial.values.as_complex().unwrap(),
                1e-12,
                "parallel PRFω",
            );
            assert_same_order(&parallel.ranking, &serial.ranking, "parallel PRFω");
        }
    }
}

// ---------------------------------------------------------------------
// PRFe across every numeric mode — both backends
// ---------------------------------------------------------------------

#[test]
fn prfe_algorithms_match_legacy_on_independent() {
    for seed in 0..5u64 {
        let db = random_db(seed + 10, 50);
        for alpha in [0.3f64, 0.9, 1.0] {
            // ExactGf ≡ prfe_rank, |Υ| order.
            let legacy = prfe_rank(&db, Complex::real(alpha));
            let got = RankQuery::prfe(alpha)
                .algorithm(Algorithm::ExactGf)
                .run(&db)
                .unwrap();
            assert_values_close(got.values.as_complex().unwrap(), &legacy, 0.0, "PRFe exact");
            assert_same_order(
                &got.ranking,
                &Ranking::from_values(&legacy, ValueOrder::Magnitude),
                "PRFe exact",
            );

            // LogDomain ≡ prfe_rank_log.
            let legacy_log = prfe_rank_log(&db, alpha);
            let got = RankQuery::prfe(alpha)
                .algorithm(Algorithm::LogDomain)
                .run(&db)
                .unwrap();
            assert_eq!(
                got.values.as_log().unwrap(),
                &legacy_log[..],
                "PRFe log keys"
            );
            assert_same_order(&got.ranking, &Ranking::from_keys(&legacy_log), "PRFe log");

            // Scaled ≡ prfe_rank_scaled, magnitude keys.
            let legacy_scaled = prf::core::prfe_rank_scaled(&db, Complex::real(alpha));
            let got = RankQuery::prfe(alpha)
                .algorithm(Algorithm::Scaled)
                .run(&db)
                .unwrap();
            let keys: Vec<f64> = legacy_scaled.iter().map(|v| v.magnitude_key()).collect();
            assert_same_order(&got.ranking, &Ranking::from_keys(&keys), "PRFe scaled");
            for (t, (g, w)) in got
                .values
                .as_scaled()
                .unwrap()
                .iter()
                .zip(&legacy_scaled)
                .enumerate()
            {
                assert_eq!(g.magnitude_key(), w.magnitude_key(), "PRFe scaled key t{t}");
            }
        }

        // Complex α: exact vs generic PRF with the exponential weight.
        let alpha = Complex::new(0.4, 0.3);
        let got = RankQuery::prfe_complex(alpha)
            .algorithm(Algorithm::ExactGf)
            .run(&db)
            .unwrap();
        let generic = prf_rank(&db, &ExponentialWeight { alpha });
        assert_values_close(
            got.values.as_complex().unwrap(),
            &generic,
            1e-9,
            "complex-α PRFe vs generic PRF",
        );
    }
}

#[test]
fn prfe_algorithms_match_legacy_on_trees() {
    for seed in 0..4u64 {
        for tree in [
            random_xtuple_tree(seed + 20, 10),
            random_general_tree(seed + 20, 12),
        ] {
            for alpha in [0.4f64, 0.95] {
                let legacy: Vec<Complex> = prfe_rank_tree(&tree, Complex::real(alpha));
                let got = RankQuery::prfe(alpha)
                    .algorithm(Algorithm::ExactGf)
                    .run(&tree)
                    .unwrap();
                assert_values_close(
                    got.values.as_complex().unwrap(),
                    &legacy,
                    0.0,
                    "tree PRFe exact",
                );
                assert_same_order(
                    &got.ranking,
                    &Ranking::from_values(&legacy, ValueOrder::Magnitude),
                    "tree PRFe exact",
                );

                // Scaled mode agrees with the recompute oracle within
                // tolerance and reproduces the exact ranking.
                let got_scaled = RankQuery::prfe(alpha)
                    .algorithm(Algorithm::Scaled)
                    .run(&tree)
                    .unwrap();
                let legacy_scaled = prf::core::prfe_rank_tree_scaled(&tree, Complex::real(alpha));
                let keys: Vec<f64> = legacy_scaled.iter().map(|v| v.magnitude_key()).collect();
                assert_same_order(
                    &got_scaled.ranking,
                    &Ranking::from_keys(&keys),
                    "tree PRFe scaled",
                );

                // LogDomain on trees derives from the scaled magnitudes:
                // values must equal ln Υ within tolerance, order must match
                // the exact ranking.
                let got_log = RankQuery::prfe(alpha)
                    .algorithm(Algorithm::LogDomain)
                    .run(&tree)
                    .unwrap();
                for (t, &key) in got_log.values.as_log().unwrap().iter().enumerate() {
                    let exact = legacy[t].abs();
                    if exact > 0.0 {
                        assert!(
                            (key - exact.ln()).abs() < 1e-9 * exact.ln().abs().max(1.0),
                            "tree PRFe log key t{t}: {key} vs {}",
                            exact.ln()
                        );
                    } else {
                        assert_eq!(key, f64::NEG_INFINITY, "tree PRFe log key t{t}");
                    }
                }
                assert_same_order(&got_log.ranking, &got.ranking, "tree PRFe log");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Set/position/aggregate semantics (URank, UTop, ERank) — both backends
// ---------------------------------------------------------------------

#[test]
fn urank_matches_legacy_on_both_backends() {
    for seed in 0..4u64 {
        let db = random_db(seed + 30, 30);
        for k in [1usize, 5, 10] {
            let legacy = prf::baselines::urank_topk(&db, k);
            let got = RankQuery::urank(k).run(&db).unwrap();
            assert_eq!(got.ranking.order(), &legacy[..], "U-Rank k={k}");
        }
        let tree = random_xtuple_tree(seed + 30, 8);
        for k in [1usize, 4] {
            let legacy = prf::baselines::urank_topk_tree(&tree, k);
            let got = RankQuery::urank(k).run(&tree).unwrap();
            assert_eq!(got.ranking.order(), &legacy[..], "tree U-Rank k={k}");
        }
    }
}

#[test]
fn utop_matches_legacy_and_enumeration() {
    for seed in 0..4u64 {
        let db = random_db(seed + 40, 16);
        for k in [1usize, 3, 6] {
            let legacy = prf::baselines::utop_topk(&db, k);
            let got = RankQuery::utop(k).run(&db).ok().and_then(|r| r.set);
            match (legacy, got) {
                (None, None) => {}
                (Some((set, logp)), Some(top)) => {
                    assert_eq!(top.members, set, "U-Top set k={k}");
                    assert!((top.log_prob - logp).abs() < 1e-10, "U-Top logp k={k}");
                }
                (l, g) => panic!("U-Top mismatch k={k}: legacy {l:?} vs engine {g:?}"),
            }
        }
        // Tree backend (exact enumeration) vs the independent sweep on
        // independent-shaped trees.
        let tree = AndXorTree::from_independent(&db);
        let via_tree = RankQuery::utop(3).run(&tree).unwrap().set.unwrap();
        let (set, logp) = prf::baselines::utop_topk(&db, 3).unwrap();
        assert_eq!(via_tree.members, set);
        assert!((via_tree.log_prob - logp).abs() < 1e-10);
    }
}

#[test]
fn erank_matches_legacy_on_both_backends() {
    for seed in 0..4u64 {
        let db = random_db(seed + 50, 35);
        let legacy = prf::baselines::expected_ranks(&db);
        let got = RankQuery::erank().run(&db).unwrap();
        for (t, v) in got.values.as_complex().unwrap().iter().enumerate() {
            assert_eq!(-v.re, legacy[t], "E-Rank value t{t}");
        }
        let keys: Vec<f64> = legacy.iter().map(|&e| -e).collect();
        assert_same_order(&got.ranking, &Ranking::from_keys(&keys), "E-Rank");

        let tree = random_general_tree(seed + 50, 10);
        let legacy = prf::core::expected_ranks_tree(&tree);
        let got = RankQuery::erank().run(&tree).unwrap();
        for (t, v) in got.values.as_complex().unwrap().iter().enumerate() {
            assert_eq!(-v.re, legacy[t], "tree E-Rank value t{t}");
        }
    }
}

// ---------------------------------------------------------------------
// DFT mixture approximation ≡ the legacy ExpMixture pipeline
// ---------------------------------------------------------------------

#[test]
fn dft_approx_matches_legacy_mixture_pipeline() {
    let db = random_db(99, 400);
    let h = 50;
    let cfg = DftApproxConfig::refined(16);

    // Legacy: build the mixture by hand, rank by scaled real part.
    let step = move |i: usize| if i < h { 1.0 } else { 0.0 };
    let mix = approximate_weights(&step, h, &cfg);
    let legacy_rank = mix.ranking_independent(&db);

    let got = RankQuery::pt(h)
        .algorithm(Algorithm::DftApprox(cfg))
        .run(&db)
        .unwrap();
    assert_eq!(got.report.numeric_mode, NumericMode::Scaled);
    assert_same_order(&got.ranking, &legacy_rank, "DFT mixture");

    // Tree backend.
    let tree = random_xtuple_tree(7, 60);
    let legacy_rank = mix.ranking_tree(&tree);
    let got = RankQuery::pt(h)
        .algorithm(Algorithm::DftApprox(cfg))
        .run(&tree)
        .unwrap();
    assert_same_order(&got.ranking, &legacy_rank, "tree DFT mixture");
}

// ---------------------------------------------------------------------
// Graphical backend: PRFω/PRFe through the adapter ≡ prf_rank_junction
// ---------------------------------------------------------------------

#[test]
fn graphical_backend_matches_junction_kernels() {
    use prf::graphical::{Factor, MarkovNetwork, VarId};
    let mut rng = StdRng::seed_from_u64(77);
    let n = 6;
    let mut factors = Vec::new();
    for j in 1..n {
        let parent = rng.gen_range(0..j);
        factors.push(Factor::new(
            vec![VarId(parent as u32), VarId(j as u32)],
            (0..4).map(|_| rng.gen_range(0.05..1.0)).collect(),
        ));
    }
    let net = MarkovNetwork::new(n, factors);
    let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
    let rel = NetworkRelation::new(&net, scores.clone());
    let jt = net.junction_tree();

    // PT(h) ≡ prf_rank_junction with the step weight.
    let legacy = prf::graphical::prf_rank_junction(&jt, &scores, &StepWeight { h: 2 });
    let got = RankQuery::pt(2).run(&rel).unwrap();
    assert_values_close(
        got.values.as_complex().unwrap(),
        &legacy,
        1e-12,
        "graphical PT",
    );

    // PRFe(α) ≡ prf_rank_junction with the exponential weight.
    let legacy = prf::graphical::prf_rank_junction(&jt, &scores, &ExponentialWeight::real(0.7));
    let got = RankQuery::prfe(0.7)
        .algorithm(Algorithm::ExactGf)
        .run(&rel)
        .unwrap();
    assert_values_close(
        got.values.as_complex().unwrap(),
        &legacy,
        1e-12,
        "graphical PRFe",
    );

    // U-Rank works through the default k-pass reduction…
    let got = RankQuery::urank(3).run(&rel).unwrap();
    assert_eq!(got.ranking.len(), 3);

    // …while the unsupported set/aggregate semantics report errors instead
    // of silently degrading.
    assert!(matches!(
        RankQuery::erank().run(&rel),
        Err(QueryError::Unsupported { .. })
    ));
    assert!(matches!(
        RankQuery::utop(2).run(&rel),
        Err(QueryError::Unsupported { .. })
    ));
}

// ---------------------------------------------------------------------
// Auto never degrades small relations, on any backend
// ---------------------------------------------------------------------

#[test]
fn auto_is_exact_at_small_scale_on_every_backend() {
    let db = random_db(5, 60);
    let tree = random_general_tree(5, 12);
    for (ctx, auto_r, exact_r) in [
        (
            "independent PRFe",
            RankQuery::prfe(0.6).run(&db).unwrap(),
            RankQuery::prfe(0.6)
                .algorithm(Algorithm::ExactGf)
                .run(&db)
                .unwrap(),
        ),
        (
            "tree PT",
            RankQuery::pt(100).run(&tree).unwrap(),
            RankQuery::pt(100)
                .algorithm(Algorithm::ExactGf)
                .run(&tree)
                .unwrap(),
        ),
    ] {
        assert_same_order(&auto_r.ranking, &exact_r.ranking, ctx);
        assert!(auto_r.report.auto_selected);
        assert!(!exact_r.report.auto_selected);
    }
}
