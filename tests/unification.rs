//! Integration tests: the PRF framework *unifies* the prior semantics
//! (Section 3.3's table of special cases), across crate boundaries.

use prf::baselines;
use prf::core::{
    prf_rank, ConstantWeight, PositionWeight, Ranking, ScoreWeight, StepWeight, TopScoreWeight,
    ValueOrder,
};
use prf::datasets::syn_ind;
use prf::pdb::{IndependentDb, TupleId};

fn db() -> IndependentDb {
    syn_ind(200, 99)
}

#[test]
fn constant_weight_ranks_by_probability() {
    let db = db();
    let via_prf = Ranking::from_values(&prf_rank(&db, &ConstantWeight), ValueOrder::RealPart);
    let direct = baselines::probability_ranking(&db);
    assert_eq!(via_prf.order(), direct.order());
}

#[test]
fn score_weight_is_escore() {
    let db = db();
    let via_prf = Ranking::from_values(&prf_rank(&db, &ScoreWeight), ValueOrder::RealPart);
    let direct = baselines::escore_ranking(&db);
    assert_eq!(via_prf.order(), direct.order());
}

#[test]
fn step_weight_is_pt() {
    let db = db();
    for h in [1usize, 10, 50] {
        let via_prf = Ranking::from_values(&prf_rank(&db, &StepWeight { h }), ValueOrder::RealPart);
        let direct = baselines::pt_ranking(&db, h);
        assert_eq!(via_prf.top_k(h), direct.top_k(h), "h = {h}");
    }
}

#[test]
fn position_weights_recover_urank() {
    let db = db();
    let k = 10;
    // Greedy distinct selection over per-position argmaxes must equal the
    // baseline implementation.
    let mut chosen: Vec<TupleId> = Vec::new();
    for j in 1..=k {
        let ups = prf_rank(&db, &PositionWeight { j });
        let best = (0..db.len())
            .map(|t| TupleId(t as u32))
            .filter(|t| !chosen.contains(t) && ups[t.index()].re > 0.0)
            .max_by(|a, b| {
                ups[a.index()]
                    .re
                    .partial_cmp(&ups[b.index()].re)
                    .unwrap()
                    .then(b.cmp(a))
            });
        chosen.extend(best);
    }
    assert_eq!(chosen, baselines::urank_topk(&db, k));
}

#[test]
fn top_score_weight_orders_like_selection_value_for_singletons() {
    let db = db();
    // ω(t, i) = δ(i=1)·score(t): Υ(t) = Pr(r(t)=1)·score(t), which is the
    // k-selection objective V({t}) restricted to... V({t}) = p·s; the PRF
    // value additionally weights by the probability nothing outranks t.
    // For k = 1 the k-selection DP maximises p·s directly:
    let (set, v) = baselines::k_selection(&db, 1).unwrap();
    let best_direct = db
        .tuples()
        .iter()
        .max_by(|a, b| {
            (a.prob * a.score)
                .partial_cmp(&(b.prob * b.score))
                .unwrap()
                .then(b.id.cmp(&a.id))
        })
        .unwrap();
    assert_eq!(set[0], best_direct.id);
    assert!((v - best_direct.prob * best_direct.score).abs() < 1e-9);
    // And the TopScoreWeight PRF is the "expected score of t as the best
    // available" — it must never exceed V for the singleton.
    let ups = prf_rank(&db, &TopScoreWeight);
    for t in db.tuples() {
        assert!(ups[t.id.index()].re <= t.prob * t.score + 1e-9);
    }
}

#[test]
fn linear_weight_matches_expected_rank_part() {
    let db = db();
    // er₁(t) = Σᵢ i·Pr(r(t)=i) = −Υ_{PRFℓ}(t); combined with er₂ it is the
    // expected rank.
    let ups = prf_rank(&db, &prf::core::LinearWeight);
    let er = baselines::expected_ranks(&db);
    let c = db.expected_world_size();
    for t in db.tuples() {
        let er1 = -ups[t.id.index()].re;
        let er2 = (1.0 - t.prob) * (c - t.prob);
        assert!(
            (er1 + er2 - er[t.id.index()]).abs() < 1e-9,
            "tuple {}: {} vs {}",
            t.id,
            er1 + er2,
            er[t.id.index()]
        );
    }
}

#[test]
fn consensus_theorems_hold_end_to_end() {
    // Theorem 2/3 verified through the public APIs on a fresh dataset.
    let db = syn_ind(7, 123);
    let worlds = db.enumerate_worlds(1 << 10).unwrap();
    let scores = db.scores();
    let k = 3;
    let consensus = baselines::consensus_topk(&db, k);
    let d_star = baselines::expected_symmetric_difference(&worlds, &consensus, k, &scores);
    // Exhaustive check over all 3-subsets.
    for a in 0..7u32 {
        for b in (a + 1)..7 {
            for c in (b + 1)..7 {
                let cand = vec![TupleId(a), TupleId(b), TupleId(c)];
                let d = baselines::expected_symmetric_difference(&worlds, &cand, k, &scores);
                assert!(d_star <= d + 1e-9);
            }
        }
    }
}

#[test]
fn prfe_log_scaled_and_plain_agree_on_top_k() {
    let db = syn_ind(5_000, 7);
    let alpha = 0.85;
    let k = 200;
    let plain = Ranking::from_values(
        &prf::core::prfe_rank(&db, prf::numeric::Complex::real(alpha)),
        ValueOrder::Magnitude,
    );
    let logd = Ranking::from_keys(&prf::core::prfe_rank_log(&db, alpha));
    let scaled_vals = prf::core::prfe_rank_scaled(&db, prf::numeric::Complex::real(alpha));
    let keys: Vec<f64> = scaled_vals.iter().map(|v| v.magnitude_key()).collect();
    let scaled = Ranking::from_keys(&keys);
    assert_eq!(logd.top_k(k), scaled.top_k(k));
    assert_eq!(plain.top_k(k), scaled.top_k(k));
}
