//! Differential suite for the serving layer: queries submitted through a
//! [`RankServer`] from **many concurrent client threads** must produce
//! **value-identical** (1e-9) results to running each [`RankQuery`]
//! directly and sequentially — across `IndependentDb` and `AndXorTree`
//! (x-tuple and general) backends and all three numeric modes
//! (plain complex, log-domain, scaled).
//!
//! The direct side never touches `prf-serve` (and the batch layer it
//! flushes through is differential-tested against the single kernels in
//! `tests/batch_equivalence.rs`), so the comparison is not circular: it
//! pins the *whole* serving path — concurrent submission, queueing,
//! deadline/size-triggered flushing, per-entry isolation, response routing.

use std::thread;
use std::time::Duration;

use prf::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-9;

// ---------------------------------------------------------------------
// Seeded random instances (same shapes as tests/batch_equivalence.rs)
// ---------------------------------------------------------------------

fn random_db(seed: u64, n: usize) -> IndependentDb {
    let mut rng = StdRng::seed_from_u64(seed);
    IndependentDb::from_pairs((0..n).map(|_| {
        (
            rng.gen_range(0.0..1000.0),
            match rng.gen_range(0..10) {
                0 => 0.0,
                1 => 1.0,
                _ => rng.gen_range(0.01..1.0),
            },
        )
    }))
    .expect("valid pairs")
}

fn random_xtuple_tree(seed: u64, groups: usize) -> AndXorTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec: Vec<Vec<(f64, f64)>> = (0..groups)
        .map(|_| {
            let alts = rng.gen_range(1..4);
            let mut budget = 1.0f64;
            (0..alts)
                .map(|_| {
                    let p = rng.gen_range(0.0..budget.min(0.7));
                    budget -= p;
                    (rng.gen_range(0.0..1000.0), p)
                })
                .collect()
        })
        .collect();
    AndXorTree::from_x_tuples(&spec).expect("valid groups")
}

fn random_general_tree(seed: u64, target_leaves: usize) -> AndXorTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TreeBuilder::new(NodeKind::And);
    let root = b.root();
    let mut frontier = vec![(root, false, 1.0f64)];
    let mut leaves = 0usize;
    while leaves < target_leaves {
        let idx = rng.gen_range(0..frontier.len());
        let (node, is_xor, budget) = frontier[idx];
        let p = if is_xor {
            let p = rng.gen_range(0.0..budget.min(0.6));
            frontier[idx].2 -= p;
            p
        } else {
            1.0
        };
        if frontier.len() > 6 || rng.gen_bool(0.7) {
            b.add_leaf(node, p, rng.gen_range(0.0..1000.0)).unwrap();
            leaves += 1;
        } else {
            let child_xor = rng.gen_bool(0.5);
            let kind = if child_xor {
                NodeKind::Xor
            } else {
                NodeKind::And
            };
            let child = b.add_inner(node, kind, p).unwrap();
            frontier.push((child, child_xor, 1.0));
        }
    }
    b.build().unwrap()
}

/// A randomized query covering every semantics with a shared-walk form in
/// every numeric mode, plus single-routed semantics, with occasional
/// `top_k` (exercising the pushdown through the serving path).
fn random_query(rng: &mut StdRng, n: usize) -> RankQuery {
    let q = match rng.gen_range(0..10) {
        0 => RankQuery::pt(rng.gen_range(1..=n.max(2))),
        1 => RankQuery::consensus(rng.gen_range(1..=n.max(2))),
        2 => RankQuery::prf(TabulatedWeight::from_real(&[2.0, 1.0, 0.5, 0.25])),
        3 => RankQuery::prfe(rng.gen_range(0.05..1.0)),
        4 => RankQuery::prfe(rng.gen_range(0.05..1.0)).algorithm(Algorithm::ExactGf),
        5 => RankQuery::prfe(rng.gen_range(0.05..1.0)).algorithm(Algorithm::LogDomain),
        6 => RankQuery::prfe_complex(Complex::new(0.6, 0.3)).algorithm(Algorithm::Scaled),
        7 => RankQuery::erank(),
        8 => RankQuery::escore(),
        _ => RankQuery::urank(rng.gen_range(1..=3)),
    };
    if rng.gen_bool(0.3) {
        q.top_k(rng.gen_range(1..=n.max(2)))
    } else {
        q
    }
}

/// `a ≈ b` with the suite's relative tolerance (matching infinities pass —
/// log-domain `Υ = 0` keys).
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * b.abs().max(1.0) || (a.is_infinite() && b.is_infinite() && a == b)
}

/// Value-identical within `TOL`, identical numeric mode. `order_exact`
/// additionally requires the identical ranking order — used everywhere
/// except the sharded-parallel comparison, where sub-1e-9 float
/// differences between the fast-forward and incremental fold orders can
/// flip *exact ties* (the same slack `tests/batch_equivalence.rs` allows);
/// there the per-position ranking keys must still agree.
fn assert_equivalent(got: &RankedResult, want: &RankedResult, ctx: &str, order_exact: bool) {
    assert_eq!(
        got.report.numeric_mode, want.report.numeric_mode,
        "{ctx}: numeric mode"
    );
    if order_exact {
        assert_eq!(got.ranking.order(), want.ranking.order(), "{ctx}: order");
    }
    assert_eq!(got.ranking.len(), want.ranking.len(), "{ctx}: rank length");
    for pos in 0..got.ranking.len() {
        let (g, w) = (got.ranking.key_at(pos), want.ranking.key_at(pos));
        assert!(close(g, w), "{ctx}: key at {pos}: {g} vs {w}");
    }
    match (&got.values, &want.values) {
        (Values::Complex(g), Values::Complex(w)) => {
            for (t, (a, b)) in g.iter().zip(w).enumerate() {
                assert!(
                    close(a.re, b.re) && close(a.im, b.im),
                    "{ctx}: complex value t{t}: {a} vs {b}"
                );
            }
        }
        (Values::LogDomain(g), Values::LogDomain(w)) => {
            for (t, (&a, &b)) in g.iter().zip(w).enumerate() {
                assert!(close(a, b), "{ctx}: log key t{t}: {a} vs {b}");
            }
        }
        (Values::Scaled(g), Values::Scaled(w)) => {
            for (t, (a, b)) in g.iter().zip(w).enumerate() {
                let (ka, kb) = (a.magnitude_key(), b.magnitude_key());
                assert!(close(ka, kb), "{ctx}: scaled magnitude t{t}: {ka} vs {kb}");
            }
        }
        (g, w) => panic!("{ctx}: value shape mismatch: {g:?} vs {w:?}"),
    }
}

/// Pushes `queries` through a server from `clients` concurrent threads
/// (striped round-robin) and checks every response against the direct
/// sequential run.
fn run_concurrently_and_compare(
    rel: impl ProbabilisticRelation + Send + Sync + Clone + 'static,
    queries: &[RankQuery],
    clients: usize,
    config: ServeConfig,
    ctx: &str,
) {
    run_concurrently_and_compare_inner(rel, queries, clients, config, ctx, true);
}

fn run_concurrently_and_compare_inner(
    rel: impl ProbabilisticRelation + Send + Sync + Clone + 'static,
    queries: &[RankQuery],
    clients: usize,
    config: ServeConfig,
    ctx: &str,
    order_exact: bool,
) {
    let server = RankServer::new(config);
    let id = server.register(ctx.to_string(), rel.clone());
    let answers: Vec<(usize, Result<RankedResult, QueryError>)> = thread::scope(|s| {
        let mut workers = Vec::new();
        for c in 0..clients {
            let server = &server;
            let queries = &queries;
            workers.push(s.spawn(move || {
                let mut out = Vec::new();
                for (i, q) in queries.iter().enumerate() {
                    if i % clients != c {
                        continue;
                    }
                    let handle = server.submit(id, q.clone()).expect("server is up");
                    // Mix blocking and polling receivers.
                    if i % 3 == 0 {
                        let mut handle = handle;
                        loop {
                            if let Some(answer) = handle.try_recv() {
                                out.push((i, answer));
                                break;
                            }
                            thread::yield_now();
                        }
                    } else {
                        out.push((i, handle.recv()));
                    }
                }
                out
            }));
        }
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect()
    });
    server.shutdown();

    assert_eq!(answers.len(), queries.len(), "{ctx}: every query answered");
    for (i, got) in answers {
        let q = &queries[i];
        let ctx = format!("{ctx}: query {i} ({})", q.semantics().name());
        match (got, q.run(&rel)) {
            (Ok(got), Ok(want)) => {
                assert_equivalent(&got, &want, &ctx, order_exact);
                let serve = got.report.serve.expect("served answers carry provenance");
                assert!(serve.queue_seconds >= 0.0, "{ctx}");
                assert!(serve.flush_size >= 1, "{ctx}");
            }
            (Err(got), Err(want)) => assert_eq!(got, want, "{ctx}"),
            (got, want) => panic!("{ctx}: served {got:?} vs direct {want:?}"),
        }
    }
}

fn mixed_trace(seed: u64, n: usize, len: usize) -> Vec<RankQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| random_query(&mut rng, n)).collect()
}

// ---------------------------------------------------------------------
// The acceptance matrix: backends × client counts
// ---------------------------------------------------------------------

#[test]
fn serve_equals_sequential_on_independent_16_threads() {
    let db = random_db(11, 60);
    let queries = mixed_trace(12, 60, 64);
    run_concurrently_and_compare(
        db,
        &queries,
        16,
        ServeConfig::new()
            .max_delay(Duration::from_micros(500))
            .max_batch(8),
        "independent/16",
    );
}

#[test]
fn serve_equals_sequential_on_xtuple_tree_16_threads() {
    let tree = random_xtuple_tree(21, 18);
    let n = prf::pdb::AndXorTree::n_tuples(&tree);
    let queries = mixed_trace(22, n, 48);
    run_concurrently_and_compare(
        tree,
        &queries,
        16,
        ServeConfig::new()
            .max_delay(Duration::from_micros(500))
            .max_batch(6),
        "xtuple/16",
    );
}

#[test]
fn serve_equals_sequential_on_general_tree_16_threads() {
    let tree = random_general_tree(31, 24);
    let n = prf::pdb::AndXorTree::n_tuples(&tree);
    let queries = mixed_trace(32, n, 48);
    run_concurrently_and_compare(
        tree,
        &queries,
        16,
        ServeConfig::new()
            .max_delay(Duration::from_micros(500))
            .max_batch(6),
        "general-tree/16",
    );
}

#[test]
fn serve_equals_sequential_two_threads_zero_deadline() {
    // Zero deadline: flushes degenerate towards singletons — the other
    // extreme of the batching spectrum must agree too.
    let db = random_db(41, 40);
    let queries = mixed_trace(42, 40, 24);
    run_concurrently_and_compare(
        db,
        &queries,
        2,
        ServeConfig::new().max_delay(Duration::ZERO),
        "independent/2/zero-deadline",
    );
}

#[test]
fn serve_equals_sequential_with_parallel_walks() {
    // Sharded shared walks under the server must stay answer-identical.
    let tree = random_general_tree(51, 30);
    let n = prf::pdb::AndXorTree::n_tuples(&tree);
    let queries = mixed_trace(52, n, 24);
    run_concurrently_and_compare_inner(
        tree,
        &queries,
        4,
        ServeConfig::new()
            .max_delay(Duration::from_micros(500))
            .max_batch(8)
            .parallel(2),
        "general-tree/4/parallel",
        // Shard fold order may flip exact ties; values and per-position
        // keys must still agree.
        false,
    );
}

#[test]
fn serve_routes_answers_across_multiple_relations() {
    // Two relations on one server: responses must never cross queues.
    let db = random_db(61, 30);
    let tree = random_general_tree(62, 16);
    let tree_n = prf::pdb::AndXorTree::n_tuples(&tree);
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_micros(300))
            .max_batch(5),
    );
    let db_id = server.register("db", db.clone());
    let tree_id = server.register("tree", tree.clone());

    let mut rng = StdRng::seed_from_u64(63);
    let submissions: Vec<(bool, RankQuery)> = (0..40)
        .map(|_| {
            let to_db = rng.gen_bool(0.5);
            let n = if to_db { 30 } else { tree_n };
            (to_db, random_query(&mut rng, n))
        })
        .collect();

    let answers: Vec<(usize, Result<RankedResult, QueryError>)> = thread::scope(|s| {
        let mut workers = Vec::new();
        for c in 0..8usize {
            let server = &server;
            let submissions = &submissions;
            workers.push(s.spawn(move || {
                let mut out = Vec::new();
                for (i, (to_db, q)) in submissions.iter().enumerate() {
                    if i % 8 != c {
                        continue;
                    }
                    let id = if *to_db { db_id } else { tree_id };
                    out.push((i, server.submit(id, q.clone()).unwrap().recv()));
                }
                out
            }));
        }
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect()
    });

    for (i, got) in answers {
        let (to_db, q) = &submissions[i];
        let want = if *to_db { q.run(&db) } else { q.run(&tree) };
        let ctx = format!(
            "multi-relation query {i} on {} ({})",
            if *to_db { "db" } else { "tree" },
            q.semantics().name()
        );
        match (got, want) {
            (Ok(got), Ok(want)) => assert_equivalent(&got, &want, &ctx, true),
            (Err(got), Err(want)) => assert_eq!(got, want, "{ctx}"),
            (got, want) => panic!("{ctx}: served {got:?} vs direct {want:?}"),
        }
    }
}
