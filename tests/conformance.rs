//! Semantics-conformance suite: Zhang & Chomicki's postulates for top-k
//! answers over probabilistic relations (*Semantics and Evaluation of
//! Top-k Queries in Probabilistic Databases*), checked as properties over
//! **every** [`Semantics`] variant and every backend:
//!
//! * **Exact-k**: a top-k query over a relation with ≥ k tuples answers
//!   with exactly k (distinct) tuples.
//! * **Faithfulness**: if `score(a) > score(b)` and `Pr(a) > Pr(b)` —
//!   `a` *dominates* `b` — then `a` ranks no worse than `b`.
//! * **Stability**: making a winner better (raising its score or
//!   probability) keeps it a winner; making a loser worse keeps it a
//!   loser.
//!
//! The postulates provably hold for the PRF family on **independent**
//! data — that is what the proptests pin, across the independent, x-tuple
//! tree, and graphical backends (the latter two fed independent instances,
//! so every backend faces the same ground truth). They are *not* theorems
//! in general: U-Rank and U-Top genuinely violate exact-k under
//! correlation (a rank that no world occupies), and correlation breaks
//! faithfulness for the whole family (a tuple AND-grouped under a stronger
//! partner can be unreachable at rank 1). Those violations are pinned as
//! counterexample tests below — the suite documents where the postulates
//! end, not just where they hold.

use prf::core::DcgWeight;
use prf::prelude::*;
use proptest::prelude::*;

const TOL: f64 = 1e-9;

// ---------------------------------------------------------------------
// Instance generation: independent ground truth for every backend
// ---------------------------------------------------------------------

/// Scored, open-interval probabilities: every rank ≤ n is occupied with
/// positive probability, so exact-k is well-posed for every semantics.
fn pairs_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..1000.0, 0.05f64..0.95), 2..10).prop_map(|mut v| {
        // Distinct scores (ties are legal but make rank positions
        // ambiguous across backends' tie-breaking).
        for (i, p) in v.iter_mut().enumerate() {
            p.0 += i as f64 * 1e-3;
        }
        v
    })
}

fn independent_db(pairs: &[(f64, f64)]) -> IndependentDb {
    IndependentDb::from_pairs(pairs.iter().copied()).expect("valid pairs")
}

/// The same instance as a degenerate (singleton-group) x-tuple tree: the
/// tree backend fed independent data.
fn singleton_tree(pairs: &[(f64, f64)]) -> AndXorTree {
    AndXorTree::from_x_tuples(&pairs.iter().map(|&(s, p)| vec![(s, p)]).collect::<Vec<_>>())
        .expect("valid tree")
}

/// The same instance as a graphical model with singleton factors: the
/// junction-tree backend fed independent data.
fn singleton_network(pairs: &[(f64, f64)]) -> NetworkRelation {
    use prf::graphical::{Factor, MarkovNetwork, VarId};
    let factors = pairs
        .iter()
        .enumerate()
        .map(|(i, &(_, p))| Factor::singleton(VarId(i as u32), 1.0 - p, p))
        .collect();
    let net = MarkovNetwork::new(pairs.len(), factors);
    NetworkRelation::new(&net, pairs.iter().map(|&(s, _)| s).collect())
}

/// Every `Semantics` variant, parameterised for an `n`-tuple relation.
fn all_semantics(n: usize, k: usize) -> Vec<Semantics> {
    vec![
        Semantics::Prf(std::sync::Arc::new(DcgWeight)),
        Semantics::Prfe(Complex::real(0.9)),
        Semantics::Pt(k.min(n)),
        Semantics::UTop(k.min(n)),
        Semantics::URank(k.min(n)),
        Semantics::ERank,
        Semantics::EScore,
        Semantics::Consensus(k.min(n)),
    ]
}

/// The variants whose Υ is monotone under dominance on independent data —
/// the set the faithfulness/stability postulates are theorems for. U-Rank
/// and U-Top are checked separately (they hold on independent data too,
/// but through set/positional arguments rather than value monotonicity).
fn prf_family(n: usize, k: usize) -> Vec<Semantics> {
    vec![
        Semantics::Prf(std::sync::Arc::new(DcgWeight)),
        Semantics::Prfe(Complex::real(0.9)),
        Semantics::Pt(k.min(n)),
        Semantics::ERank,
        Semantics::EScore,
        Semantics::Consensus(k.min(n)),
    ]
}

fn top_k(rel: &(impl ProbabilisticRelation + ?Sized), sem: Semantics, k: usize) -> Vec<TupleId> {
    RankQuery::new(sem)
        .top_k(k)
        .run(rel)
        .expect("query evaluates")
        .ranking
        .order()
        .to_vec()
}

/// Position of `t` in the full ranking (0-based; smaller is better).
fn position(rel: &(impl ProbabilisticRelation + ?Sized), sem: Semantics, t: TupleId) -> usize {
    RankQuery::new(sem)
        .run(rel)
        .expect("query evaluates")
        .ranking
        .order()
        .iter()
        .position(|&x| x == t)
        .expect("every tuple is ranked")
}

// ---------------------------------------------------------------------
// Postulate 1: exact-k — every variant, every backend
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_k_holds_for_every_variant_and_backend(
        pairs in pairs_strategy(),
        k_seed in 1usize..8,
    ) {
        let n = pairs.len();
        let k = 1 + k_seed % n;
        let db = independent_db(&pairs);
        let tree = singleton_tree(&pairs);
        let net = singleton_network(&pairs);
        for sem in all_semantics(n, k) {
            // The graphical backend has no exact E-Rank/U-Top algorithm;
            // everything else must answer on all three backends.
            let on_net = !matches!(sem, Semantics::ERank | Semantics::UTop(_));
            // U-Rank genuinely violates exact-k even on independent data
            // (pinned below): a position's winner may already hold an
            // earlier position, leaving the rank unanswerable. For it we
            // assert the weaker guarantee: never *more* than k, distinct.
            let exact = !matches!(sem, Semantics::URank(_));
            let name = sem.name();
            let order = top_k(&db, sem.clone(), k);
            if exact {
                prop_assert_eq!(order.len(), k, "{} on IndependentDb", &name);
            } else {
                prop_assert!(order.len() <= k, "{} overshot k", &name);
            }
            let mut distinct = order.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), order.len(), "{} distinct members", &name);
            let t_order = top_k(&tree, sem.clone(), k);
            if exact {
                prop_assert_eq!(t_order.len(), k, "{} on AndXorTree", &name);
            }
            if on_net && exact {
                let n_order = top_k(&net, sem.clone(), k);
                prop_assert_eq!(n_order.len(), k, "{} on NetworkRelation", &name);
            }
            // U-Top's *set* answer is exactly k too, not just its ranking.
            if matches!(sem, Semantics::UTop(_)) {
                let set = RankQuery::new(sem).run(&db).unwrap().set.unwrap();
                prop_assert_eq!(set.members.len(), k, "U-Top set size");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Postulate 2: faithfulness — dominance is respected on independent data
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn faithfulness_holds_on_independent_data(
        mut pairs in pairs_strategy(),
        a_seed in 0usize..100,
        b_seed in 0usize..100,
    ) {
        let n = pairs.len();
        let a = a_seed % n;
        let b = {
            let b = b_seed % n;
            if b == a { (b + 1) % n } else { b }
        };
        // Force `a` to dominate `b` with solid margins (no fp ambiguity).
        pairs[a].0 = pairs[b].0 + 10.0;
        pairs[a].1 = (pairs[b].1 + 0.04).min(0.99);
        pairs[b].1 = (pairs[a].1 - 0.04).max(0.01);
        let (ta, tb) = (TupleId(a as u32), TupleId(b as u32));
        let db = independent_db(&pairs);
        let tree = singleton_tree(&pairs);
        let net = singleton_network(&pairs);
        for sem in prf_family(n, 1 + a_seed % n) {
            let name = sem.name();
            prop_assert!(
                position(&db, sem.clone(), ta) < position(&db, sem.clone(), tb),
                "{}: dominated tuple ranked better (IndependentDb)", &name
            );
            prop_assert!(
                position(&tree, sem.clone(), ta) < position(&tree, sem.clone(), tb),
                "{}: dominated tuple ranked better (AndXorTree)", &name
            );
            if !matches!(sem, Semantics::ERank) {
                prop_assert!(
                    position(&net, sem.clone(), ta) < position(&net, sem.clone(), tb),
                    "{}: dominated tuple ranked better (NetworkRelation)", &name
                );
            }
        }
        // (U-Rank is absent here on purpose: its greedy positional
        // selection violates faithfulness even on independent data — the
        // violation is pinned below in `urank_violates_faithfulness`.)
        // U-Top: the most probable top-k set never keeps the dominated
        // tuple while rejecting its dominator.
        for k in 1..=n {
            let set = RankQuery::utop(k).run(&db).unwrap().set.unwrap();
            let has_a = set.members.contains(&ta);
            let has_b = set.members.contains(&tb);
            prop_assert!(
                has_a || !has_b,
                "U-Top({k}): set kept the dominated tuple and dropped its dominator"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Postulate 3: stability — better winners stay in, worse losers stay out
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stability_holds_on_independent_data(
        pairs in pairs_strategy(),
        k_seed in 1usize..8,
        raise_seed in 0usize..2,
    ) {
        let raise_score = raise_seed == 0;
        let n = pairs.len();
        let k = 1 + k_seed % n;
        let db = independent_db(&pairs);
        let max_score = pairs.iter().map(|p| p.0).fold(f64::MIN, f64::max);
        let min_score = pairs.iter().map(|p| p.0).fold(f64::MAX, f64::min);
        for sem in prf_family(n, k) {
            let name = sem.name();
            let order = top_k(&db, sem.clone(), k);
            // Better the winner: it must stay a winner.
            let winner = order[0];
            let mut raised = pairs.clone();
            if raise_score {
                raised[winner.index()].0 = max_score + 5.0;
            } else {
                raised[winner.index()].1 = (raised[winner.index()].1 + 0.2).min(0.999);
            }
            let after = top_k(&independent_db(&raised), sem.clone(), k);
            prop_assert!(
                after.contains(&winner),
                "{}: bettering the top winner evicted it", &name
            );
            // Worsen a loser: it must stay a loser.
            if k < n {
                let full = RankQuery::new(sem.clone()).run(&db).unwrap();
                let loser = *full.ranking.order().last().unwrap();
                let mut lowered = pairs.clone();
                if raise_score {
                    lowered[loser.index()].0 = min_score - 5.0;
                } else {
                    lowered[loser.index()].1 = (lowered[loser.index()].1 - 0.2).max(0.001);
                }
                let after = top_k(&independent_db(&lowered), sem.clone(), k);
                prop_assert!(
                    !after.contains(&loser),
                    "{}: worsening the bottom loser admitted it", &name
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Where the postulates end: pinned violations (genuine, not bugs)
// ---------------------------------------------------------------------

/// An xor pair leaves rank 3 unoccupied in every world: `{a ⊕ b}` with a
/// certain `c` means every world holds exactly 2 tuples — `Pr(r(t) = 3)`
/// is 0 for every `t`. U-Rank(3) therefore **cannot** answer with 3
/// tuples: exact-k is genuinely violated under correlation.
#[test]
fn urank_violates_exact_k_under_correlation() {
    let tree =
        AndXorTree::from_x_tuples(&[vec![(10.0, 0.5), (9.0, 0.5)], vec![(8.0, 1.0)]]).unwrap();
    let res = RankQuery::urank(3).run(&tree).unwrap();
    assert_eq!(
        res.ranking.order().len(),
        2,
        "only two positions are ever occupied"
    );
    // Sanity: a well-behaved independent instance does fill all three
    // positions — each rank has a distinct most-probable occupant.
    let db = IndependentDb::from_pairs([(10.0, 0.9), (9.0, 0.9), (8.0, 0.9)]).unwrap();
    assert_eq!(
        RankQuery::urank(3).run(&db).unwrap().ranking.order().len(),
        3
    );
}

/// U-Rank falls short of k even on **independent** data: with
/// `(10, 0.5), (9, 0.5), (8, 1.0)` the certain tuple `t2` is the most
/// probable occupant of *both* rank 2 (Pr ½) and rank 3 (Pr ¼); once it
/// takes rank 2, no remaining tuple has positive probability at rank 3
/// (`t0`/`t1` can never be third), so U-Rank(3) answers with 2 tuples.
#[test]
fn urank_falls_short_even_on_independent_data() {
    let db = IndependentDb::from_pairs([(10.0, 0.5), (9.0, 0.5), (8.0, 1.0)]).unwrap();
    let res = RankQuery::urank(3).run(&db).unwrap();
    assert_eq!(res.ranking.order(), &[TupleId(0), TupleId(2)]);
}

/// U-Rank violates faithfulness on independent data: with
/// `a = (3, 0.3)`, `b = (2, 0.25)`, `c = (1, 1.0)`, `a` dominates `b` in
/// both score and probability, yet U-Rank(2) answers `[c, b]` — the
/// certain low-score `c` wins rank 1 (Pr 0.525 vs `a`'s 0.3), and rank 2
/// falls to `b` (Pr 0.075) because `a` at rank 2 is impossible (nothing
/// outscores it). The dominated tuple is in the answer; its dominator is
/// not.
#[test]
fn urank_violates_faithfulness() {
    let db = IndependentDb::from_pairs([(3.0, 0.3), (2.0, 0.25), (1.0, 1.0)]).unwrap();
    let (a, b, c) = (TupleId(0), TupleId(1), TupleId(2));
    let res = RankQuery::urank(2).run(&db).unwrap();
    assert_eq!(res.ranking.order(), &[c, b]);
    assert!(!res.ranking.order().contains(&a));
}

/// Same instance, U-Top(3): no 3-tuple set is ever the exact top-3 (no
/// world holds 3 tuples), so there is no set answer at all.
#[test]
fn utop_violates_exact_k_under_correlation() {
    let tree =
        AndXorTree::from_x_tuples(&[vec![(10.0, 0.5), (9.0, 0.5)], vec![(8.0, 1.0)]]).unwrap();
    let err = RankQuery::utop(3).run(&tree).unwrap_err();
    assert!(matches!(err, QueryError::NoSetAnswer), "{err}");
}

/// Correlation breaks faithfulness for the whole PRF family: `t1`
/// (score 10, marginal 0.5) AND-grouped under `u` (score 20) can never be
/// at rank 1 — `u` outranks it in every world they share — so PT(1) gives
/// it Υ = 0, while the *dominated* independent `t2` (score 5, marginal
/// 0.3) earns Υ = 0.3·0.5 = 0.15 and ranks above it. The postulate's
/// independence assumption is load-bearing.
#[test]
fn correlation_breaks_faithfulness() {
    use prf::pdb::{NodeKind, TreeBuilder};
    let mut b = TreeBuilder::new(NodeKind::And);
    let root = b.root();
    // ⟨u, t1⟩ live and die together (an AND group present with prob 0.5).
    let x1 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
    let grp = b.add_inner(x1, NodeKind::And, 0.5).unwrap();
    let u = b.add_leaf(grp, 1.0, 20.0).unwrap();
    let t1 = b.add_leaf(grp, 1.0, 10.0).unwrap();
    // t2 is independent of the group.
    let x2 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
    let t2 = b.add_leaf(x2, 0.3, 5.0).unwrap();
    let tree = b.build().unwrap();

    // t1 dominates t2 in both coordinates…
    let marginals = tree.marginals();
    assert!(tree.scores()[t1.index()] > tree.scores()[t2.index()]);
    assert!(marginals[t1.index()] > marginals[t2.index()]);

    // …yet PT(1) ranks t2 strictly above t1.
    let res = RankQuery::pt(1).run(&tree).unwrap();
    let vals = res.values.as_complex().unwrap();
    assert!(vals[t1.index()].re.abs() < TOL, "t1 can never be rank 1");
    assert!((vals[t2.index()].re - 0.15).abs() < TOL);
    let order = res.ranking.order();
    let pos = |t: TupleId| order.iter().position(|&x| x == t).unwrap();
    assert!(
        pos(t2) < pos(t1),
        "the dominated tuple wins under correlation"
    );
    let _ = u;
}
