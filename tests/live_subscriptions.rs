//! Schedule-shaking proptest for the live-mutation serving path: seeded
//! random interleavings of `apply` / `subscribe` / `submit` / `shutdown`
//! across threads (same approach as tests/serve_stress.rs — no loom-style
//! model checker in a std-only workspace, so interleaving coverage comes
//! from repeated seeded schedules that replay deterministically).
//!
//! The invariants under test:
//! * every **accepted** mutation resolves to its effect — the shutdown
//!   drain applies pending mutations, none are lost;
//! * every subscriber's delta stream is **gap-free from seq 0**, opens
//!   with a full snapshot (`entered` = the whole ranking), and each later
//!   delta's `entered`/`left`/`moved` is exactly the diff of its
//!   neighbours' orders;
//! * mutators touch **disjoint tuples** (the mutations commute), so when
//!   they all finish before shutdown every subscriber's *final* delta
//!   must rank exactly like an offline rebuild of the final state — i.e.
//!   the stream is consistent with some serialization of the mutations;
//! * shutdown resolves **every** handle: plain submissions drain, and
//!   every subscription terminates with the clean `Shutdown` error.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use prf::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 24;

/// Distinct scores and well-spread probabilities: rankings are tie-free,
/// so the final state after commuting reweights is schedule-independent.
fn seed_pairs() -> Vec<(f64, f64)> {
    (0..N)
        .map(|i| {
            (
                100.0 - i as f64,
                0.05 + 0.9 * ((i * 7919) % 997) as f64 / 997.0,
            )
        })
        .collect()
}

fn sub_query(which: usize) -> RankQuery {
    match which % 3 {
        0 => RankQuery::prfe(0.9),
        1 => RankQuery::pt(6),
        _ => RankQuery::escore(),
    }
}

/// The `(entered, left, moved)` shape of a delta.
type OrderDiff = (Vec<TupleId>, Vec<TupleId>, Vec<(TupleId, usize, usize)>);

/// Local mirror of the server's delta diff, to check every consecutive
/// pair of orders in a subscriber's stream.
fn expected_diff(old: Option<&[TupleId]>, new: &[TupleId]) -> OrderDiff {
    let old = old.unwrap_or(&[]);
    let old_pos: HashMap<TupleId, usize> = old.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let mut entered = Vec::new();
    let mut moved = Vec::new();
    for (i, &t) in new.iter().enumerate() {
        match old_pos.get(&t) {
            None => entered.push(t),
            Some(&j) if j != i => moved.push((t, j, i)),
            _ => {}
        }
    }
    let new_set: HashSet<TupleId> = new.iter().copied().collect();
    let left = old
        .iter()
        .copied()
        .filter(|t| !new_set.contains(t))
        .collect();
    (entered, left, moved)
}

/// One seeded schedule. Returns, per subscriber, the query index and the
/// collected delta stream; plus the mutation count actually accepted and
/// the final per-tuple probabilities (only meaningful when the schedule
/// did not race shutdown into the mutators).
struct ScheduleOutcome {
    streams: Vec<(usize, Vec<RankingDelta>)>,
    accepted_muts: usize,
    final_pairs: Vec<(f64, f64)>,
    clean: bool,
}

fn run_schedule(seed: u64) -> ScheduleOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let deadline = match rng.gen_range(0..4) {
        0 => Duration::ZERO,
        1 => Duration::from_micros(50),
        2 => Duration::from_millis(1),
        _ => Duration::from_secs(3600), // only size limit / shutdown flush
    };
    let mut config = ServeConfig::new()
        .max_delay(deadline)
        .max_batch(rng.gen_range(1..7));
    if rng.gen_bool(0.25) {
        config = config.parallel(2);
    }
    let mutators = rng.gen_range(1..4usize);
    let subscribers = rng.gen_range(1..4usize);
    let submitters = rng.gen_range(0..3usize);
    let shutdown_mid = rng.gen_bool(0.3);

    // Pre-draw every mutator's schedule. Mutator `m` owns tuples with
    // `t % mutators == m`, so all mutations commute; a global draw index
    // keeps every new probability distinct.
    let mut draw = 0usize;
    let schedules: Vec<Vec<(usize, f64, bool)>> = (0..mutators)
        .map(|m| {
            let count = rng.gen_range(0..10usize);
            (0..count)
                .map(|_| {
                    let t = (rng.gen_range(0..N) / mutators) * mutators + m;
                    debug_assert!(t < N);
                    draw += 1;
                    (t, 0.02 + 0.9 * draw as f64 / 256.0, rng.gen_bool(0.3))
                })
                .collect()
        })
        .collect();
    let total_muts: usize = schedules.iter().map(Vec::len).sum();
    let mut final_pairs = seed_pairs();
    for schedule in &schedules {
        for &(t, p, _) in schedule {
            final_pairs[t].1 = p;
        }
    }

    let server = RankServer::new(config);
    let rel = server.register_live(
        "live",
        Arc::new(LiveRelation::new(
            IndependentDb::from_pairs(seed_pairs()).unwrap(),
        )),
    );

    let (streams, mut_handles, query_handles) = thread::scope(|s| {
        let sub_workers: Vec<_> = (0..subscribers)
            .map(|which| {
                let server = &server;
                s.spawn(move || {
                    if which % 2 == 1 {
                        thread::yield_now();
                    }
                    let Ok(handle) = server.subscribe(rel, sub_query(which)) else {
                        return None; // lost the race with shutdown: clean rejection
                    };
                    let mut deltas = Vec::new();
                    loop {
                        match handle.recv() {
                            Ok(delta) => deltas.push(delta),
                            Err(e) => {
                                assert_eq!(e, QueryError::Shutdown, "subscriber {which}");
                                return Some((which, deltas));
                            }
                        }
                    }
                })
            })
            .collect();
        let mut_workers: Vec<_> = schedules
            .iter()
            .map(|schedule| {
                let server = &server;
                s.spawn(move || {
                    let mut handles = Vec::new();
                    for &(t, p, pause) in schedule {
                        if pause {
                            thread::yield_now();
                        }
                        match server.apply(rel, Mutation::Reweight(TupleId(t as u32), p)) {
                            Ok(h) => handles.push(h),
                            Err(e) => {
                                assert_eq!(e, QueryError::Shutdown, "only clean rejections");
                                break;
                            }
                        }
                    }
                    handles
                })
            })
            .collect();
        let submit_workers: Vec<_> = (0..submitters)
            .map(|c| {
                let server = &server;
                s.spawn(move || {
                    let mut handles = Vec::new();
                    for i in 0..4usize {
                        match server.submit(rel, RankQuery::pt(1 + (c + i) % 8)) {
                            Ok(h) => handles.push(h),
                            Err(e) => {
                                assert_eq!(e, QueryError::Shutdown, "only clean rejections");
                                break;
                            }
                        }
                    }
                    handles
                })
            })
            .collect();
        if shutdown_mid {
            let server = &server;
            s.spawn(move || {
                thread::yield_now();
                server.shutdown();
            });
        }
        // Join producers first (handles are answered by flushes or the
        // drain, so recv must wait until after shutdown), then stop the
        // server, then let the subscriber loops run to their Shutdown.
        let mut_handles: Vec<_> = mut_workers
            .into_iter()
            .flat_map(|w| w.join().expect("mutator"))
            .collect();
        let query_handles: Vec<_> = submit_workers
            .into_iter()
            .flat_map(|w| w.join().expect("submitter"))
            .collect();
        server.shutdown();
        let streams: Vec<_> = sub_workers
            .into_iter()
            .filter_map(|w| w.join().expect("subscriber"))
            .collect();
        (streams, mut_handles, query_handles)
    });

    let accepted_muts = mut_handles.len();
    let clean = !shutdown_mid;
    assert!(
        !clean || accepted_muts == total_muts,
        "without a shutdown race every mutation is accepted"
    );
    for (i, h) in mut_handles.into_iter().enumerate() {
        let effect = h.recv().expect("accepted mutations are applied");
        assert!(
            matches!(effect, MutationEffect::Reweighted { .. }),
            "mutation {i}"
        );
    }
    for h in query_handles {
        h.recv().expect("accepted submissions drain");
    }
    ScheduleOutcome {
        streams,
        accepted_muts,
        final_pairs,
        clean,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn delta_streams_are_serializations_of_the_mutations(seed in 0u64..100_000) {
        let out = run_schedule(seed);
        for (which, deltas) in &out.streams {
            prop_assert!(!deltas.is_empty() || !out.clean,
                "subscriber {} got no snapshot before an orderly shutdown", which);
            let mut prev: Option<Vec<TupleId>> = None;
            for (k, delta) in deltas.iter().enumerate() {
                prop_assert_eq!(delta.seq, k as u64, "subscriber {} seq gap", which);
                let order = delta.ranking.order().to_vec();
                let (entered, left, moved) = expected_diff(prev.as_deref(), &order);
                prop_assert_eq!(&delta.entered, &entered, "subscriber {} delta {}", which, k);
                prop_assert_eq!(&delta.left, &left, "subscriber {} delta {}", which, k);
                prop_assert_eq!(&delta.moved, &moved, "subscriber {} delta {}", which, k);
                if k == 0 {
                    prop_assert_eq!(delta.entered.len(), N,
                        "subscriber {} first delta must be the full snapshot", which);
                }
                prev = Some(order);
            }
            // Mutators own disjoint tuples, so the mutations commute and
            // the final state is schedule-independent: the last delta any
            // subscriber saw must rank like an offline rebuild.
            if out.clean {
                let rebuilt = IndependentDb::from_pairs(out.final_pairs.clone()).unwrap();
                let expected = sub_query(*which).run(&rebuilt).unwrap();
                let last = deltas.last().expect("checked non-empty above");
                prop_assert_eq!(last.ranking.order(), expected.ranking.order(),
                    "subscriber {} final delta diverges from the rebuilt final state", which);
            }
        }
        // Accepted-mutation accounting survives the drain.
        prop_assert!(out.accepted_muts <= N * 10);
    }
}
