//! Integration tests: every algorithm that can process the same correlated
//! relation must agree — and/xor expansion variants, the incremental PRFe,
//! the x-tuple fast path, attribute-uncertainty compilation and the
//! junction-tree DP, all against brute-force world enumeration.

#![allow(clippy::needless_range_loop)] // oracle comparisons over parallel arrays

use prf::core::{
    prf_omega_rank_xtuple, prf_rank_tree, prf_rank_tree_interp, prfe_rank_tree,
    rank_distributions_tree, StepWeight,
};
use prf::graphical::{rank_distributions_network, Factor, MarkovNetwork, VarId};
use prf::numeric::Complex;
use prf::pdb::{AndXorTree, TupleId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_xtuples(seed: u64, groups: usize) -> AndXorTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let gs: Vec<Vec<(f64, f64)>> = (0..groups)
        .map(|_| {
            let size = rng.gen_range(1..=3);
            let mut budget = 1.0f64;
            (0..size)
                .map(|_| {
                    let p = rng.gen_range(0.0..budget * 0.9);
                    budget -= p;
                    (rng.gen_range(0.0..100.0), p)
                })
                .collect()
        })
        .collect();
    AndXorTree::from_x_tuples(&gs).unwrap()
}

#[test]
fn all_tree_algorithms_agree_with_enumeration() {
    for seed in 0..5u64 {
        let tree = random_xtuples(seed, 4);
        let n = tree.n_tuples();
        let worlds = tree.enumerate_worlds(1 << 16).unwrap();
        let scores = tree.scores();

        // Rank distributions from symbolic expansion.
        let dists = rank_distributions_tree(&tree);
        for t in 0..n {
            let brute = worlds.rank_distribution(TupleId(t as u32), n, scores);
            for r in 0..n {
                assert!((dists[t][r] - brute[r]).abs() < 1e-9, "seed {seed}");
            }
        }

        // PT(h) three ways: symbolic, interpolated, x-tuple fast path.
        let w = StepWeight { h: 3.min(n) };
        let sym = prf_rank_tree(&tree, &w);
        let itp = prf_rank_tree_interp(&tree, &w);
        let fast = prf_omega_rank_xtuple(&tree, &w).expect("x-tuple form");
        for t in 0..n {
            assert!(sym[t].approx_eq(itp[t], 1e-8), "seed {seed} interp");
            assert!(sym[t].approx_eq(fast[t], 1e-8), "seed {seed} fast path");
        }

        // PRFe incremental against the distribution oracle.
        let alpha = 0.75;
        let inc = prfe_rank_tree(&tree, Complex::real(alpha));
        for t in 0..n {
            let oracle: f64 = dists[t]
                .iter()
                .enumerate()
                .map(|(j0, &p)| p * alpha.powi(j0 as i32 + 1))
                .sum();
            assert!((inc[t].re - oracle).abs() < 1e-9, "seed {seed} prfe");
        }
    }
}

/// An x-tuple group is expressible as one Markov-network factor that zeroes
/// out every assignment with two or more present members. Both correlation
/// engines must produce identical rank distributions.
#[test]
fn xtuple_groups_as_markov_factors_agree() {
    for seed in 10..14u64 {
        let tree = random_xtuples(seed, 3);
        let n = tree.n_tuples();
        let groups = tree.x_tuple_groups().unwrap();
        let marginals = tree.marginals();

        let mut factors = Vec::new();
        for g in &groups {
            let vars: Vec<VarId> = g.iter().map(|t| VarId(t.0)).collect();
            let mut table = vec![0.0; 1 << vars.len()];
            let none: f64 = 1.0 - g.iter().map(|t| marginals[t.index()]).sum::<f64>();
            table[0] = none.max(0.0);
            for (bit, t) in g.iter().enumerate() {
                table[1 << bit] = marginals[t.index()];
            }
            factors.push(Factor::new(vars, table));
        }
        let net = MarkovNetwork::new(n, factors);

        let via_net = rank_distributions_network(&net, tree.scores());
        let via_tree = rank_distributions_tree(&tree);
        for t in 0..n {
            for r in 0..n {
                assert!(
                    (via_net[t][r] - via_tree[t][r]).abs() < 1e-9,
                    "seed {seed} t{t} r{r}: {} vs {}",
                    via_net[t][r],
                    via_tree[t][r]
                );
            }
        }
    }
}

#[test]
fn attribute_uncertainty_consistent_with_manual_tree() {
    use prf::core::prf_rank_uncertain;
    use prf::pdb::{AttributeUncertainDb, UncertainTuple};
    let db = AttributeUncertainDb::new(vec![
        UncertainTuple::new(vec![(30.0, 0.4), (10.0, 0.5)]).unwrap(),
        UncertainTuple::new(vec![(20.0, 0.8)]).unwrap(),
    ]);
    // Manual equivalent: x-tuples with one group per original tuple.
    let manual =
        AndXorTree::from_x_tuples(&[vec![(30.0, 0.4), (10.0, 0.5)], vec![(20.0, 0.8)]]).unwrap();
    let w = StepWeight { h: 2 };
    let via_attr = prf_rank_uncertain(&db, &w).unwrap();
    let via_tree = prf_rank_tree(&manual, &w);
    // Aggregate manual per-alternative values by owner.
    let agg0 = via_tree[0] + via_tree[1];
    let agg1 = via_tree[2];
    assert!(via_attr[0].approx_eq(agg0, 1e-10));
    assert!(via_attr[1].approx_eq(agg1, 1e-10));
}

#[test]
fn expected_ranks_tree_matches_graphical_pipeline() {
    // Same x-tuple relation through (a) dual-number tree algorithm and
    // (b) junction-tree rank distributions + expectation.
    let tree = random_xtuples(77, 3);
    let n = tree.n_tuples();
    let scores = tree.scores();
    let er_tree = prf::core::expected_ranks_tree(&tree);

    let worlds = tree.enumerate_worlds(1 << 16).unwrap();
    for t in 0..n {
        let tid = TupleId(t as u32);
        let brute: f64 = worlds
            .worlds
            .iter()
            .map(|(w, p)| match w.rank_of(tid, scores) {
                Some(r) => p * r as f64,
                None => p * w.len() as f64,
            })
            .sum();
        assert!(
            (er_tree[t] - brute).abs() < 1e-8,
            "t{t}: {} vs {brute}",
            er_tree[t]
        );
    }
}
