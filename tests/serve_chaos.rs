//! Seeded chaos suite for the fault-tolerant serving layer (compiled only
//! with `--features chaos`).
//!
//! Each schedule arms a deterministic [`FaultPlan`] — always at least one
//! injected **panic** and one injected **delay**, plus optional worker
//! kills, admission overloads, and a **mid-apply `mutate` probe** (a
//! `LiveRelation::arm_mutation_probe` closure consulting the same plan,
//! firing between the live relation's plan splice and its log-PRFe
//! key-cache patch) — and then drives a mixed workload of plain
//! submissions, deadline/priority submissions, and live-relation inserts
//! from several client threads, with shutdown racing half the schedules.
//! The panic sites include `cache` (before the result cache is purged and
//! consulted), so the schedules also pin the cache path's requeue and
//! staleness behavior. The pinned invariants:
//!
//! * **exactly-once resolution**: every accepted query handle resolves to
//!   `Ok`, `Internal`, or `TimedOut` — never lost, never `Shutdown`
//!   (accepted work survives contained panics and killed workers);
//! * **static answers stay correct under faults**: every `Ok` answer from
//!   the immutable relation matches a direct offline evaluation to 1e-9 —
//!   whether it was evaluated or served from the result cache;
//! * **live state is never torn**: after the dust settles, the live
//!   relation's backend holds the base tuples, every `Ok`-acknowledged
//!   insert, and at most the `Internal`-acknowledged ones (a mid-apply
//!   panic may land after the backend splice; repair then makes the
//!   derived state consistent with it) — and a post-fault query agrees
//!   with an offline rebuild from the final pairs to 1e-9;
//! * **supervision restores the pool**: killed workers are respawned and a
//!   stuck worker is compensated, in bounded time.

#![cfg(feature = "chaos")]

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use prf::prelude::*;
use prf::serve::{FaultKind, FaultPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_db(n: usize) -> IndependentDb {
    IndependentDb::from_pairs(
        (0..n).map(|i| (100.0 - i as f64, 0.2 + 0.6 * ((i % 5) as f64 / 5.0))),
    )
    .expect("valid pairs")
}

/// Per-element comparison of two value vectors at the paper-wide 1e-9
/// equivalence tolerance.
fn assert_values_close(got: &[Complex], want: &[Complex], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (*g - *w).abs() <= 1e-9,
            "{what}: value {i} diverged: {g:?} vs {w:?}"
        );
    }
}

/// Builds one seeded fault plan with at least one panic and one delay.
/// Returns the plan (a clone stays with the caller for `fired()`).
fn seeded_plan(rng: &mut StdRng) -> FaultPlan {
    let panic_sites = ["flush-take", "apply", "cache", "eval", "deliver"];
    let delay_sites = ["admit", "cache", "eval", "deliver"];
    let mut plan = FaultPlan::new();
    for _ in 0..rng.gen_range(1..4u32) {
        let site = panic_sites[rng.gen_range(0..panic_sites.len())];
        plan = plan.after(site, FaultKind::Panic, rng.gen_range(0..4));
    }
    for _ in 0..rng.gen_range(1..3u32) {
        let site = delay_sites[rng.gen_range(0..delay_sites.len())];
        let delay = Duration::from_micros(rng.gen_range(50..500));
        plan = plan.after(site, FaultKind::Delay(delay), rng.gen_range(0..4));
    }
    if rng.gen_bool(0.3) {
        plan = plan.once("worker", FaultKind::KillWorker);
    }
    if rng.gen_bool(0.3) {
        plan = plan.after("admit", FaultKind::Overloaded, rng.gen_range(0..4));
    }
    if rng.gen_bool(0.35) {
        // Fired by the live relation's mutation probe (armed below in
        // `run_chaos_schedule`): a panic *between* the backend/plan splice
        // and the log-PRFe key-cache patch.
        plan = plan.after("mutate", FaultKind::Panic, rng.gen_range(0..3));
    }
    plan
}

/// One seeded chaos schedule. Returns how many injected faults fired, so
/// the caller can confirm the schedules actually exercise the harness.
fn run_chaos_schedule(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = ServeConfig::new()
        .max_delay(Duration::from_micros(rng.gen_range(0..400)))
        .max_batch(rng.gen_range(1..7))
        .workers(rng.gen_range(1..4))
        .stuck_after(Duration::from_millis(250));
    let server = RankServer::new(config);
    let plan = seeded_plan(&mut rng);
    server.inject_faults(plan.clone());

    let static_n = 7usize;
    let live_base = 6usize;
    let live = Arc::new(LiveRelation::new(small_db(live_base)));
    // Route the same seeded plan into the live relation's mid-apply hook:
    // a `mutate` injection panics between the plan splice and the key-cache
    // patch, exercising the server's catch + repair of a half-applied
    // mutation.
    {
        let plan = plan.clone();
        live.arm_mutation_probe(move || match plan.consult("mutate") {
            Some(FaultKind::Panic) => panic!("injected fault at `mutate`"),
            Some(FaultKind::Delay(d)) => thread::sleep(d),
            _ => {}
        });
    }
    let stat_rel = server.register("static", small_db(static_n));
    let live_rel = server.register_live("live", Arc::clone(&live));

    // Pre-draw client schedules: (op, arg, pause). Ops: 0 = plain static
    // query, 1 = tracked static query (random deadline/class), 2 = live
    // query, 3 = live insert (distinct score derived from the op index).
    let clients = rng.gen_range(1..4usize);
    let schedules: Vec<Vec<(u8, usize, bool)>> = (0..clients)
        .map(|_| {
            (0..rng.gen_range(3..10usize))
                .map(|_| {
                    (
                        rng.gen_range(0..4u8),
                        rng.gen_range(1..=live_base),
                        rng.gen_bool(0.3),
                    )
                })
                .collect()
        })
        .collect();
    let deadline_choices = [None, Some(Duration::ZERO), Some(Duration::from_millis(50))];
    let tracked: Vec<(Option<Duration>, Priority)> = (0..64)
        .map(|_| {
            (
                deadline_choices[rng.gen_range(0..3usize)],
                if rng.gen_bool(0.3) {
                    Priority::Bulk
                } else {
                    Priority::Latency
                },
            )
        })
        .collect();
    let shutdown_mid = rng.gen_bool(0.5);

    enum Tag {
        Static(usize),
        Live,
    }
    let (answers, acked_inserts) = thread::scope(|s| {
        let mut workers = Vec::new();
        for (c, schedule) in schedules.iter().enumerate() {
            let server = &server;
            let tracked = &tracked;
            workers.push(s.spawn(move || {
                let mut answers = Vec::new();
                let mut insert_acks = Vec::new();
                for (i, &(op, h, pause)) in schedule.iter().enumerate() {
                    if pause {
                        thread::yield_now();
                    }
                    match op {
                        0 => match server.submit(stat_rel, RankQuery::pt(h)) {
                            Ok(handle) => answers.push((Tag::Static(h), handle)),
                            Err(e) => assert!(
                                matches!(e, QueryError::Shutdown | QueryError::Overloaded),
                                "unclean rejection: {e}"
                            ),
                        },
                        1 => {
                            let (deadline, priority) = tracked[(c * 16 + i) % tracked.len()];
                            let mut opts = SubmitOptions::new().priority(priority);
                            if let Some(d) = deadline {
                                opts = opts.deadline(d);
                            }
                            match server.submit_with(stat_rel, RankQuery::pt(h), opts) {
                                Ok(handle) => answers.push((Tag::Static(h), handle)),
                                Err(e) => assert!(
                                    matches!(e, QueryError::Shutdown | QueryError::Overloaded),
                                    "unclean rejection: {e}"
                                ),
                            }
                        }
                        2 => match server.submit(live_rel, RankQuery::pt(h)) {
                            Ok(handle) => answers.push((Tag::Live, handle)),
                            Err(e) => assert!(
                                matches!(e, QueryError::Shutdown | QueryError::Overloaded),
                                "unclean rejection: {e}"
                            ),
                        },
                        _ => {
                            // Distinct scores above the base range: insert
                            // order cannot affect the final state.
                            let score = 200.0 + (c * 100 + i) as f64;
                            let mutation = Mutation::Insert { score, prob: 0.5 };
                            match server.apply(live_rel, mutation) {
                                Ok(handle) => insert_acks.push((score, handle)),
                                Err(e) => assert!(
                                    matches!(e, QueryError::Shutdown | QueryError::Overloaded),
                                    "unclean rejection: {e}"
                                ),
                            }
                        }
                    }
                }
                (answers, insert_acks)
            }));
        }
        if shutdown_mid {
            let server = &server;
            s.spawn(move || {
                thread::yield_now();
                server.shutdown();
            });
        }
        let mut answers = Vec::new();
        let mut acks = Vec::new();
        for w in workers {
            let (a, m) = w.join().expect("client thread");
            answers.extend(a);
            acks.extend(m);
        }
        (answers, acks)
    });
    server.shutdown();

    // Exactly-once resolution: every accepted query handle resolves, and
    // only to the sanctioned outcomes. `Ok` static answers are compared to
    // a direct offline evaluation.
    let static_db = small_db(static_n);
    for (tag, handle) in answers {
        match (tag, handle.recv()) {
            (Tag::Static(h), Ok(result)) => {
                let want = RankQuery::pt(h).run(&static_db).expect("offline PT");
                assert_values_close(
                    result
                        .values
                        .as_complex()
                        .expect("PT answers in complex mode"),
                    want.values
                        .as_complex()
                        .expect("PT answers in complex mode"),
                    "static answer under faults",
                );
            }
            (Tag::Live, Ok(_)) => {} // verified collectively below
            (_, Err(QueryError::Internal { .. })) => {}
            (_, Err(QueryError::TimedOut)) => {}
            (_, Err(e)) => panic!("accepted handle resolved uncleanly: {e}"),
        }
    }

    // Every accepted insert acknowledges exactly once: applied (`Ok`) or
    // interrupted by an injected panic (`Internal`). An `Internal` ack from
    // the `mutate` probe fires *after* the backend splice, so such an
    // insert may legitimately be present (repair makes the derived state
    // consistent with it) — the backend must hold the base tuples, every
    // `Ok` insert, and nothing beyond base ∪ Ok ∪ Internal.
    let mut applied: Vec<f64> = Vec::new();
    let mut maybe_applied: Vec<f64> = Vec::new();
    for (score, ack) in acked_inserts {
        match ack.recv() {
            Ok(_) => applied.push(score),
            Err(QueryError::Internal { .. }) => maybe_applied.push(score),
            Err(e) => panic!("accepted insert resolved uncleanly: {e}"),
        }
    }
    let snapshot = live.snapshot_backend();
    let to_bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<HashSet<u64>>();
    let got = to_bits(&snapshot.tuple_scores());
    let base = to_bits(&small_db(live_base).tuple_scores());
    for b in &base {
        assert!(got.contains(b), "live backend lost a base tuple");
    }
    for s in &applied {
        assert!(
            got.contains(&s.to_bits()),
            "acknowledged insert {s} missing from live backend"
        );
    }
    let mut allowed = base;
    allowed.extend(applied.iter().map(|s| s.to_bits()));
    allowed.extend(maybe_applied.iter().map(|s| s.to_bits()));
    for b in &got {
        assert!(
            allowed.contains(b),
            "live backend holds a tuple no acknowledgement explains (score bits {b:#x})"
        );
    }

    // Post-fault differential: the live relation (with its incrementally
    // patched, possibly repaired prepared state) agrees with an offline
    // rebuild from scratch.
    let rebuilt = IndependentDb::from_pairs(
        snapshot
            .tuple_scores()
            .into_iter()
            .zip(snapshot.tuple_marginals()),
    )
    .expect("valid snapshot pairs");
    let got = RankQuery::pt(3).run(&*live).expect("post-fault query");
    let want = RankQuery::pt(3).run(&rebuilt).expect("offline rebuild");
    assert_values_close(
        got.values.as_complex().expect("PT answers in complex mode"),
        want.values
            .as_complex()
            .expect("PT answers in complex mode"),
        "post-fault live state vs offline rebuild",
    );

    plan.fired()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// 32 seeded chaos schedules, each with at least one injected panic
    /// and one injected delay: exactly-once resolution, static answers
    /// correct at 1e-9, live state equal to an offline rebuild at 1e-9.
    #[test]
    fn seeded_chaos_schedules_keep_every_guarantee(seed in 0u64..100_000) {
        run_chaos_schedule(seed);
    }
}

/// The chaos harness is not a no-op: across a handful of schedules, the
/// armed faults actually fire.
#[test]
fn chaos_schedules_fire_their_faults() {
    let fired: u64 = (0..4).map(|s| run_chaos_schedule(1_000_000 + s)).sum();
    assert!(fired > 0, "no injected fault ever fired across 4 schedules");
}

/// Killing every worker in a 2-worker pool mid-flush: the supervisor
/// respawns both, the re-queued flushes retry, and every handle resolves.
#[test]
fn killed_workers_are_respawned_and_service_continues() {
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_micros(200))
            .workers(2)
            .stuck_after(Duration::from_millis(100)),
    );
    server.inject_faults(FaultPlan::new().times("worker", FaultKind::KillWorker, 2));
    let rel = server.register("db", small_db(6));
    let ids: HashSet<u64> = (1..=6)
        .map(|h| {
            let handle = server.submit(rel, RankQuery::pt(h)).expect("accepted");
            let id = handle.id().as_u64();
            // Survives one interruption; a second kill would resolve it
            // `Internal`, which the plan (2 kills, 2 workers) cannot cause
            // twice for the same flush after both respawns.
            match handle.recv() {
                Ok(_) | Err(QueryError::Internal { .. }) => {}
                Err(e) => panic!("lost under worker kills: {e}"),
            }
            id
        })
        .collect();
    assert_eq!(ids.len(), 6, "exactly-once: ids never repeat");
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.metrics().workers_respawned < 2 {
        assert!(Instant::now() < deadline, "kills were never compensated");
        thread::sleep(Duration::from_millis(2));
    }
    server.shutdown();
}

/// A worker stuck inside a 3-second injected delay is compensated within
/// the 100 ms stuck window: other relations keep flushing long before the
/// stuck walk finishes, and the supervisor counts the respawn.
#[test]
fn stuck_worker_is_compensated_while_it_sleeps() {
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_micros(200))
            .workers(1)
            .stuck_after(Duration::from_millis(100)),
    );
    server.inject_faults(FaultPlan::new().once("eval", FaultKind::Delay(Duration::from_secs(3))));
    let rel_a = server.register("a", small_db(6));
    let rel_b = server.register("b", small_db(5));

    let started = Instant::now();
    let slow = server.submit(rel_a, RankQuery::pt(1)).expect("accepted");
    // Give the only worker time to enter the injected delay, then demand
    // service from the compensating worker well before the delay ends.
    thread::sleep(Duration::from_millis(20));
    let mut fast = server.submit(rel_b, RankQuery::pt(1)).expect("accepted");
    let answer = fast
        .recv_timeout(Duration::from_secs(2))
        .expect("a compensating worker must serve relation b before the 3 s delay ends");
    assert!(answer.is_ok(), "{answer:?}");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "service waited out the stuck worker instead of being compensated"
    );
    assert!(server.metrics().workers_respawned >= 1);
    // The stuck walk still completes and delivers.
    assert!(slow.recv().is_ok());
    server.shutdown();
}

/// A panic injected *between* a live relation's plan splice and its
/// log-PRFe key-cache patch (the `mutate` probe): the server acknowledges
/// the mutation `Internal`, repairs the derived state, and the very next
/// log-domain PRFe answer — the semantics whose incremental key cache the
/// panic stranded — matches an offline rebuild of the final backend to
/// 1e-9. The result cache must not serve the pre-mutation answer either:
/// repair bumps the generation, so the stale entry can never pass the
/// generation-exact lookup.
#[test]
fn mid_splice_panic_repairs_and_next_answer_matches_rebuild() {
    let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
    let live = Arc::new(LiveRelation::new(small_db(8)));
    let plan = FaultPlan::new().once("mutate", FaultKind::Panic);
    {
        let plan = plan.clone();
        live.arm_mutation_probe(move || {
            if let Some(FaultKind::Panic) = plan.consult("mutate") {
                panic!("injected fault at `mutate`");
            }
        });
    }
    let rel = server.register_live("live", Arc::clone(&live));
    let query = || RankQuery::prfe(0.9).algorithm(Algorithm::LogDomain);

    // Warm both caches: the live relation's incremental log-PRFe keys and
    // the server's result cache.
    let before = server.submit(rel, query()).unwrap().recv().unwrap();
    assert!(!before.report.serve.as_ref().unwrap().served_from_cache);

    // The mutation applies to the backend, then the probe panics before
    // the key-cache patch: the server must contain it, ack `Internal`,
    // and repair.
    let ack = server
        .apply(rel, Mutation::Reweight(TupleId(0), 0.9))
        .unwrap()
        .recv();
    assert!(
        matches!(ack, Err(QueryError::Internal { .. })),
        "mid-splice panic must resolve the mutation Internal, got {ack:?}"
    );
    assert!(plan.exhausted(), "the armed mutate fault never fired");
    assert!(server.metrics().panics_caught >= 1);

    // The next answer reflects the repaired state — never the stranded key
    // cache, never the pre-mutation result cache entry.
    let after = server.submit(rel, query()).unwrap().recv().unwrap();
    assert!(!after.report.serve.as_ref().unwrap().served_from_cache);
    let rebuilt = IndependentDb::from_pairs(
        live.snapshot_backend()
            .tuple_scores()
            .into_iter()
            .zip(live.snapshot_backend().tuple_marginals()),
    )
    .expect("valid snapshot pairs");
    let want = query().run(&rebuilt).expect("offline rebuild");
    let got_keys = after.values.as_log().expect("log-domain answers");
    let want_keys = want.values.as_log().expect("log-domain answers");
    assert_eq!(got_keys.len(), want_keys.len());
    for (i, (g, w)) in got_keys.iter().zip(want_keys).enumerate() {
        let (g, w) = (*g, *w);
        if g.is_infinite() && w.is_infinite() && g.signum() == w.signum() {
            continue;
        }
        assert!(
            (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
            "post-repair log key {i} diverged: {g} vs {w}"
        );
    }
    server.shutdown();
}
