//! Differential tests for the incremental generating-function engine: the
//! incremental walks must agree, value-level within 1e-9 relative, with the
//! retained full-refold oracles (`prf_rank_tree_refold`,
//! `prfe_rank_tree_recompute`) for every tree-capable semantics × numeric
//! mode, on random and/xor trees and on the directed edge-case shapes the
//! engine's plan compiler handles specially (chains, single-child inner
//! nodes, zero-probability edges, ∨ slack, extreme truncations).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prf::core::tree::{
    prf_rank_tree, prf_rank_tree_refold, prf_rank_tree_stats, prfe_rank_tree,
    prfe_rank_tree_recompute, prfe_rank_tree_scaled,
};
use prf::core::{
    expected_ranks_tree, prf_rank_tree_parallel, ConstantWeight, ExponentialWeight, StepWeight,
};
use prf::numeric::Complex;
use prf::pdb::{AndXorTree, NodeKind, TreeBuilder, TupleId};

/// `|a − b| ≤ tol·(1 + max(|a|, |b|))` — the relative agreement the
/// acceptance criteria demand.
fn close_rel(a: Complex, b: Complex, tol: f64) -> bool {
    let scale = 1.0 + a.abs().max(b.abs());
    (a - b).abs() <= tol * scale
}

fn assert_all_close(got: &[Complex], want: &[Complex], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (t, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(close_rel(*g, *w, 1e-9), "{ctx} t{t}: {g} vs {w}");
    }
}

/// A random general and/xor tree driven by a seed (so proptest shrinks over
/// scalars, not tree structures).
fn random_tree(seed: u64, target_leaves: usize, max_depth: usize) -> AndXorTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let root_kind = if rng.gen_bool(0.5) {
        NodeKind::And
    } else {
        NodeKind::Xor
    };
    let mut b = TreeBuilder::new(root_kind);
    let mut frontier = vec![(b.root(), root_kind, 0usize, 1.0f64)];
    let mut leaves = 0usize;
    while leaves < target_leaves {
        let idx = rng.gen_range(0..frontier.len());
        let (node, kind, depth, budget) = frontier[idx];
        let is_xor = matches!(kind, NodeKind::Xor);
        let p = if is_xor {
            // Occasionally emit an exactly-zero edge probability.
            if rng.gen_bool(0.1) {
                0.0
            } else {
                let p = rng.gen_range(0.0..budget.min(0.5));
                frontier[idx].3 -= p;
                p
            }
        } else {
            1.0
        };
        if depth >= max_depth || rng.gen_bool(0.6) {
            b.add_leaf(node, p, rng.gen_range(0.0..100.0)).unwrap();
            leaves += 1;
        } else {
            let child_kind = if rng.gen_bool(0.5) {
                NodeKind::And
            } else {
                NodeKind::Xor
            };
            let child = b.add_inner(node, child_kind, p).unwrap();
            frontier.push((child, child_kind, depth + 1, 1.0));
        }
    }
    b.build().unwrap()
}

/// A caterpillar: an ∧/∨ spine of the given depth with one leaf hanging at
/// every level — leaf depths grow linearly, the worst case for per-tuple
/// path recombination.
fn chain_tree(levels: usize, seed: u64) -> AndXorTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TreeBuilder::new(NodeKind::And);
    let mut cur = b.root();
    for i in 0..levels {
        b.add_leaf(cur, 1.0, rng.gen_range(0.0..100.0))
            .unwrap_or_else(|e| panic!("leaf {i}: {e:?}"));
        let xor = b.add_inner(cur, NodeKind::Xor, 1.0).unwrap();
        let p = rng.gen_range(0.3..0.9);
        b.add_leaf(xor, 1.0 - p, rng.gen_range(0.0..100.0)).unwrap();
        cur = b.add_inner(xor, NodeKind::And, p).unwrap();
    }
    b.add_leaf(cur, 1.0, rng.gen_range(0.0..100.0)).unwrap();
    b.build().unwrap()
}

/// Nested single-child ∧ chains (which the plan compiler collapses) around
/// ∨ nodes with slack and zero-probability edges.
fn degenerate_tree() -> AndXorTree {
    let mut b = TreeBuilder::new(NodeKind::And);
    let root = b.root();
    // ∧ → ∧ → ∧ → leaf (single-child chain).
    let a1 = b.add_inner(root, NodeKind::And, 1.0).unwrap();
    let a2 = b.add_inner(a1, NodeKind::And, 1.0).unwrap();
    b.add_leaf(a2, 1.0, 50.0).unwrap();
    // ∨ with slack 0.4, one p = 0 edge, and a nested single-child ∧.
    let x = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
    b.add_leaf(x, 0.0, 60.0).unwrap();
    b.add_leaf(x, 0.35, 40.0).unwrap();
    let xa = b.add_inner(x, NodeKind::And, 0.25).unwrap();
    b.add_leaf(xa, 1.0, 55.0).unwrap();
    // A certain tuple (p = 1 through its ∨).
    let y = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
    b.add_leaf(y, 1.0, 45.0).unwrap();
    b.build().unwrap()
}

fn check_prf_all_truncations(tree: &AndXorTree, ctx: &str) {
    let n = tree.n_tuples();
    let hs = [1usize, 2, n.div_ceil(2), n];
    for &h in &hs {
        let w = StepWeight { h };
        assert_all_close(
            &prf_rank_tree(tree, &w),
            &prf_rank_tree_refold(tree, &w),
            &format!("{ctx} PT({h})"),
        );
    }
    // Untruncated, tuple-independent weight (full-degree expansion).
    let w = ExponentialWeight::real(0.85);
    assert_all_close(
        &prf_rank_tree(tree, &w),
        &prf_rank_tree_refold(tree, &w),
        &format!("{ctx} PRFe-as-PRFω"),
    );
    let w = ConstantWeight;
    assert_all_close(
        &prf_rank_tree(tree, &w),
        &prf_rank_tree_refold(tree, &w),
        &format!("{ctx} constant ω"),
    );
}

fn check_prfe_all_modes(tree: &AndXorTree, ctx: &str) {
    for alpha in [
        Complex::real(0.0),
        Complex::real(0.5),
        Complex::real(1.0),
        Complex::new(0.6, 0.35),
    ] {
        let inc = prfe_rank_tree(tree, alpha);
        let rec = prfe_rank_tree_recompute(tree, alpha);
        assert_all_close(&inc, &rec, &format!("{ctx} PRFe({alpha})"));
        // Scaled arithmetic agrees with plain at test scale.
        let scaled = prfe_rank_tree_scaled(tree, alpha);
        for (t, (s, p)) in scaled.iter().zip(&rec).enumerate() {
            assert!(
                close_rel(s.to_plain(), *p, 1e-9),
                "{ctx} scaled PRFe({alpha}) t{t}"
            );
        }
    }
}

#[test]
fn chain_trees_match_oracles() {
    for levels in [1usize, 2, 17, 60] {
        let tree = chain_tree(levels, levels as u64);
        check_prf_all_truncations(&tree, &format!("chain({levels})"));
        check_prfe_all_modes(&tree, &format!("chain({levels})"));
    }
}

#[test]
fn degenerate_shapes_match_oracles() {
    let tree = degenerate_tree();
    check_prf_all_truncations(&tree, "degenerate");
    check_prfe_all_modes(&tree, "degenerate");
    // Expected ranks agree with world enumeration on this shape too.
    let worlds = tree.enumerate_worlds(1 << 16).unwrap();
    let scores = tree.scores();
    let er = expected_ranks_tree(&tree);
    for (t, &er_t) in er.iter().enumerate() {
        let tid = TupleId(t as u32);
        let brute: f64 = worlds
            .worlds
            .iter()
            .map(|(w, p)| match w.rank_of(tid, scores) {
                Some(r) => p * r as f64,
                None => p * w.len() as f64,
            })
            .sum();
        assert!((er_t - brute).abs() < 1e-8, "t{t}: {er_t} vs {brute}");
    }
}

#[test]
fn parallel_shards_match_serial_on_general_trees() {
    for seed in 0..4u64 {
        let tree = random_tree(seed, 40, 4);
        let w = StepWeight { h: 7 };
        let serial = prf_rank_tree(&tree, &w);
        for threads in [2usize, 3, 8] {
            let par = prf_rank_tree_parallel(&tree, &w, threads);
            assert_all_close(&par, &serial, &format!("seed {seed} threads {threads}"));
        }
    }
}

#[test]
fn stats_peak_covers_resident_on_every_shape() {
    for seed in 0..4u64 {
        let tree = random_tree(seed, 30, 4);
        let (_, stats) = prf_rank_tree_stats(&tree, &StepWeight { h: 5 });
        assert!(stats.plan_nodes >= tree.n_tuples());
        assert!(stats.peak_coefficients >= stats.resident_coefficients);
        assert!(stats.peak_bytes >= stats.peak_coefficients * 8);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The incremental symbolic engine ≡ the literal Algorithm 2 refold for
    /// random trees × truncations.
    #[test]
    fn prf_incremental_equals_refold(seed in 0u64..5000, leaves in 3usize..16, h in 1usize..18) {
        let tree = random_tree(seed, leaves, 4);
        let w = StepWeight { h };
        let inc = prf_rank_tree(&tree, &w);
        let refold = prf_rank_tree_refold(&tree, &w);
        for t in 0..tree.n_tuples() {
            prop_assert!(close_rel(inc[t], refold[t], 1e-9), "t{t}: {} vs {}", inc[t], refold[t]);
        }
    }

    /// The division-free incremental PRFe ≡ the per-tuple recompute oracle,
    /// real and complex α.
    #[test]
    fn prfe_incremental_equals_recompute(
        seed in 0u64..5000,
        leaves in 3usize..16,
        re in 0.0f64..1.0,
        im in 0.0f64..0.8,
    ) {
        let tree = random_tree(seed, leaves, 4);
        let alpha = Complex::new(re, im);
        let inc = prfe_rank_tree(&tree, alpha);
        let rec = prfe_rank_tree_recompute(&tree, alpha);
        for t in 0..tree.n_tuples() {
            prop_assert!(close_rel(inc[t], rec[t], 1e-9), "t{t}: {} vs {}", inc[t], rec[t]);
        }
    }

    /// Weight functions with arbitrary per-rank tables agree too (the
    /// general PRFω case, truncated at the table length).
    #[test]
    fn prf_tabulated_weights_agree(seed in 0u64..5000, table in proptest::collection::vec(-2.0f64..2.0, 1..10)) {
        let tree = random_tree(seed, 10, 3);
        let w = prf::core::TabulatedWeight::from_real(&table);
        let inc = prf_rank_tree(&tree, &w);
        let refold = prf_rank_tree_refold(&tree, &w);
        for t in 0..tree.n_tuples() {
            prop_assert!(close_rel(inc[t], refold[t], 1e-9));
        }
    }
}
