//! Differential suite for sharded relations: a [`ShardedRelation`] over
//! score-contiguous shards must be **answer-equivalent to the unsharded
//! relation holding the same tuples** — same ranking order and
//! value-level agreement within 1e-9 — across semantics (PT, Consensus,
//! PRFω with rank-only and tuple-dependent weights, PRFe in every numeric
//! mode, E-Rank, E-Score, U-Rank) × backends (`IndependentDb`,
//! `AndXorTree` x-tuple shards, and a mixed independent + x-tuple split)
//! × shard counts (1/2/4/7, uneven boundaries, empty shards, single-tuple
//! shards), plus proptest-generated random boundaries.
//!
//! Construction makes the comparison exact at the id level: tuples are
//! generated **score-descending** and shards are contiguous slices, so
//! the unsharded relation's tuple ids equal the shard-major concatenation
//! and every per-tuple value vector lines up index-for-index. The
//! unsharded side never routes through `prf_core::shard` (its kernels are
//! differential-tested against brute force elsewhere), so the comparison
//! is not circular.

use std::sync::Arc;
use std::time::Duration;

use prf::core::TopScoreWeight;
use prf::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-9;

// ---------------------------------------------------------------------
// Seeded instances: score-descending pairs and banded x-tuple groups
// ---------------------------------------------------------------------

/// Random `(score, prob)` pairs (including the 0.0 / 1.0 edge probs)
/// sorted score-descending, so any contiguous split is score-contiguous
/// and shard-major ids equal the unsharded insertion ids.
fn sorted_pairs(seed: u64, n: usize) -> Vec<(f64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            (
                rng.gen_range(0.0..1000.0),
                match rng.gen_range(0..10) {
                    0 => 0.0,
                    1 => 1.0,
                    _ => rng.gen_range(0.01..1.0),
                },
            )
        })
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    pairs
}

fn db_from(pairs: &[(f64, f64)]) -> IndependentDb {
    IndependentDb::from_pairs(pairs.iter().copied()).expect("valid pairs")
}

/// Splits score-descending `pairs` at the ascending `cuts` positions into
/// `IndependentDb` shard handles (repeated cuts produce empty shards).
fn shard_dbs(pairs: &[(f64, f64)], cuts: &[usize]) -> Vec<ShardHandle> {
    let mut shards: Vec<ShardHandle> = Vec::new();
    let mut lo = 0usize;
    for &cut in cuts.iter().chain(std::iter::once(&pairs.len())) {
        shards.push(Arc::new(db_from(&pairs[lo..cut])));
        lo = cut;
    }
    shards
}

/// Random x-tuple groups in non-overlapping, descending score bands
/// (group `g`'s scores all sit in `(990 − 10g, 1000 − 10g]`), so any
/// split into runs of whole consecutive groups is score-contiguous. The
/// first `singleton_prefix` groups have exactly one alternative, letting
/// the mixed-backend test carve them out as an `IndependentDb` shard.
fn banded_x_groups(seed: u64, groups: usize, singleton_prefix: usize) -> Vec<Vec<(f64, f64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..groups)
        .map(|g| {
            let hi = 1000.0 - 10.0 * g as f64;
            let alts = if g < singleton_prefix {
                1
            } else {
                rng.gen_range(1..4)
            };
            let mut budget = 1.0f64;
            (0..alts)
                .map(|_| {
                    let p = rng.gen_range(0.0..budget.min(0.7));
                    budget -= p;
                    (hi - rng.gen_range(0.0..9.9), p)
                })
                .collect()
        })
        .collect()
}

/// Shards a banded group spec into `AndXorTree`s of whole consecutive
/// groups, split at the ascending group-index `cuts`.
fn shard_trees(spec: &[Vec<(f64, f64)>], cuts: &[usize]) -> Vec<ShardHandle> {
    let mut shards: Vec<ShardHandle> = Vec::new();
    let mut lo = 0usize;
    for &cut in cuts.iter().chain(std::iter::once(&spec.len())) {
        shards.push(Arc::new(
            AndXorTree::from_x_tuples(&spec[lo..cut]).expect("valid groups"),
        ));
        lo = cut;
    }
    shards
}

// ---------------------------------------------------------------------
// Equivalence assertion (same shape as tests/batch_equivalence.rs)
// ---------------------------------------------------------------------

/// Ranking orders must agree — except across **exact value ties**, which
/// the sharded and unsharded folds may break differently (their
/// accumulation orders differ in the last ulp: PT(n) ties every prob-1
/// tuple at 1.0, E-Rank ties every prob-0 tuple, …). Where the orders
/// diverge, every position's ranking key must still agree within `TOL`,
/// so only tie permutations pass, never a genuine rank change.
fn assert_ranking_equivalent(got: &RankedResult, want: &RankedResult, ctx: &str) {
    let gorder = got.ranking.order();
    let worder = want.ranking.order();
    assert_eq!(gorder.len(), worder.len(), "{ctx}: ranking length");
    if gorder == worder {
        return;
    }
    let mut want_key = vec![f64::NAN; want.values.len()];
    for (pos, t) in worder.iter().enumerate() {
        want_key[t.index()] = want.ranking.key_at(pos);
    }
    for (pos, t) in gorder.iter().enumerate() {
        let wk = want_key[t.index()];
        let at = want.ranking.key_at(pos);
        let close = (wk - at).abs() <= TOL * at.abs().max(1.0)
            || (wk.is_infinite() && at.is_infinite() && wk == at);
        assert!(
            close,
            "{ctx}: position {pos}: tuple {t:?} (key {wk}) vs expected key {at} — \
             more than a tie flip"
        );
    }
}

fn assert_equivalent(got: &RankedResult, want: &RankedResult, ctx: &str) {
    assert_eq!(
        got.report.algorithm, want.report.algorithm,
        "{ctx}: resolved algorithm"
    );
    assert_eq!(
        got.report.numeric_mode, want.report.numeric_mode,
        "{ctx}: numeric mode"
    );
    assert_ranking_equivalent(got, want, ctx);
    match (&got.values, &want.values) {
        (Values::Complex(a), Values::Complex(b)) => {
            assert_eq!(a.len(), b.len(), "{ctx}: length");
            for (t, (x, y)) in a.iter().zip(b).enumerate() {
                assert!(x.approx_eq(*y, TOL), "{ctx}: tuple {t}: {x} vs {y}");
            }
        }
        (Values::LogDomain(a), Values::LogDomain(b)) => {
            assert_eq!(a.len(), b.len(), "{ctx}: length");
            for (t, (x, y)) in a.iter().zip(b).enumerate() {
                let close = (x - y).abs() <= TOL * y.abs().max(1.0)
                    || (x.is_infinite() && y.is_infinite() && x == y);
                assert!(close, "{ctx}: tuple {t}: {x} vs {y}");
            }
        }
        (Values::Scaled(a), Values::Scaled(b)) => {
            assert_eq!(a.len(), b.len(), "{ctx}: length");
            for (t, (x, y)) in a.iter().zip(b).enumerate() {
                let (kx, ky) = (x.magnitude_key(), y.magnitude_key());
                let close = (kx - ky).abs() <= TOL * ky.abs().max(1.0)
                    || (kx.is_infinite() && ky.is_infinite() && kx == ky);
                assert!(close, "{ctx}: tuple {t}: key {kx} vs {ky}");
            }
        }
        (g, w) => panic!(
            "{ctx}: value mode mismatch: sharded {:?} vs unsharded {:?}",
            g.numeric_mode(),
            w.numeric_mode()
        ),
    }
}

/// The semantics mix every split is checked under: rank-only and
/// tuple-dependent PRFω, every PRFe numeric mode, the closed-form
/// semantics, and U-Rank (which routes through positional PRF passes on
/// the sharded side).
fn shard_mix(n: usize) -> Vec<RankQuery> {
    let n = n.max(1);
    vec![
        RankQuery::pt(2.min(n)),
        RankQuery::pt(n),
        RankQuery::consensus(3.min(n)),
        RankQuery::prf(TabulatedWeight::from_real(&[2.0, 1.0, 0.25, 0.125])),
        RankQuery::prf(TopScoreWeight),
        RankQuery::prfe(0.95),
        RankQuery::prfe(0.4).algorithm(Algorithm::LogDomain),
        RankQuery::prfe(0.8).algorithm(Algorithm::Scaled),
        RankQuery::prfe_complex(Complex::new(0.5, 0.3)).algorithm(Algorithm::ExactGf),
        RankQuery::erank(),
        RankQuery::escore(),
        RankQuery::urank(4.min(n)),
    ]
}

/// Runs every query singly *and* as one [`QueryBatch`] (the merged
/// shared-walk route) on the sharded relation and compares each result to
/// the same query run directly on the unsharded reference.
fn assert_sharded_equivalent(
    sharded: &ShardedRelation,
    reference: &(impl ProbabilisticRelation + ?Sized),
    queries: &[RankQuery],
    ctx: &str,
) {
    let wants: Vec<RankedResult> = queries
        .iter()
        .map(|q| q.run(reference).expect("reference query runs"))
        .collect();
    for (i, (q, want)) in queries.iter().zip(&wants).enumerate() {
        let got = q.run(sharded).expect("sharded query runs");
        assert_equivalent(
            &got,
            want,
            &format!("{ctx}[{i}] single {}", want.report.semantics),
        );
    }
    let batch = QueryBatch::new()
        .add_queries(queries.iter().cloned())
        .run(sharded)
        .expect("sharded batch runs");
    assert_eq!(batch.len(), queries.len(), "{ctx}: one result per query");
    for (i, (got, want)) in batch.iter().zip(&wants).enumerate() {
        assert_equivalent(
            got,
            want,
            &format!("{ctx}[{i}] batch {}", want.report.semantics),
        );
    }
}

// ---------------------------------------------------------------------
// IndependentDb shards: 1 / 2 / 4 / 7 shards, uneven, empty, singleton
// ---------------------------------------------------------------------

#[test]
fn sharded_equals_unsharded_on_independent() {
    let splits: &[(&str, &[usize])] = &[
        ("1 shard", &[]),
        ("2 even", &[20]),
        ("4 uneven", &[5, 19, 33]),
        // 7 shards: one empty (repeated cut), one single-tuple (39..40).
        ("7 degenerate", &[6, 6, 7, 20, 31, 39]),
    ];
    for seed in 0..3u64 {
        let pairs = sorted_pairs(seed, 40);
        let unsharded = db_from(&pairs);
        for (name, cuts) in splits {
            for workers in [1usize, 3] {
                let sharded =
                    ShardedRelation::new(shard_dbs(&pairs, cuts), workers).expect("contiguous");
                assert_eq!(sharded.shard_count(), cuts.len() + 1);
                assert_sharded_equivalent(
                    &sharded,
                    &unsharded,
                    &shard_mix(40),
                    &format!("independent seed {seed} {name} workers {workers}"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// AndXorTree shards: x-tuple groups in disjoint score bands
// ---------------------------------------------------------------------

#[test]
fn sharded_equals_unsharded_on_xtuple_trees() {
    let splits: &[(&str, &[usize])] = &[("2 shards", &[5]), ("4 shards", &[2, 6, 11])];
    for seed in 0..3u64 {
        let spec = banded_x_groups(seed + 100, 12, 0);
        let unsharded = AndXorTree::from_x_tuples(&spec).expect("valid groups");
        let n = unsharded.n_tuples();
        for (name, cuts) in splits {
            let sharded = ShardedRelation::new(shard_trees(&spec, cuts), 2).expect("contiguous");
            assert_sharded_equivalent(
                &sharded,
                &unsharded,
                &shard_mix(n),
                &format!("xtuple seed {seed} {name}"),
            );
        }
    }
}

#[test]
fn mixed_backend_shards_match_one_tree() {
    // The leading band is all singleton groups — representable either as
    // part of the x-tuple tree (the unsharded reference) or as an
    // `IndependentDb` shard (the sharded side): the monoid merge is
    // backend-agnostic, so mixing shard backends must change nothing.
    for seed in 0..2u64 {
        let spec = banded_x_groups(seed + 200, 10, 4);
        let unsharded = AndXorTree::from_x_tuples(&spec).expect("valid groups");
        let singles: Vec<(f64, f64)> = spec[..4].iter().map(|g| g[0]).collect();
        let shards: Vec<ShardHandle> = vec![
            Arc::new(db_from(&singles)),
            Arc::new(AndXorTree::from_x_tuples(&spec[4..7]).expect("valid groups")),
            Arc::new(AndXorTree::from_x_tuples(&spec[7..]).expect("valid groups")),
        ];
        let sharded = ShardedRelation::new(shards, 2).expect("contiguous");
        assert_eq!(sharded.correlation_class(), CorrelationClass::XTuple);
        assert_sharded_equivalent(
            &sharded,
            &unsharded,
            &shard_mix(unsharded.n_tuples()),
            &format!("mixed seed {seed}"),
        );
    }
}

// ---------------------------------------------------------------------
// Degenerate relations, validation errors, unsupported semantics
// ---------------------------------------------------------------------

#[test]
fn all_empty_shards_answer_emptily() {
    let sharded =
        ShardedRelation::new(vec![Arc::new(db_from(&[])), Arc::new(db_from(&[]))], 2).unwrap();
    assert_eq!(sharded.n_tuples(), 0);
    for q in [RankQuery::pt(3), RankQuery::prfe(0.6), RankQuery::erank()] {
        let res = q.run(&sharded).expect("empty relation answers");
        assert!(res.values.is_empty());
        assert!(res.ranking.is_empty());
    }
}

#[test]
fn overlapping_shards_are_rejected() {
    // Shard 1's max score (7) exceeds shard 0's min (5): interleaved.
    let hi = db_from(&[(10.0, 0.5), (5.0, 0.5)]);
    let lo = db_from(&[(7.0, 0.5), (1.0, 0.9)]);
    let err = ShardedRelation::new(vec![Arc::new(hi), Arc::new(lo)], 1).unwrap_err();
    match err {
        ShardError::NotContiguous {
            shard,
            upper_min,
            lower_max,
        } => {
            assert_eq!(shard, 1);
            assert_eq!(upper_min, 5.0);
            assert_eq!(lower_max, 7.0);
        }
        other => panic!("expected NotContiguous, got {other:?}"),
    }
    // Boundary ties are fine — they resolve by shard order like the sort.
    let hi = db_from(&[(10.0, 0.5), (5.0, 0.5)]);
    let lo = db_from(&[(5.0, 0.5), (1.0, 0.9)]);
    assert!(ShardedRelation::new(vec![Arc::new(hi), Arc::new(lo)], 1).is_ok());
}

#[test]
fn backends_without_gf_hooks_are_rejected() {
    use prf::graphical::{Factor, MarkovNetwork, VarId};
    let net = MarkovNetwork::new(
        2,
        vec![Factor::new(
            vec![VarId(0), VarId(1)],
            vec![0.4, 0.3, 0.2, 0.1],
        )],
    );
    let rel = NetworkRelation::new(&net, vec![2.0, 1.0]);
    let err = ShardedRelation::new(vec![Arc::new(rel)], 1).unwrap_err();
    match err {
        ShardError::Unsupported { shard, class } => {
            assert_eq!(shard, 0);
            assert_eq!(class, CorrelationClass::Graphical);
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn utop_is_pinned_unsupported_on_sharded() {
    // The most probable top-k *set* does not decompose over the prefix
    // monoid — the sharded backend must refuse rather than approximate.
    let pairs = sorted_pairs(5, 16);
    let sharded = ShardedRelation::new(shard_dbs(&pairs, &[8]), 2).unwrap();
    let err = RankQuery::utop(3).run(&sharded).unwrap_err();
    assert!(
        matches!(
            err,
            QueryError::Unsupported {
                semantics: "U-Top",
                ..
            }
        ),
        "{err}"
    );
}

// ---------------------------------------------------------------------
// Live shards: in-band mutation, generation tracking
// ---------------------------------------------------------------------

#[test]
fn live_shard_mutations_stay_equivalent_and_bump_the_generation() {
    let mut pairs = sorted_pairs(7, 24);
    let (hi, lo) = (pairs[..12].to_vec(), pairs[12..].to_vec());
    let live = Arc::new(LiveRelation::new(db_from(&hi)));
    let handle: ShardHandle = live.clone();
    let sharded = ShardedRelation::new(vec![handle, Arc::new(db_from(&lo))], 2).unwrap();

    let g0 = sharded.generation();
    assert_sharded_equivalent(&sharded, &db_from(&pairs), &shard_mix(24), "live baseline");
    assert_eq!(sharded.generation(), g0, "queries alone never bump");

    // Reweight inside the live shard: the score band is untouched, the
    // sharded generation must move, and answers must match an unsharded
    // relation rebuilt with the new probability.
    live.apply(&Mutation::Reweight(TupleId(3), 0.123))
        .expect("reweight applies");
    assert!(sharded.generation() > g0, "mutation bumps the generation");
    pairs[3].1 = 0.123;
    assert_sharded_equivalent(
        &sharded,
        &db_from(&pairs),
        &shard_mix(24),
        "live reweighted",
    );
}

// ---------------------------------------------------------------------
// Serving: register_sharded ≡ direct unsharded evaluation
// ---------------------------------------------------------------------

#[test]
fn serve_register_sharded_matches_direct() {
    let pairs = sorted_pairs(11, 32);
    let unsharded = db_from(&pairs);
    let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO));
    let rel = server
        .register_sharded("sharded", shard_dbs(&pairs, &[10, 21]), 2)
        .expect("contiguous shards register");

    let queries = shard_mix(32);
    let handles: Vec<ResponseHandle> = queries
        .iter()
        .map(|q| server.submit(rel, q.clone()).expect("admitted"))
        .collect();
    for (i, (handle, q)) in handles.into_iter().zip(&queries).enumerate() {
        let got = handle.recv().expect("served answer");
        let want = q.run(&unsharded).expect("direct run");
        assert_equivalent(
            &got,
            &want,
            &format!("serve[{i}] {}", want.report.semantics),
        );
    }

    // A repeat of a cacheable query (possibly served from the result
    // cache — same generation, same key) must stay byte-equivalent.
    let q = RankQuery::prfe(0.95);
    let again = server.submit(rel, q.clone()).unwrap().recv().unwrap();
    assert_equivalent(&again, &q.run(&unsharded).unwrap(), "serve cache repeat");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Proptest: random shard boundaries (failures shrink to minimal splits)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_shard_boundaries_match_unsharded(
        seed in 0u64..5000,
        cuts in proptest::collection::vec(0usize..=24, 0..5),
        workers in 1usize..4,
    ) {
        let pairs = sorted_pairs(seed, 24);
        let mut cuts = cuts;
        cuts.sort_unstable();
        let sharded = ShardedRelation::new(shard_dbs(&pairs, &cuts), workers)
            .expect("sorted cuts of sorted pairs are contiguous");
        let unsharded = db_from(&pairs);
        let queries = [
            RankQuery::pt(5),
            RankQuery::prfe(0.9),
            RankQuery::prf(TopScoreWeight),
            RankQuery::erank(),
        ];
        for (i, q) in queries.iter().enumerate() {
            let got = q.run(&sharded).expect("sharded query runs");
            let want = q.run(&unsharded).expect("unsharded query runs");
            assert_equivalent(&got, &want, &format!("cuts {cuts:?} workers {workers} [{i}]"));
        }
    }
}
