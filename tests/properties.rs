//! Cross-crate property-based tests: randomized invariants over the public
//! API.

use proptest::prelude::*;

use prf::core::{prf_rank, prfe_rank, rank_distributions, Ranking, StepWeight, ValueOrder};
use prf::metrics::{kendall_topk, kendall_topk_naive, overlap_fraction};
use prf::numeric::Complex;
use prf::pdb::{AndXorTree, IndependentDb, TupleId};

/// Strategy: a small random independent relation.
fn small_db() -> impl Strategy<Value = IndependentDb> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..=1.0), 1..12)
        .prop_map(|pairs| IndependentDb::from_pairs(pairs).expect("generated pairs are valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Positional probabilities form a sub-distribution summing to the
    /// tuple's existence probability.
    #[test]
    fn rank_distributions_are_subdistributions(db in small_db()) {
        let dists = rank_distributions(&db);
        for (t, dist) in dists.iter().enumerate() {
            let sum: f64 = dist.iter().sum();
            prop_assert!(dist.iter().all(|&p| (-1e-12..=1.0 + 1e-12).contains(&p)));
            prop_assert!((sum - db.tuple(TupleId(t as u32)).prob).abs() < 1e-9);
        }
    }

    /// PT(h) values are monotone in h and bounded by the existence
    /// probability.
    #[test]
    fn pt_values_monotone_in_h(db in small_db()) {
        let n = db.len();
        let mut prev = vec![0.0; n];
        for h in 1..=n {
            let v = prf_rank(&db, &StepWeight { h });
            for t in 0..n {
                prop_assert!(v[t].re + 1e-12 >= prev[t], "h={h} t={t}");
                prop_assert!(v[t].re <= db.tuple(TupleId(t as u32)).prob + 1e-9);
                prev[t] = v[t].re;
            }
        }
    }

    /// PRFe(1) equals the existence probability; PRFe(0) vanishes.
    #[test]
    fn prfe_endpoints(db in small_db()) {
        let at1 = prfe_rank(&db, Complex::ONE);
        for (t, v) in at1.iter().enumerate() {
            prop_assert!((v.re - db.tuple(TupleId(t as u32)).prob).abs() < 1e-9);
            prop_assert!(v.im.abs() < 1e-12);
        }
        let at0 = prfe_rank(&db, Complex::ZERO);
        for v in &at0 {
            prop_assert!(v.re.abs() < 1e-12);
        }
    }

    /// The and/xor-tree embedding of an independent relation preserves every
    /// PRF value.
    #[test]
    fn tree_embedding_preserves_prf(db in small_db(), h in 1usize..6) {
        let tree = AndXorTree::from_independent(&db);
        let w = StepWeight { h };
        let via_db = prf_rank(&db, &w);
        let via_tree = prf::core::prf_rank_tree(&tree, &w);
        for t in 0..db.len() {
            prop_assert!(via_db[t].approx_eq(via_tree[t], 1e-9));
        }
    }

    /// Kendall distance: fast = naive, symmetric, bounded, triangle-ish
    /// overlap bound.
    #[test]
    fn kendall_properties(
        scores_a in proptest::collection::vec(0u32..40, 6..10),
        scores_b in proptest::collection::vec(0u32..40, 6..10),
    ) {
        // Derive duplicate-free top-k lists from the raw draws.
        let mut a: Vec<u32> = scores_a;
        a.sort_unstable();
        a.dedup();
        let mut b: Vec<u32> = scores_b;
        b.sort_unstable();
        b.dedup();
        b.reverse();
        prop_assume!(a.len() >= 3 && b.len() >= 3);
        let k = a.len().min(b.len()).min(5);
        let d = kendall_topk(&a, &b, k);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - kendall_topk(&b, &a, k)).abs() < 1e-12);
        prop_assert!((d - kendall_topk_naive(&a, &b, k)).abs() < 1e-12);
        let overlap = overlap_fraction(&a, &b, k);
        prop_assert!(overlap >= 1.0 - d.sqrt() - 1e-9);
    }

    /// Rankings are permutations and deterministic.
    #[test]
    fn rankings_are_permutations(db in small_db()) {
        let v = prf_rank(&db, &StepWeight { h: 2 });
        let r1 = Ranking::from_values(&v, ValueOrder::RealPart);
        let r2 = Ranking::from_values(&v, ValueOrder::RealPart);
        prop_assert_eq!(r1.order(), r2.order());
        let mut seen: Vec<u32> = r1.order().iter().map(|t| t.0).collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..db.len() as u32).collect();
        prop_assert_eq!(seen, expect);
    }

    /// Theorem 4 (single crossing) on random instances, via the public
    /// spectrum API.
    #[test]
    fn prfe_single_crossing(db in small_db()) {
        prop_assume!(db.len() >= 2);
        let a = TupleId(0);
        let b = TupleId(1);
        let flips = prf::core::spectrum::count_order_flips(&db, a, b, 200);
        prop_assert!(flips <= 1, "tuples crossed {flips} times");
    }
}

// ---------------------------------------------------------------------
// The unified query engine: Auto must agree with ExactGf at small n
// ---------------------------------------------------------------------

use prf::prelude::{Algorithm, RankQuery, Semantics};

/// Strategy: a random independent relation with n ≤ 64 (the regime where
/// `Algorithm::Auto` guarantees exactness).
fn medium_db() -> impl Strategy<Value = IndependentDb> {
    proptest::collection::vec((0.0f64..1000.0, 0.0f64..=1.0), 1..65)
        .prop_map(|pairs| IndependentDb::from_pairs(pairs).expect("generated pairs are valid"))
}

/// Every semantics the engine knows, parameterised small enough for any n.
fn all_semantics(k: usize) -> Vec<Semantics> {
    use std::sync::Arc;
    vec![
        Semantics::Prf(Arc::new(prf::prelude::TabulatedWeight::from_real(&[
            1.5, 1.0, 0.25,
        ]))),
        Semantics::Prfe(prf::prelude::Complex::real(0.8)),
        Semantics::Pt(k),
        Semantics::UTop(k),
        Semantics::URank(k),
        Semantics::ERank,
        Semantics::EScore,
        Semantics::Consensus(k),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Algorithm::Auto` agrees with `ExactGf` on the ranking for every
    /// semantics whenever n ≤ 64, on both independent and tree backends.
    #[test]
    fn auto_agrees_with_exact_gf_up_to_64(db in medium_db()) {
        let k = 1 + db.len() / 3;
        let tree = AndXorTree::from_independent(&db);
        for sem in all_semantics(k) {
            let name = sem.name();
            let auto_q = RankQuery::new(sem.clone());
            let exact_q = RankQuery::new(sem).algorithm(Algorithm::ExactGf);

            let auto_r = auto_q.run(&db);
            let exact_r = exact_q.run(&db);
            match (auto_r, exact_r) {
                (Ok(a), Ok(e)) => {
                    prop_assert_eq!(
                        a.ranking.order(), e.ranking.order(),
                        "{} on IndependentDb", name
                    );
                    prop_assert_eq!(a.report.algorithm, Algorithm::ExactGf);
                }
                // U-Top may legitimately have no answer (k > n); both paths
                // must then agree on the error.
                (Err(a), Err(e)) => prop_assert_eq!(a, e, "{} error", name),
                (a, e) => prop_assert!(false, "{name}: auto {a:?} vs exact {e:?}"),
            }

            // Exact U-Top on trees goes through world enumeration, whose
            // cost is exponential in n — probe the tree backend for it only
            // at enumeration-friendly sizes (it is identical machinery at
            // any n below the engine's world budget).
            if matches!(auto_q.semantics(), Semantics::UTop(_)) && db.len() > 12 {
                continue;
            }
            let auto_r = auto_q.run(&tree);
            let exact_r = RankQuery::new(auto_q.semantics().clone())
                .algorithm(Algorithm::ExactGf)
                .run(&tree);
            match (auto_r, exact_r) {
                (Ok(a), Ok(e)) => prop_assert_eq!(
                    a.ranking.order(), e.ranking.order(),
                    "{} on AndXorTree", name
                ),
                (Err(a), Err(e)) => prop_assert_eq!(a, e, "{} tree error", name),
                (a, e) => prop_assert!(false, "{name} tree: auto {a:?} vs exact {e:?}"),
            }
        }
    }
}
