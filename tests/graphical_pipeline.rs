//! Integration tests for the Section 9 pipeline on larger structures than
//! the unit tests cover: chains, trees-with-branches and loopy networks,
//! cross-checked through the full public API.

#![allow(clippy::needless_range_loop)] // oracle comparisons over parallel arrays

use prf::core::{Ranking, StepWeight, ValueOrder};
use prf::graphical::{
    prf_rank_junction, prf_rank_markov_chain, rank_distributions_junction, Factor, MarkovChain,
    MarkovNetwork, VarId,
};

fn sticky_chain(m: usize, stay: f64) -> MarkovChain {
    MarkovChain::new(
        [0.5, 0.5],
        (0..m - 1)
            .map(|_| [[stay, 1.0 - stay], [1.0 - stay, stay]])
            .collect(),
    )
}

#[test]
fn chain_and_junction_tree_rank_identically_at_scale() {
    // 60 variables: far beyond enumeration, so the two independent
    // implementations check each other.
    let m = 60;
    let chain = sticky_chain(m, 0.8);
    let scores: Vec<f64> = (0..m).map(|i| ((i * 37) % m) as f64).collect();
    let via_chain = chain.rank_distributions(&scores);
    let jt = chain.to_network().junction_tree();
    let via_jt = rank_distributions_junction(&jt, &scores);
    for t in 0..m {
        for r in 0..m {
            assert!(
                (via_chain[t][r] - via_jt[t][r]).abs() < 1e-8,
                "t{t} r{r}: {} vs {}",
                via_chain[t][r],
                via_jt[t][r]
            );
        }
    }
}

#[test]
fn prf_values_agree_between_engines() {
    let m = 40;
    let chain = sticky_chain(m, 0.7);
    let scores: Vec<f64> = (0..m).map(|i| ((i * 13) % m) as f64).collect();
    let w = StepWeight { h: 5 };
    let a = prf_rank_markov_chain(&chain, &scores, &w);
    let jt = chain.to_network().junction_tree();
    let b = prf_rank_junction(&jt, &scores, &w);
    for t in 0..m {
        assert!(a[t].approx_eq(b[t], 1e-8), "t{t}: {} vs {}", a[t], b[t]);
    }
    // The induced rankings agree up to exact ties (the symmetric chain makes
    // distant positions analytically equal, so 1e-15 roundoff may permute
    // them): every position swap must be between (near-)equal values.
    let ra = Ranking::from_values(&a, ValueOrder::RealPart);
    let rb = Ranking::from_values(&b, ValueOrder::RealPart);
    for (x, y) in ra.order().iter().zip(rb.order()) {
        if x != y {
            assert!(
                (a[x.index()].re - a[y.index()].re).abs() < 1e-9,
                "non-tied tuples swapped: {x:?} vs {y:?}"
            );
        }
    }
}

#[test]
fn loopy_network_rank_distributions_are_proper() {
    // A ladder with chords (treewidth ≥ 2): distributions must be valid
    // even where enumeration is impractical.
    let n = 14;
    let mut factors = Vec::new();
    let pair = |a: usize, b: usize, pull: f64| {
        Factor::new(
            vec![VarId(a as u32), VarId(b as u32)],
            vec![pull, 1.0 - pull, 1.0 - pull, pull],
        )
    };
    for i in 0..n - 1 {
        factors.push(pair(i, i + 1, 0.7));
    }
    for i in (0..n - 2).step_by(3) {
        factors.push(pair(i, i + 2, 0.35));
    }
    for i in 0..n {
        factors.push(Factor::new(
            vec![VarId(i as u32)],
            vec![0.6, 0.4 + 0.02 * (i % 5) as f64],
        ));
    }
    let net = MarkovNetwork::new(n, factors);
    let jt = net.junction_tree();
    assert!(jt.treewidth() >= 2, "chords must raise treewidth");
    let scores: Vec<f64> = (0..n).map(|i| ((i * 29) % n) as f64).collect();
    let dists = rank_distributions_junction(&jt, &scores);
    for t in 0..n {
        let sum: f64 = dists[t].iter().sum();
        let marginal = jt.marginal(VarId(t as u32));
        assert!(
            (sum - marginal).abs() < 1e-9,
            "t{t}: rank mass {sum} vs marginal {marginal}"
        );
        assert!(dists[t].iter().all(|&p| (-1e-12..=1.0 + 1e-9).contains(&p)));
    }
    // Rank-1 mass across tuples sums to Pr(at least one tuple exists).
    let p_rank1: f64 = (0..n).map(|t| dists[t][0]).sum();
    assert!((0.0..=1.0 + 1e-9).contains(&p_rank1));
}

#[test]
fn extreme_correlations_collapse_worlds() {
    // A perfectly sticky chain behaves like "all or nothing".
    let m = 10;
    let chain = MarkovChain::new(
        [0.3, 0.7],
        (0..m - 1).map(|_| [[1.0, 0.0], [0.0, 1.0]]).collect(),
    );
    let scores: Vec<f64> = (0..m).map(|i| i as f64).collect();
    let d = chain.rank_distributions(&scores);
    for t in 0..m {
        // Tuple t exists only in the all-ones world, where its rank is
        // (m − t) by score order.
        let expect_rank = m - t;
        for r in 1..=m {
            let want = if r == expect_rank { 0.7 } else { 0.0 };
            assert!(
                (d[t][r - 1] - want).abs() < 1e-12,
                "t{t} r{r}: {}",
                d[t][r - 1]
            );
        }
    }
}
