//! Differential suite for [`PreparedRelation`]: wrapping a relation must
//! be **answer-invisible**. Every query — single or batched, any
//! semantics, any numeric mode (`Complex`, `LogDomain`, `Scaled`) — must
//! return the same ranking and values (within 1e-9) through the prepared
//! wrapper as against the raw relation, on every backend:
//!
//! * `IndependentDb` — prepares the score order;
//! * `AndXorTree` — prepares order, positions, marginals and the
//!   [`EvalPlan`] skeleton;
//! * `NetworkRelation` — prepares **nothing** (the graphical adapter has
//!   no prepared kernels), exercising the foreign/empty-state fallback
//!   path that every backend must keep correct.
//!
//! Reuse is the point of preparation, so the batch tests run the same
//! prepared instance across many flushes and check every flush against
//! the raw relation — a stale or mutated cache would drift.

use prf::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-9;

// ---------------------------------------------------------------------
// Seeded random instances (same shapes as tests/batch_equivalence.rs)
// ---------------------------------------------------------------------

fn random_db(seed: u64, n: usize) -> IndependentDb {
    let mut rng = StdRng::seed_from_u64(seed);
    IndependentDb::from_pairs((0..n).map(|_| {
        (
            rng.gen_range(0.0..1000.0),
            match rng.gen_range(0..10) {
                0 => 0.0,
                1 => 1.0,
                _ => rng.gen_range(0.01..1.0),
            },
        )
    }))
    .expect("valid pairs")
}

fn random_general_tree(seed: u64, target_leaves: usize) -> AndXorTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TreeBuilder::new(NodeKind::And);
    let root = b.root();
    let mut frontier = vec![(root, false, 1.0f64)];
    let mut leaves = 0usize;
    while leaves < target_leaves {
        let idx = rng.gen_range(0..frontier.len());
        let (node, is_xor, budget) = frontier[idx];
        let p = if is_xor {
            let p = rng.gen_range(0.0..budget.min(0.6));
            frontier[idx].2 -= p;
            p
        } else {
            1.0
        };
        if frontier.len() > 6 || rng.gen_bool(0.7) {
            b.add_leaf(node, p, rng.gen_range(0.0..1000.0)).unwrap();
            leaves += 1;
        } else {
            let child_xor = rng.gen_bool(0.5);
            let kind = if child_xor {
                NodeKind::Xor
            } else {
                NodeKind::And
            };
            let child = b.add_inner(node, kind, p).unwrap();
            frontier.push((child, child_xor, 1.0));
        }
    }
    b.build().unwrap()
}

fn random_network(seed: u64, n: usize) -> NetworkRelation {
    use prf::graphical::{Factor, MarkovNetwork, VarId};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors = Vec::new();
    for j in 1..n {
        let parent = rng.gen_range(0..j);
        factors.push(Factor::new(
            vec![VarId(parent as u32), VarId(j as u32)],
            (0..4).map(|_| rng.gen_range(0.05..1.0)).collect(),
        ));
    }
    let net = MarkovNetwork::new(n, factors);
    let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
    NetworkRelation::new(&net, scores)
}

// ---------------------------------------------------------------------
// Equivalence assertion (1e-9, mode-aware)
// ---------------------------------------------------------------------

fn assert_equivalent(prepared: &RankedResult, raw: &RankedResult, ctx: &str) {
    assert_eq!(
        prepared.report.numeric_mode, raw.report.numeric_mode,
        "{ctx}: numeric mode"
    );
    assert_eq!(
        prepared.ranking.order(),
        raw.ranking.order(),
        "{ctx}: ranking order"
    );
    match (&prepared.values, &raw.values) {
        (Values::Complex(a), Values::Complex(b)) => {
            assert_eq!(a.len(), b.len(), "{ctx}: length");
            for (t, (x, y)) in a.iter().zip(b).enumerate() {
                assert!(x.approx_eq(*y, TOL), "{ctx}: tuple {t}: {x} vs {y}");
            }
        }
        (Values::LogDomain(a), Values::LogDomain(b)) => {
            for (t, (x, y)) in a.iter().zip(b).enumerate() {
                let close = (x - y).abs() <= TOL * y.abs().max(1.0)
                    || (x.is_infinite() && y.is_infinite() && x == y);
                assert!(close, "{ctx}: tuple {t}: {x} vs {y}");
            }
        }
        (Values::Scaled(a), Values::Scaled(b)) => {
            for (t, (x, y)) in a.iter().zip(b).enumerate() {
                let (kx, ky) = (x.magnitude_key(), y.magnitude_key());
                let close = (kx - ky).abs() <= TOL * ky.abs().max(1.0)
                    || (kx.is_infinite() && ky.is_infinite() && kx == ky);
                assert!(close, "{ctx}: tuple {t}: key {kx} vs {ky}");
            }
        }
        (g, w) => panic!(
            "{ctx}: value mode mismatch: prepared {:?} vs raw {:?}",
            g.numeric_mode(),
            w.numeric_mode()
        ),
    }
    if let (Some(gs), Some(ws)) = (&prepared.set, &raw.set) {
        assert_eq!(gs.members, ws.members, "{ctx}: U-Top set");
        assert!((gs.log_prob - ws.log_prob).abs() < TOL, "{ctx}: U-Top logp");
    } else {
        assert_eq!(prepared.set.is_some(), raw.set.is_some(), "{ctx}: set");
    }
}

/// The query mix: every numeric mode (plain complex, log-domain, scaled),
/// complex α, PRFω, and the set/positional semantics.
fn mode_mix(n: usize) -> Vec<RankQuery> {
    vec![
        RankQuery::prfe_complex(Complex::real(0.85)).algorithm(Algorithm::ExactGf),
        RankQuery::prfe(0.85).algorithm(Algorithm::LogDomain),
        RankQuery::prfe_complex(Complex::real(0.85)).algorithm(Algorithm::Scaled),
        RankQuery::prfe_complex(Complex::new(0.5, 0.3)).algorithm(Algorithm::ExactGf),
        RankQuery::prf(TabulatedWeight::from_real(&[2.0, 1.0, 0.25, 0.125])),
        RankQuery::pt(3.min(n.max(1))),
        RankQuery::erank(),
        RankQuery::escore(),
        RankQuery::consensus(3.min(n.max(1))),
    ]
}

type SharedRel = std::sync::Arc<dyn ProbabilisticRelation + Send + Sync>;

/// Runs every query of the mix singly against the prepared wrapper and
/// the raw relation, comparing each pair.
fn assert_prepared_single_equivalent(rel: SharedRel, queries: &[RankQuery], ctx: &str) {
    let prepared = PreparedRelation::new(rel.clone());
    for (i, q) in queries.iter().enumerate() {
        let got = q.clone().run(&prepared).expect("prepared query runs");
        let want = q.clone().run(rel.as_ref()).expect("raw query runs");
        assert_equivalent(
            &got,
            &want,
            &format!("{ctx}[{i}] {}", want.report.semantics),
        );
    }
}

/// Runs the mix as a batch against the same prepared instance `flushes`
/// times, comparing every flush with a raw-relation batch: reuse across
/// flushes must not drift.
fn assert_prepared_batches_equivalent(
    rel: SharedRel,
    queries: &[RankQuery],
    flushes: usize,
    ctx: &str,
) {
    let prepared = PreparedRelation::new(rel.clone());
    let want = QueryBatch::new()
        .add_queries(queries.iter().cloned())
        .run(rel.as_ref())
        .expect("raw batch runs");
    for flush in 0..flushes {
        let got = QueryBatch::new()
            .add_queries(queries.iter().cloned())
            .run(&prepared)
            .expect("prepared batch runs");
        assert_eq!(got.len(), want.len(), "{ctx}: one result per query");
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_equivalent(
                g,
                w,
                &format!("{ctx} flush {flush}[{i}] {}", w.report.semantics),
            );
        }
    }
}

// ---------------------------------------------------------------------
// IndependentDb: prepared score order
// ---------------------------------------------------------------------

#[test]
fn prepared_singles_match_raw_on_independent() {
    for seed in 0..4u64 {
        let db = random_db(seed, 40);
        let mut queries = mode_mix(db.len());
        queries.push(RankQuery::urank(5));
        queries.push(RankQuery::utop(3));
        assert_prepared_single_equivalent(
            std::sync::Arc::new(db),
            &queries,
            &format!("independent seed {seed}"),
        );
    }
}

#[test]
fn prepared_batches_match_raw_on_independent_across_flushes() {
    let db = random_db(11, 60);
    let queries = mode_mix(db.len());
    assert_prepared_batches_equivalent(std::sync::Arc::new(db), &queries, 12, "independent");
}

// ---------------------------------------------------------------------
// AndXorTree: prepared order + positions + marginals + EvalPlan
// ---------------------------------------------------------------------

#[test]
fn prepared_singles_match_raw_on_trees() {
    for seed in 0..4u64 {
        let tree = random_general_tree(seed, 48);
        let queries = mode_mix(AndXorTree::n_tuples(&tree));
        assert_prepared_single_equivalent(
            std::sync::Arc::new(tree),
            &queries,
            &format!("tree seed {seed}"),
        );
    }
}

#[test]
fn prepared_batches_match_raw_on_trees_across_flushes() {
    let tree = random_general_tree(21, 64);
    let queries = mode_mix(AndXorTree::n_tuples(&tree));
    assert_prepared_batches_equivalent(std::sync::Arc::new(tree), &queries, 12, "tree");
}

// ---------------------------------------------------------------------
// NetworkRelation: the empty-state fallback path
// ---------------------------------------------------------------------

#[test]
fn prepared_singles_match_raw_on_networks() {
    for seed in 0..3u64 {
        let net = random_network(seed, 10);
        // The graphical adapter's supported surface (no E-Rank/U-Top).
        let queries = vec![
            RankQuery::prfe_complex(Complex::real(0.85)).algorithm(Algorithm::ExactGf),
            RankQuery::prfe(0.85).algorithm(Algorithm::LogDomain),
            RankQuery::prfe_complex(Complex::real(0.85)).algorithm(Algorithm::Scaled),
            RankQuery::prf(TabulatedWeight::from_real(&[2.0, 1.0, 0.25])),
            RankQuery::pt(3),
            RankQuery::escore(),
            RankQuery::consensus(3),
            RankQuery::urank(4),
        ];
        assert_prepared_single_equivalent(
            std::sync::Arc::new(net),
            &queries,
            &format!("network seed {seed}"),
        );
    }
}

#[test]
fn prepared_batches_match_raw_on_networks_across_flushes() {
    let net = random_network(7, 9);
    let queries = vec![
        RankQuery::prfe(0.9),
        RankQuery::pt(2),
        RankQuery::escore(),
        RankQuery::consensus(2),
    ];
    assert_prepared_batches_equivalent(std::sync::Arc::new(net), &queries, 8, "network");
}

// ---------------------------------------------------------------------
// Prepared state sanity
// ---------------------------------------------------------------------

/// The wrapper actually carries state where the backend supports
/// preparation, and degrades to the empty state (not an error) where it
/// does not.
#[test]
fn prepared_state_presence_matches_backend_support() {
    let db = PreparedRelation::from_relation(random_db(1, 12));
    assert!(!db.state().is_empty(), "independent relations prepare");
    let tree = PreparedRelation::from_relation(random_general_tree(1, 12));
    assert!(!tree.state().is_empty(), "trees prepare");
    let net = PreparedRelation::from_relation(random_network(1, 6));
    assert!(
        net.state().is_empty(),
        "graphical adapter has no prepared kernels"
    );
}

/// A prepared relation wrapped *again* (e.g. re-registered) still answers
/// identically: its own state wins, nothing double-applies.
#[test]
fn double_wrapping_is_idempotent() {
    let tree = random_general_tree(33, 40);
    let once = PreparedRelation::from_relation(tree.clone());
    let twice = PreparedRelation::new(std::sync::Arc::new(once));
    for q in mode_mix(AndXorTree::n_tuples(&tree)) {
        let want = q.clone().run(&tree).expect("raw");
        let got = q.run(&twice).expect("double-wrapped");
        assert_equivalent(&got, &want, "double wrap");
    }
}
