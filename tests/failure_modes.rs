//! Failure-injection and edge-case tests across the public API: invalid
//! inputs must fail loudly and early, and degenerate-but-valid inputs must
//! produce sensible answers.

use prf::core::{prf_rank, prfe_rank_log, Ranking, StepWeight, ValueOrder};
use prf::pdb::{
    AndXorTree, AttributeUncertainDb, IndependentDb, NodeKind, PdbError, TreeBuilder,
    UncertainTuple,
};
use prf::prelude::{Algorithm, Complex, NumericMode, QueryBatch, QueryError, RankQuery, Semantics};

// ---------------------------------------------------------------------
// Invalid inputs
// ---------------------------------------------------------------------

#[test]
fn invalid_probabilities_are_rejected_everywhere() {
    assert!(matches!(
        IndependentDb::from_pairs([(1.0, -0.5)]),
        Err(PdbError::InvalidProbability { .. })
    ));
    assert!(matches!(
        IndependentDb::from_pairs([(1.0, f64::INFINITY)]),
        Err(PdbError::InvalidProbability { .. })
    ));
    assert!(matches!(
        UncertainTuple::new(vec![(1.0, f64::NAN)]),
        Err(PdbError::InvalidProbability { .. })
    ));

    let mut b = TreeBuilder::new(NodeKind::Xor);
    let root = b.root();
    assert!(matches!(
        b.add_leaf(root, 1.5, 1.0),
        Err(PdbError::InvalidProbability { .. })
    ));
}

#[test]
fn nan_scores_are_rejected() {
    assert!(matches!(
        IndependentDb::from_pairs([(f64::NAN, 0.5)]),
        Err(PdbError::InvalidScore { .. })
    ));
    let mut b = TreeBuilder::new(NodeKind::And);
    let root = b.root();
    assert!(matches!(
        b.add_leaf(root, 1.0, f64::NAN),
        Err(PdbError::InvalidScore { .. })
    ));
}

#[test]
fn overfull_xor_nodes_fail_at_build() {
    let mut b = TreeBuilder::new(NodeKind::Xor);
    let root = b.root();
    b.add_leaf(root, 0.6, 1.0).unwrap();
    b.add_leaf(root, 0.6, 2.0).unwrap();
    assert!(matches!(
        b.build(),
        Err(PdbError::XorProbabilityOverflow { .. })
    ));
}

#[test]
fn structural_misuse_is_reported() {
    let mut b = TreeBuilder::new(NodeKind::And);
    let root = b.root();
    let _leaf = b.add_leaf(root, 1.0, 1.0).unwrap();
    // Children under a leaf (node id 1 is the leaf).
    assert!(matches!(
        b.add_inner(prf::pdb::NodeId(1), NodeKind::Xor, 1.0),
        Err(PdbError::Structure(_))
    ));
    // Probability-bearing edge under an ∧ node.
    assert!(matches!(
        b.add_leaf(root, 0.5, 2.0),
        Err(PdbError::Structure(_))
    ));
    // Unknown parent id.
    assert!(matches!(
        b.add_leaf(prf::pdb::NodeId(99), 1.0, 2.0),
        Err(PdbError::Structure(_))
    ));
}

#[test]
fn world_enumeration_limits_are_enforced() {
    let db = IndependentDb::from_pairs((0..30).map(|i| (i as f64, 0.5))).unwrap();
    assert!(matches!(
        db.enumerate_worlds(1000),
        Err(PdbError::TooManyWorlds { .. })
    ));
    let tree = AndXorTree::from_independent(&db);
    assert!(matches!(
        tree.enumerate_worlds(1000),
        Err(PdbError::TooManyWorlds { .. })
    ));
}

// ---------------------------------------------------------------------
// Degenerate-but-valid inputs
// ---------------------------------------------------------------------

#[test]
fn empty_relation_everywhere() {
    let db = IndependentDb::from_pairs(std::iter::empty::<(f64, f64)>()).unwrap();
    assert!(prf_rank(&db, &StepWeight { h: 3 }).is_empty());
    assert!(prfe_rank_log(&db, 0.5).is_empty());
    assert!(prf::baselines::expected_ranks(&db).is_empty());
    assert!(prf::baselines::utop_topk(&db, 1).is_none());
    assert!(prf::baselines::k_selection(&db, 1).is_none());
    let r = Ranking::from_keys(&[]);
    assert!(r.is_empty());
    assert!(r.top_k(5).is_empty());
}

#[test]
fn all_certain_tuples_rank_by_score() {
    let db = IndependentDb::from_pairs([(3.0, 1.0), (9.0, 1.0), (6.0, 1.0)]).unwrap();
    // Deterministic data: every semantics must agree with the score order.
    let score_order = prf::baselines::score_ranking(&db);
    let pt = Ranking::from_values(&prf_rank(&db, &StepWeight { h: 2 }), ValueOrder::RealPart);
    assert_eq!(pt.top_k(2), score_order.top_k(2));
    let er = prf::baselines::erank_ranking(&db);
    assert_eq!(er.order(), score_order.order());
    let prfe = Ranking::from_keys(&prfe_rank_log(&db, 0.7));
    assert_eq!(prfe.order(), score_order.order());
    let (utop, logp) = prf::baselines::utop_topk(&db, 2).unwrap();
    assert_eq!(&utop, score_order.top_k(2));
    assert!((logp.exp() - 1.0).abs() < 1e-12);
}

#[test]
fn all_impossible_tuples() {
    let db = IndependentDb::from_pairs([(3.0, 0.0), (9.0, 0.0)]).unwrap();
    let v = prf_rank(&db, &StepWeight { h: 2 });
    assert!(v.iter().all(|u| u.re == 0.0));
    assert!(prf::baselines::utop_topk(&db, 1).is_none());
    let worlds = db.enumerate_worlds(16).unwrap();
    assert_eq!(worlds.len(), 1);
    assert!(worlds.worlds[0].0.is_empty());
}

#[test]
fn duplicate_scores_rank_deterministically() {
    let db = IndependentDb::from_pairs([(5.0, 0.5), (5.0, 0.5), (5.0, 0.5)]).unwrap();
    let a = Ranking::from_keys(&prfe_rank_log(&db, 0.8));
    let b = Ranking::from_keys(&prfe_rank_log(&db, 0.8));
    assert_eq!(a.order(), b.order());
    // Tie-break is by tuple id.
    assert_eq!(a.order()[0], prf::pdb::TupleId(0));
}

#[test]
fn attribute_db_with_empty_alternatives() {
    // A tuple with no alternatives never exists; ranking still works.
    let db = AttributeUncertainDb::new(vec![
        UncertainTuple::new(vec![]).unwrap(),
        UncertainTuple::new(vec![(5.0, 0.7)]).unwrap(),
    ]);
    let v = prf::core::prf_rank_uncertain(&db, &StepWeight { h: 1 }).unwrap();
    assert_eq!(v[0], prf::numeric::Complex::ZERO);
    assert!((v[1].re - 0.7).abs() < 1e-12);
}

#[test]
fn single_tuple_tree() {
    let tree = AndXorTree::from_x_tuples(&[vec![(42.0, 0.25)]]).unwrap();
    let d = prf::core::rank_distributions_tree(&tree);
    assert!((d[0][0] - 0.25).abs() < 1e-12);
    let er = prf::core::expected_ranks_tree(&tree);
    // Present (rank 1) w.p. .25; absent contributes |pw| = 0.
    assert!((er[0] - 0.25).abs() < 1e-12);
}

// ---------------------------------------------------------------------
// Batched queries: API failure modes and degenerate interactions
// ---------------------------------------------------------------------

#[test]
fn empty_batch_is_rejected_loudly() {
    let db = IndependentDb::from_pairs([(1.0, 0.5)]).unwrap();
    // Both compiling and running an empty batch are errors — never an
    // empty answer that a caller could mistake for "no results found".
    assert_eq!(
        QueryBatch::new().run(&db).unwrap_err(),
        QueryError::EmptyBatch
    );
    assert_eq!(
        QueryBatch::new().compile(&db).unwrap_err(),
        QueryError::EmptyBatch
    );
    let tree = AndXorTree::from_independent(&db);
    assert_eq!(
        QueryBatch::new().run(&tree).unwrap_err(),
        QueryError::EmptyBatch
    );
}

#[test]
fn duplicate_semantics_are_answered_independently() {
    let db = IndependentDb::from_pairs([(9.0, 0.4), (8.0, 0.8), (7.0, 0.5)]).unwrap();
    let results = QueryBatch::new()
        .add(Semantics::Pt(2))
        .add(Semantics::Pt(2))
        .add_query(RankQuery::pt(2).top_k(1))
        .run(&db)
        .unwrap();
    assert_eq!(results.len(), 3, "duplicates are not deduplicated");
    assert_eq!(results[0].ranking.order(), results[1].ranking.order());
    assert_eq!(
        results[0].values.as_complex().unwrap(),
        results[1].values.as_complex().unwrap()
    );
    // The third duplicate keeps its own option overrides.
    assert_eq!(results[2].ranking.len(), 1);
}

#[test]
fn batch_mixing_numeric_modes_keeps_each_entry_in_its_mode() {
    let db = IndependentDb::from_pairs([(9.0, 0.4), (8.0, 0.8), (7.0, 0.5)]).unwrap();
    let results = QueryBatch::new()
        .add_query(RankQuery::prfe(0.7).algorithm(Algorithm::ExactGf))
        .add_query(RankQuery::prfe(0.7).algorithm(Algorithm::LogDomain))
        .add_query(RankQuery::prfe(0.7).algorithm(Algorithm::Scaled))
        .run(&db)
        .unwrap();
    assert_eq!(results[0].report.numeric_mode, NumericMode::Complex);
    assert_eq!(results[1].report.numeric_mode, NumericMode::LogDomain);
    assert_eq!(results[2].report.numeric_mode, NumericMode::Scaled);
    // All three modes agree on the ranking, like the single queries do.
    assert_eq!(results[0].ranking.order(), results[1].ranking.order());
    assert_eq!(results[0].ranking.order(), results[2].ranking.order());
    // …and a mode that is invalid for its parameters still fails the whole
    // batch, exactly like the single query would.
    let err = QueryBatch::new()
        .add_query(RankQuery::prfe(0.7))
        .add_query(RankQuery::prfe_complex(Complex::new(0.5, 0.5)).algorithm(Algorithm::LogDomain))
        .run(&db)
        .unwrap_err();
    assert!(matches!(err, QueryError::InvalidParameter(_)), "{err}");
}

#[test]
fn batch_top_k_interaction() {
    let db = IndependentDb::from_pairs([(9.0, 0.4), (8.0, 0.8), (7.0, 0.5), (6.0, 0.9)]).unwrap();
    let results = QueryBatch::new()
        .add(Semantics::Pt(3)) // inherits the batch default below
        .add_query(RankQuery::prfe(0.8).top_k(1)) // entry override wins
        .add_query(RankQuery::erank().top_k(99)) // clamps to n, like singles
        .top_k(2)
        .run(&db)
        .unwrap();
    assert_eq!(results[0].ranking.len(), 2);
    assert_eq!(results[0].report.truncated_to, Some(2));
    assert_eq!(results[1].ranking.len(), 1);
    assert_eq!(results[1].report.truncated_to, Some(1));
    assert_eq!(results[2].ranking.len(), db.len());
    assert_eq!(results[2].report.truncated_to, Some(99));
    // Values are never truncated — only rankings are.
    assert_eq!(results[1].values.len(), db.len());
}

#[test]
fn parallel_batch_on_single_tuple_relation() {
    // More threads than tuples: the sharded walk must clamp, not panic,
    // and stay answer-equivalent to the serial single queries.
    let tree = AndXorTree::from_x_tuples(&[vec![(42.0, 0.25)]]).unwrap();
    let results = QueryBatch::new()
        .add(Semantics::Pt(1))
        .add(Semantics::Prfe(Complex::real(0.9)))
        .add(Semantics::ERank)
        .parallel(8)
        .run(&tree)
        .unwrap();
    let pt = RankQuery::pt(1).run(&tree).unwrap();
    assert_eq!(
        results[0].values.as_complex().unwrap(),
        pt.values.as_complex().unwrap()
    );
    let er = RankQuery::erank().run(&tree).unwrap();
    assert_eq!(results[2].ranking.order(), er.ranking.order());
    // The same holds on a 1-tuple independent relation.
    let db = IndependentDb::from_pairs([(42.0, 0.25)]).unwrap();
    let results = QueryBatch::new()
        .add(Semantics::Pt(1))
        .add(Semantics::ERank)
        .parallel(8)
        .run(&db)
        .unwrap();
    assert!((results[0].values.as_complex().unwrap()[0].re - 0.25).abs() < 1e-12);
}

#[test]
fn mixture_of_constant_zero_weight() {
    // Approximating the zero function: every Υ is ~0 and ranking is by id.
    let mix =
        prf::approx::approximate_weights(&|_| 0.0, 16, &prf::approx::DftApproxConfig::refined(4));
    let db = IndependentDb::from_pairs([(2.0, 0.5), (1.0, 0.5)]).unwrap();
    let ups = mix.upsilons_independent_fast(&db);
    for u in &ups {
        assert!(u.abs() < 1e-9);
    }
}
