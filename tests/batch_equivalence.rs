//! Differential suite for batched execution: a [`QueryBatch`] must be
//! **answer-equivalent to the sequence of equivalent single `RankQuery`
//! runs** — same ranking order and value-level agreement within 1e-9 —
//! across semantics mixes × backends (`IndependentDb`, `AndXorTree`,
//! `NetworkRelation`) × algorithms (`Auto`, `ExactGf`, `LogDomain`,
//! `Scaled`), serial and sharded-parallel, including proptest-generated
//! random batches (whose failures shrink, courtesy of the shim).
//!
//! The single-query side never routes through the batch engine (its
//! kernels are the free functions differential-tested against brute force
//! elsewhere), so the comparison is not circular.

use prf::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-9;

// ---------------------------------------------------------------------
// Seeded random instances (same shapes as tests/query_equivalence.rs)
// ---------------------------------------------------------------------

fn random_db(seed: u64, n: usize) -> IndependentDb {
    let mut rng = StdRng::seed_from_u64(seed);
    IndependentDb::from_pairs((0..n).map(|_| {
        (
            rng.gen_range(0.0..1000.0),
            match rng.gen_range(0..10) {
                0 => 0.0,
                1 => 1.0,
                _ => rng.gen_range(0.01..1.0),
            },
        )
    }))
    .expect("valid pairs")
}

fn random_xtuple_tree(seed: u64, groups: usize) -> AndXorTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec: Vec<Vec<(f64, f64)>> = (0..groups)
        .map(|_| {
            let alts = rng.gen_range(1..4);
            let mut budget = 1.0f64;
            (0..alts)
                .map(|_| {
                    let p = rng.gen_range(0.0..budget.min(0.7));
                    budget -= p;
                    (rng.gen_range(0.0..1000.0), p)
                })
                .collect()
        })
        .collect();
    AndXorTree::from_x_tuples(&spec).expect("valid groups")
}

fn random_general_tree(seed: u64, target_leaves: usize) -> AndXorTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TreeBuilder::new(NodeKind::And);
    let root = b.root();
    let mut frontier = vec![(root, false, 1.0f64)];
    let mut leaves = 0usize;
    while leaves < target_leaves {
        let idx = rng.gen_range(0..frontier.len());
        let (node, is_xor, budget) = frontier[idx];
        let p = if is_xor {
            let p = rng.gen_range(0.0..budget.min(0.6));
            frontier[idx].2 -= p;
            p
        } else {
            1.0
        };
        if frontier.len() > 6 || rng.gen_bool(0.7) {
            b.add_leaf(node, p, rng.gen_range(0.0..1000.0)).unwrap();
            leaves += 1;
        } else {
            let child_xor = rng.gen_bool(0.5);
            let kind = if child_xor {
                NodeKind::Xor
            } else {
                NodeKind::And
            };
            let child = b.add_inner(node, kind, p).unwrap();
            frontier.push((child, child_xor, 1.0));
        }
    }
    b.build().unwrap()
}

fn random_network(seed: u64, n: usize) -> NetworkRelation {
    use prf::graphical::{Factor, MarkovNetwork, VarId};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors = Vec::new();
    for j in 1..n {
        let parent = rng.gen_range(0..j);
        factors.push(Factor::new(
            vec![VarId(parent as u32), VarId(j as u32)],
            (0..4).map(|_| rng.gen_range(0.05..1.0)).collect(),
        ));
    }
    let net = MarkovNetwork::new(n, factors);
    let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
    NetworkRelation::new(&net, scores)
}

// ---------------------------------------------------------------------
// Equivalence assertion: order identical, values within 1e-9
// ---------------------------------------------------------------------

fn assert_equivalent(got: &RankedResult, want: &RankedResult, ctx: &str) {
    assert_eq!(
        got.report.algorithm, want.report.algorithm,
        "{ctx}: resolved algorithm"
    );
    assert_eq!(
        got.ranking.order(),
        want.ranking.order(),
        "{ctx}: ranking order"
    );
    assert_values_equivalent(got, want, ctx);
}

/// Value-level agreement only — used for the serial-vs-parallel batch
/// comparison, where sub-1e-9 float differences between the fast-forward
/// and incremental fold orders can flip *exact ties* in the ranking (the
/// same slack the single-query parallel tests allow).
fn assert_values_equivalent(got: &RankedResult, want: &RankedResult, ctx: &str) {
    assert_eq!(
        got.report.numeric_mode, want.report.numeric_mode,
        "{ctx}: numeric mode"
    );
    match (&got.values, &want.values) {
        (Values::Complex(a), Values::Complex(b)) => {
            assert_eq!(a.len(), b.len(), "{ctx}: length");
            for (t, (x, y)) in a.iter().zip(b).enumerate() {
                assert!(x.approx_eq(*y, TOL), "{ctx}: tuple {t}: {x} vs {y}");
            }
        }
        (Values::LogDomain(a), Values::LogDomain(b)) => {
            assert_eq!(a.len(), b.len(), "{ctx}: length");
            for (t, (x, y)) in a.iter().zip(b).enumerate() {
                let close = (x - y).abs() <= TOL * y.abs().max(1.0)
                    || (x.is_infinite() && y.is_infinite() && x == y);
                assert!(close, "{ctx}: tuple {t}: {x} vs {y}");
            }
        }
        (Values::Scaled(a), Values::Scaled(b)) => {
            assert_eq!(a.len(), b.len(), "{ctx}: length");
            for (t, (x, y)) in a.iter().zip(b).enumerate() {
                let (kx, ky) = (x.magnitude_key(), y.magnitude_key());
                let close = (kx - ky).abs() <= TOL * ky.abs().max(1.0)
                    || (kx.is_infinite() && ky.is_infinite() && kx == ky);
                assert!(close, "{ctx}: tuple {t}: key {kx} vs {ky}");
            }
        }
        (g, w) => panic!(
            "{ctx}: value mode mismatch: batch {:?} vs single {:?}",
            g.numeric_mode(),
            w.numeric_mode()
        ),
    }
    if let (Some(gs), Some(ws)) = (&got.set, &want.set) {
        assert_eq!(gs.members, ws.members, "{ctx}: U-Top set");
        assert!((gs.log_prob - ws.log_prob).abs() < TOL, "{ctx}: U-Top logp");
    } else {
        assert_eq!(got.set.is_some(), want.set.is_some(), "{ctx}: set answer");
    }
}

/// Runs `queries` both as one batch and as singles and compares each pair.
fn assert_batch_equivalent(
    rel: &(impl ProbabilisticRelation + ?Sized),
    queries: &[RankQuery],
    threads: Option<usize>,
    ctx: &str,
) {
    let mut batch = QueryBatch::new().add_queries(queries.iter().cloned());
    if let Some(t) = threads {
        batch = batch.parallel(t);
    }
    let results = batch.run(rel).expect("batch runs");
    assert_eq!(results.len(), queries.len(), "{ctx}: one result per query");
    for (i, (got, q)) in results.iter().zip(queries).enumerate() {
        let mut q = q.clone();
        if let Some(t) = threads {
            q = q.parallel(t);
        }
        let want = q.run(rel).expect("single query runs");
        assert_equivalent(got, &want, &format!("{ctx}[{i}] {}", want.report.semantics));
    }
}

/// The standard semantics mix: ≥ 4 distinct semantics, PRFe at several α,
/// PT at several h, plus E-Rank — the serving-workload shape the batch
/// engine amortizes.
fn standard_mix(n: usize) -> Vec<RankQuery> {
    vec![
        RankQuery::pt(2.min(n.max(1))),
        RankQuery::pt(n.max(1)),
        RankQuery::consensus(3.min(n.max(1))),
        RankQuery::prf(TabulatedWeight::from_real(&[2.0, 1.0, 0.25, 0.125])),
        RankQuery::prfe(0.95),
        RankQuery::prfe(0.4),
        RankQuery::prfe_complex(Complex::new(0.5, 0.3)).algorithm(Algorithm::ExactGf),
        RankQuery::erank(),
        RankQuery::escore(),
    ]
}

// ---------------------------------------------------------------------
// IndependentDb
// ---------------------------------------------------------------------

#[test]
fn batch_equals_sequential_on_independent() {
    for seed in 0..4u64 {
        let db = random_db(seed, 40);
        let mut queries = standard_mix(db.len());
        // Every PRFe numeric mode in one batch.
        queries.push(RankQuery::prfe(0.8).algorithm(Algorithm::ExactGf));
        queries.push(RankQuery::prfe(0.8).algorithm(Algorithm::LogDomain));
        queries.push(RankQuery::prfe(0.8).algorithm(Algorithm::Scaled));
        // Fallback-routed semantics ride along.
        queries.push(RankQuery::urank(5));
        queries.push(RankQuery::utop(3));
        assert_batch_equivalent(&db, &queries, None, &format!("independent seed {seed}"));
    }
}

#[test]
fn batch_equals_sequential_on_large_independent_auto() {
    // Large enough that Auto picks LogDomain for real-α PRFe — the batch
    // must resolve identically and stay equivalent.
    let db = random_db(99, 2000);
    let queries = vec![
        RankQuery::prfe(0.5),
        RankQuery::prfe(0.9),
        RankQuery::pt(100),
        RankQuery::erank(),
    ];
    let results = QueryBatch::new()
        .add_queries(queries.iter().cloned())
        .run(&db)
        .unwrap();
    assert_eq!(results[0].report.algorithm, Algorithm::LogDomain);
    assert!(results[0].report.auto_selected);
    assert_batch_equivalent(&db, &queries, None, "independent 2k auto");
}

// ---------------------------------------------------------------------
// AndXorTree (x-tuple and general), serial and parallel
// ---------------------------------------------------------------------

#[test]
fn batch_equals_sequential_on_trees() {
    for seed in 0..4u64 {
        for (kind, tree) in [
            ("xtuple", random_xtuple_tree(seed + 20, 12)),
            ("general", random_general_tree(seed + 20, 14)),
        ] {
            let queries = standard_mix(tree.n_tuples());
            assert_batch_equivalent(&tree, &queries, None, &format!("{kind} seed {seed}"));
        }
    }
}

#[test]
fn parallel_batch_equals_serial_batch_and_singles() {
    for seed in 0..3u64 {
        let tree = random_general_tree(seed + 40, 16);
        let queries = vec![
            RankQuery::pt(4),
            RankQuery::pt(tree.n_tuples()),
            RankQuery::prfe(0.9),
            RankQuery::erank(),
        ];
        for threads in [2usize, 3, 8] {
            assert_batch_equivalent(
                &tree,
                &queries,
                Some(threads),
                &format!("parallel({threads}) seed {seed}"),
            );
        }
        // Serial batch ≡ parallel batch, value-level.
        let serial = QueryBatch::new()
            .add_queries(queries.iter().cloned())
            .run(&tree)
            .unwrap();
        let parallel = QueryBatch::new()
            .add_queries(queries.iter().cloned())
            .parallel(4)
            .run(&tree)
            .unwrap();
        for (s, p) in serial.iter().zip(&parallel) {
            assert_values_equivalent(p, s, "serial vs parallel batch");
        }
    }
}

#[test]
fn small_batches_gate_to_the_serial_route() {
    // Regression for the ROADMAP item "parallel loses to serial at
    // n = 10⁴": sharding pays a shared prefix sweep plus one snapshot
    // clone per worker, so below `PARALLEL_MIN_SHARD_TUPLES` tuples per
    // shard the engine must
    // degrade a `.parallel(t)` batch to the serial route. The observable
    // is the evaluator accounting — a sharded walk holds `t` concurrent
    // evaluators, so its merged `plan_nodes` is `t×` the serial walk's.
    let tree = random_general_tree(44, 64);
    assert!(tree.n_tuples() / 8 < PARALLEL_MIN_SHARD_TUPLES);
    let serial = QueryBatch::new().add(Semantics::Pt(4)).run(&tree).unwrap();
    let gated = QueryBatch::new()
        .add(Semantics::Pt(4))
        .parallel(8)
        .run(&tree)
        .unwrap();
    let s = serial[0]
        .report
        .memory
        .expect("serial walk accounts memory");
    let g = gated[0].report.memory.expect("gated walk accounts memory");
    assert_eq!(
        g.plan_nodes, s.plan_nodes,
        "a gated batch must hold one evaluator, not one per shard"
    );
    // Values are bit-identical — it literally ran the serial walk.
    assert_eq!(
        serial[0].values.as_complex().unwrap(),
        gated[0].values.as_complex().unwrap()
    );
    // The same request on a relation clearing the floor does shard.
    assert_eq!(
        effective_walk_threads(2 * PARALLEL_MIN_SHARD_TUPLES, Some(2)),
        2
    );
}

// ---------------------------------------------------------------------
// NetworkRelation: no shared-walk kernel — everything falls back, and the
// batch must still equal the sequential runs (including error behaviour)
// ---------------------------------------------------------------------

#[test]
fn batch_equals_sequential_on_graphical() {
    let rel = random_network(7, 6);
    let queries = vec![
        RankQuery::pt(2),
        RankQuery::prfe(0.7).algorithm(Algorithm::ExactGf),
        RankQuery::prf(TabulatedWeight::from_real(&[1.0, 0.5])),
        RankQuery::urank(3),
    ];
    assert_batch_equivalent(&rel, &queries, None, "graphical");
    // Nothing shares on this backend…
    let results = QueryBatch::new()
        .add_queries(queries.iter().cloned())
        .run(&rel)
        .unwrap();
    for r in &results {
        assert!(r.report.batch.is_none(), "graphical entries never share");
    }
    // …and unsupported semantics error exactly like the sequential run.
    let err = QueryBatch::new()
        .add(Semantics::Pt(2))
        .add(Semantics::ERank)
        .run(&rel)
        .unwrap_err();
    assert!(matches!(err, QueryError::Unsupported { .. }), "{err}");
}

// ---------------------------------------------------------------------
// Degenerate relations
// ---------------------------------------------------------------------

#[test]
fn batch_on_empty_relation() {
    let db = IndependentDb::from_pairs(std::iter::empty::<(f64, f64)>()).unwrap();
    let results = QueryBatch::new()
        .add(Semantics::Pt(3))
        .add(Semantics::Prfe(Complex::real(0.6)))
        .add(Semantics::ERank)
        .run(&db)
        .unwrap();
    for r in &results {
        assert!(r.values.is_empty());
        assert!(r.ranking.is_empty());
    }
}

#[test]
fn batch_shares_cost_attribution() {
    let tree = random_general_tree(3, 12);
    let results = QueryBatch::new()
        .add(Semantics::Pt(4))
        .add(Semantics::Prfe(Complex::real(0.9)))
        .add(Semantics::ERank)
        .add(Semantics::UTop(2))
        .run(&tree)
        .unwrap();
    let cost = results[0].report.batch.expect("shared entry records cost");
    assert_eq!(cost.consumers, 3);
    assert!(cost.walk_seconds >= 0.0);
    assert!(cost.amortized_seconds() <= cost.walk_seconds + f64::EPSILON);
    assert_eq!(results[0].report.kernel_seconds, cost.amortized_seconds());
    // The single-routed U-Top entry records none.
    assert!(results[3].report.batch.is_none());
    // Shared tree entries surface the walk's evaluator accounting.
    assert!(results[0].report.memory.is_some());
}

// ---------------------------------------------------------------------
// Proptest: random batches on random relations (failures shrink)
// ---------------------------------------------------------------------

fn query_from_pick((kind, alpha, h): (u32, f64, usize)) -> RankQuery {
    match kind {
        0 => RankQuery::pt(h),
        1 => RankQuery::prfe(alpha),
        2 => RankQuery::prfe(alpha.min(0.999)).algorithm(Algorithm::LogDomain),
        3 => RankQuery::prfe(alpha).algorithm(Algorithm::Scaled),
        4 => RankQuery::erank(),
        5 => RankQuery::escore(),
        6 => RankQuery::consensus(h),
        _ => RankQuery::prf(TabulatedWeight::from_real(
            &(0..h).map(|i| alpha + i as f64).collect::<Vec<_>>(),
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_batches_match_sequential_on_independent(
        seed in 0u64..5000,
        picks in proptest::collection::vec((0u32..8, 0.01f64..1.0, 1usize..8), 1..7),
    ) {
        let db = random_db(seed, 24);
        let queries: Vec<RankQuery> = picks.into_iter().map(query_from_pick).collect();
        assert_batch_equivalent(&db, &queries, None, &format!("proptest seed {seed}"));
    }

    #[test]
    fn random_batches_match_sequential_on_trees(
        seed in 0u64..5000,
        picks in proptest::collection::vec((0u32..8, 0.01f64..1.0, 1usize..6), 1..6),
    ) {
        let tree = random_general_tree(seed, 10);
        let queries: Vec<RankQuery> = picks.into_iter().map(query_from_pick).collect();
        assert_batch_equivalent(&tree, &queries, None, &format!("proptest tree seed {seed}"));
    }
}
