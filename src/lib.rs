//! # prf — A Unified Approach to Ranking in Probabilistic Databases
//!
//! A complete Rust implementation of Li, Saha & Deshpande's VLDB 2009 paper
//! *“A Unified Approach to Ranking in Probabilistic Databases”*
//! (arXiv:0904.1366): the **parameterized ranking function** (PRF) framework
//! and its two workhorse families **PRFω(h)** and **PRFe(α)**, together with
//! every substrate the paper builds on — probabilistic and/xor trees,
//! generating-function algorithms, DFT-based PRFe-mixture approximation,
//! preference learning, prior ranking semantics, junction-tree inference,
//! top-k distance metrics and seeded dataset generators.
//!
//! ## Thirty-second tour
//!
//! The library embodies the paper's unification: **one query engine**
//! ([`core::query::RankQuery`]) evaluates every ranking semantics on every
//! backend, picking the numeric mode automatically.
//!
//! ```
//! use prf::prelude::*;
//!
//! // A probabilistic relation: (score, existence probability).
//! let db = IndependentDb::from_pairs([
//!     (100.0, 0.5), // great score, coin-flip existence
//!     (50.0, 1.0),  // mediocre but certain
//!     (80.0, 0.8),
//! ]).unwrap();
//!
//! // PT(2): rank by the probability of making the top 2.
//! let pt = RankQuery::pt(2).run(&db)?;
//! assert_eq!(pt.ranking.order()[0], TupleId(2));
//!
//! // PRFe(0.9): the smooth member of the family — same entry point,
//! // different semantics; `Auto` picks the algorithm and numeric mode.
//! let prfe = RankQuery::prfe(0.9).run(&db)?;
//! assert_eq!(prfe.ranking.order()[0], TupleId(1));
//! assert_eq!(prfe.report.algorithm, Algorithm::ExactGf); // small n → exact
//!
//! // The identical query runs unchanged on correlated data.
//! let tree = AndXorTree::from_independent(&db);
//! let correlated = RankQuery::prfe(0.9).run(&tree)?;
//! assert_eq!(prfe.ranking.order(), correlated.ranking.order());
//! # Ok::<(), prf::core::query::QueryError>(())
//! ```
//!
//! ## Migrating from the free functions
//!
//! The per-algorithm free functions remain available (they are the engine's
//! kernels), but new code should prefer the builder:
//!
//! | legacy free function | `RankQuery` equivalent |
//! |---|---|
//! | `prf_rank(&db, &ω)` / `prf_rank_tree(&tree, &ω)` | `RankQuery::prf(ω).run(&db)?` |
//! | `prf_rank_tree_parallel(&tree, &ω, t)` | `RankQuery::prf(ω).parallel(t).run(&tree)?` |
//! | `prfe_rank(&db, α)` / `prfe_rank_tree(&tree, α)` | `RankQuery::prfe_complex(α).algorithm(Algorithm::ExactGf).run(…)?` |
//! | `prfe_rank_log(&db, α)` | `RankQuery::prfe(α).algorithm(Algorithm::LogDomain).run(&db)?` |
//! | `prfe_rank_scaled(&db, α)` / `prfe_rank_tree_scaled` | `RankQuery::prfe_complex(α).algorithm(Algorithm::Scaled).run(…)?` |
//! | `pt_values` / `pt_ranking` / `pt_topk` (+ `_tree`) | `RankQuery::pt(h).run(…)?` |
//! | `urank_topk(&db, k)` / `urank_topk_tree` | `RankQuery::urank(k).run(…)?.ranking` |
//! | `utop_topk(&db, k)` | `RankQuery::utop(k).run(&db)?.set` |
//! | `expected_ranks` / `erank_ranking` (+ `_tree`) | `RankQuery::erank().run(…)?` |
//! | `expected_scores` / `escore_ranking` (+ `_tree`) | `RankQuery::escore().run(…)?` |
//! | `consensus_topk(&db, k)` | `RankQuery::consensus(k).top_k(k).run(&db)?` |
//! | `consensus_topk_weighted(&db, &w)` | `RankQuery::prf(TabulatedWeight::from_real(&w)).run(&db)?` |
//! | `approximate_weights(…)` + `ExpMixture::ranking_*` | `RankQuery::pt(h).algorithm(Algorithm::DftApprox(cfg)).run(…)?` |
//!
//! Each [`RankedResult`](core::query::RankedResult) carries the per-tuple
//! values, the [`Ranking`](core::topk::Ranking), the set answer for U-Top,
//! and an [`EvalReport`](core::query::EvalReport) stating which algorithm
//! and numeric mode actually ran, with timings.
//!
//! ## Crate map
//!
//! | module (re-export) | crate | contents |
//! |---|---|---|
//! | [`numeric`] | `prf-numeric` | complex/dual/scaled scalars, FFT, polynomials |
//! | [`pdb`] | `prf-pdb` | tuples, possible worlds, and/xor trees, attribute uncertainty |
//! | [`core`] | `prf-core` | the unified `RankQuery` engine + PRF/PRFω/PRFe algorithms; `core::live` adds mutable relations with incrementally patched plans |
//! | [`baselines`] | `prf-baselines` | U-Top, U-Rank, PT(h), E-Rank, E-Score, k-selection, consensus |
//! | [`approx`] | `prf-approx` | DFT-based PRFe mixtures, learning α / ω |
//! | [`graphical`] | `prf-graphical` | Markov networks, junction trees, §9 algorithms, `NetworkRelation` |
//! | [`metrics`] | `prf-metrics` | normalized Kendall top-k distance and friends |
//! | [`datasets`] | `prf-datasets` | simulated IIP, Syn-IND, Syn-XOR/LOW/MED/HIGH |
//! | [`serve`] | `prf-serve` | concurrent `RankServer`: deadline batching, flush worker pool, prepared relations, admission control, live mutations + standing queries |
//!
//! The experiment harness that regenerates every table and figure of the
//! paper lives in the `prf-bench` crate (`cargo run --release -p prf-bench
//! --bin experiments -- all`); EXPERIMENTS.md records paper-vs-measured
//! results.

#![deny(missing_docs)]

pub use prf_approx as approx;
pub use prf_baselines as baselines;
pub use prf_core as core;
pub use prf_datasets as datasets;
pub use prf_graphical as graphical;
pub use prf_metrics as metrics;
pub use prf_numeric as numeric;
pub use prf_pdb as pdb;
pub use prf_serve as serve;

/// The most commonly used items, for glob import:
/// `use prf::prelude::*;`.
pub mod prelude {
    pub use prf_approx::{approximate_weights, DftApproxConfig, ExpMixture};
    pub use prf_core::query::{
        Algorithm, BatchCost, BatchPlan, BatchRoute, CancelToken, CorrelationClass, EvalReport,
        FlushTrigger, NumericMode, PreparedRelation, PreparedState, ProbabilisticRelation,
        QueryBatch, QueryError, QueryKey, RankQuery, RankedResult, Semantics, ServeCost, TopSet,
        Values,
    };
    pub use prf_core::{
        effective_walk_threads, prf_rank, prf_rank_tree, prfe_rank, prfe_rank_log, prfe_rank_tree,
        Ranking, ValueOrder, WeightFunction, PARALLEL_MIN_SHARD_TUPLES,
    };
    pub use prf_core::{
        ConstantWeight, ExponentialWeight, LinearWeight, PositionWeight, ScoreWeight, StepWeight,
        TabulatedWeight,
    };
    pub use prf_core::{LiveApply, LiveRelation, MutableRelation, Mutation, MutationEffect};
    pub use prf_core::{ShardError, ShardHandle, ShardPool, ShardedRelation};
    pub use prf_graphical::NetworkRelation;
    pub use prf_metrics::kendall_topk;
    pub use prf_numeric::Complex;
    pub use prf_pdb::{AndXorTree, IndependentDb, NodeKind, TreeBuilder, Tuple, TupleId};
    pub use prf_serve::{
        MutationHandle, Priority, RankServer, RankingDelta, RelationId, ResponseHandle,
        ServeConfig, ServeMetrics, SubmitOptions, SubscriptionHandle,
    };
}
