//! # prf — A Unified Approach to Ranking in Probabilistic Databases
//!
//! A complete Rust implementation of Li, Saha & Deshpande's VLDB 2009 paper
//! *“A Unified Approach to Ranking in Probabilistic Databases”*
//! (arXiv:0904.1366): the **parameterized ranking function** (PRF) framework
//! and its two workhorse families **PRFω(h)** and **PRFe(α)**, together with
//! every substrate the paper builds on — probabilistic and/xor trees,
//! generating-function algorithms, DFT-based PRFe-mixture approximation,
//! preference learning, prior ranking semantics, junction-tree inference,
//! top-k distance metrics and seeded dataset generators.
//!
//! ## Thirty-second tour
//!
//! ```
//! use prf::pdb::IndependentDb;
//! use prf::core::{prfe_rank_log, prf_rank, StepWeight, Ranking, ValueOrder};
//!
//! // A probabilistic relation: (score, existence probability).
//! let db = IndependentDb::from_pairs([
//!     (100.0, 0.5), // great score, coin-flip existence
//!     (50.0, 1.0),  // mediocre but certain
//!     (80.0, 0.8),
//! ]).unwrap();
//!
//! // PT(2): rank by the probability of making the top 2.
//! let pt = prf_rank(&db, &StepWeight { h: 2 });
//! let pt_rank = Ranking::from_values(&pt, ValueOrder::RealPart);
//!
//! // PRFe(0.9): the smooth, O(n log n) member of the family.
//! let prfe = Ranking::from_keys(&prfe_rank_log(&db, 0.9));
//!
//! assert_eq!(pt_rank.order().len(), 3);
//! assert_eq!(prfe.order().len(), 3);
//! ```
//!
//! ## Crate map
//!
//! | module (re-export) | crate | contents |
//! |---|---|---|
//! | [`numeric`] | `prf-numeric` | complex/dual/scaled scalars, FFT, polynomials |
//! | [`pdb`] | `prf-pdb` | tuples, possible worlds, and/xor trees, attribute uncertainty |
//! | [`core`] | `prf-core` | PRF/PRFω/PRFe algorithms (the paper's contribution) |
//! | [`baselines`] | `prf-baselines` | U-Top, U-Rank, PT(h), E-Rank, E-Score, k-selection, consensus |
//! | [`approx`] | `prf-approx` | DFT-based PRFe mixtures, learning α / ω |
//! | [`graphical`] | `prf-graphical` | Markov networks, junction trees, §9 algorithms |
//! | [`metrics`] | `prf-metrics` | normalized Kendall top-k distance and friends |
//! | [`datasets`] | `prf-datasets` | simulated IIP, Syn-IND, Syn-XOR/LOW/MED/HIGH |
//!
//! The experiment harness that regenerates every table and figure of the
//! paper lives in the `prf-bench` crate (`cargo run --release -p prf-bench
//! --bin experiments -- all`); EXPERIMENTS.md records paper-vs-measured
//! results.

#![deny(missing_docs)]

pub use prf_approx as approx;
pub use prf_baselines as baselines;
pub use prf_core as core;
pub use prf_datasets as datasets;
pub use prf_graphical as graphical;
pub use prf_metrics as metrics;
pub use prf_numeric as numeric;
pub use prf_pdb as pdb;

/// The most commonly used items, for glob import:
/// `use prf::prelude::*;`.
pub mod prelude {
    pub use prf_approx::{approximate_weights, DftApproxConfig, ExpMixture};
    pub use prf_core::{
        prf_rank, prf_rank_tree, prfe_rank, prfe_rank_log, prfe_rank_tree, Ranking, ValueOrder,
        WeightFunction,
    };
    pub use prf_core::{
        ConstantWeight, ExponentialWeight, LinearWeight, PositionWeight, ScoreWeight, StepWeight,
        TabulatedWeight,
    };
    pub use prf_metrics::kendall_topk;
    pub use prf_numeric::Complex;
    pub use prf_pdb::{AndXorTree, IndependentDb, NodeKind, TreeBuilder, Tuple, TupleId};
}
