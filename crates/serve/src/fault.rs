//! Deterministic fault injection for the serving layer.
//!
//! A [`FaultPlan`] names **sites** in the flush path and arms each with a
//! [`FaultKind`]. The server consults the plan (via
//! [`crate::RankServer::inject_faults`]) at seven fixed sites:
//!
//! | site | where it fires |
//! |---|---|
//! | `"admit"` | in `submit`/`apply`/`subscribe`, before admission |
//! | `"flush-take"` | on a worker, right after it pops a flush |
//! | `"apply"` | on a worker, before each mutation is applied |
//! | `"cache"` | on a worker, before the result cache is purged/consulted |
//! | `"eval"` | on a worker, before the flush's batch evaluates |
//! | `"deliver"` | on a worker, before answers are delivered |
//! | `"worker"` | on a worker, before it starts a flush (kill point) |
//!
//! Tests can additionally route the same plan through hooks *outside* the
//! server — e.g. a [`FaultPlan::consult`] call from a closure armed on
//! `LiveRelation::arm_mutation_probe` turns any custom site name (such as
//! `"mutate"`, between a live relation's plan splice and its key-cache
//! patch) into part of the same seeded schedule.
//!
//! Injections are **one-shot by default** ([`FaultPlan::once`]) with an
//! optional skip count ([`FaultPlan::after`]), so a seeded chaos schedule
//! fires each fault at a reproducible point. The module is compiled only
//! under `cfg(any(test, feature = "chaos"))`: release servers carry no
//! injection hooks unless the `chaos` feature is enabled explicitly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What an armed injection does when its site is reached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic on the spot (`panic!("injected fault at ...")`). On a worker
    /// this exercises panic isolation: the flush's unstarted entries are
    /// re-queued and the panic is counted, never propagated.
    Panic,
    /// Sleep for the given duration — long delays at `"eval"` make a
    /// worker *stuck*, exercising supervision's compensating respawn.
    Delay(Duration),
    /// Force the call to shed with
    /// [`QueryError::Overloaded`](prf_core::query::QueryError::Overloaded)
    /// (meaningful at `"admit"`; ignored elsewhere).
    Overloaded,
    /// Make the worker thread exit without unwinding (meaningful at
    /// `"worker"`; ignored elsewhere) — exercises dead-worker detection
    /// and respawn.
    KillWorker,
}

/// One armed injection: fires `times` times at `site`, after letting
/// `skip` earlier visits pass.
#[derive(Debug)]
struct Injection {
    site: &'static str,
    kind: FaultKind,
    skip: u64,
    remaining: u64,
}

#[derive(Debug, Default)]
struct PlanInner {
    injections: Mutex<Vec<Injection>>,
    fired: AtomicU64,
}

/// A shared, mutable schedule of injected faults (cheaply cloneable; all
/// clones share the same state, so a test keeps one clone to read
/// [`FaultPlan::fired`] after handing another to the server).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl FaultPlan {
    /// An empty plan: no site fires.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arms `site` to fire `kind` exactly once, on its next visit.
    pub fn once(self, site: &'static str, kind: FaultKind) -> Self {
        self.arm(site, kind, 0, 1);
        self
    }

    /// Arms `site` to fire `kind` once, after letting `skip` visits pass —
    /// the knob that places a fault at a reproducible depth of a seeded
    /// schedule.
    pub fn after(self, site: &'static str, kind: FaultKind, skip: u64) -> Self {
        self.arm(site, kind, skip, 1);
        self
    }

    /// Arms `site` to fire `kind` on its next `times` visits.
    pub fn times(self, site: &'static str, kind: FaultKind, times: u64) -> Self {
        self.arm(site, kind, 0, times);
        self
    }

    fn arm(&self, site: &'static str, kind: FaultKind, skip: u64, times: u64) {
        self.lock().push(Injection {
            site,
            kind,
            skip,
            remaining: times,
        });
    }

    /// How many injections have fired so far (all sites, all kinds).
    pub fn fired(&self) -> u64 {
        self.inner.fired.load(Ordering::Acquire)
    }

    /// `true` once every armed injection has fired.
    pub fn exhausted(&self) -> bool {
        self.lock().iter().all(|i| i.remaining == 0)
    }

    /// Consults the plan at a caller-defined site, for injection points
    /// *outside* the server's seven built-in ones: returns the armed
    /// [`FaultKind`] when an injection fires there, and leaves acting on
    /// it (panicking, sleeping, …) to the caller. This is how chaos tests
    /// extend a seeded schedule into foreign hooks — e.g. a closure armed
    /// via `LiveRelation::arm_mutation_probe` consulting a `"mutate"` site
    /// and panicking mid-apply when the plan says to.
    pub fn consult(&self, site: &str) -> Option<FaultKind> {
        self.fire(site)
    }

    /// Consults the plan at `site`: decrements skip counts, and returns the
    /// kind to act on when an armed injection fires. Called by the server;
    /// the *action* (panicking, sleeping, …) happens at the call site, off
    /// this lock.
    pub(crate) fn fire(&self, site: &str) -> Option<FaultKind> {
        let mut injections = self.lock();
        for inj in injections.iter_mut() {
            if inj.site != site || inj.remaining == 0 {
                continue;
            }
            if inj.skip > 0 {
                inj.skip -= 1;
                continue;
            }
            inj.remaining -= 1;
            self.inner.fired.fetch_add(1, Ordering::Release);
            return Some(inj.kind.clone());
        }
        None
    }

    #[allow(clippy::disallowed_methods)] // the one blessed raw lock: recovery wants no counter here
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Injection>> {
        self.inner
            .injections
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn once_fires_exactly_once() {
        let plan = FaultPlan::new().once("eval", FaultKind::Panic);
        assert_eq!(plan.fire("apply"), None);
        assert_eq!(plan.fire("eval"), Some(FaultKind::Panic));
        assert_eq!(plan.fire("eval"), None);
        assert_eq!(plan.fired(), 1);
        assert!(plan.exhausted());
    }

    #[test]
    fn after_skips_early_visits() {
        let plan = FaultPlan::new().after("worker", FaultKind::KillWorker, 2);
        assert_eq!(plan.fire("worker"), None);
        assert_eq!(plan.fire("worker"), None);
        assert_eq!(plan.fire("worker"), Some(FaultKind::KillWorker));
        assert_eq!(plan.fire("worker"), None);
    }

    #[test]
    fn clones_share_state() {
        let plan = FaultPlan::new().times("deliver", FaultKind::Delay(Duration::ZERO), 2);
        let server_side = plan.clone();
        assert!(server_side.fire("deliver").is_some());
        assert!(server_side.fire("deliver").is_some());
        assert!(server_side.fire("deliver").is_none());
        assert_eq!(plan.fired(), 2);
    }
}
