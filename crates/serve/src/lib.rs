//! Deadline-batched serving layer over the unified query engine.
//!
//! The paper's framework makes every PRF-family semantics a read-off of one
//! generating-function walk, and [`prf_core::query::QueryBatch`] exploits
//! that: N queries against one relation cost roughly one walk. What the
//! batch layer cannot do is *collect* those N queries — a serving workload
//! delivers them one at a time, from many client threads, against several
//! relations. This crate adds the missing front end:
//!
//! * a [`RankServer`] owns registered [`ProbabilisticRelation`]s and
//!   accepts [`RankQuery`] submissions concurrently from any number of
//!   client threads;
//! * pending queries are **grouped by relation** and flushed into one
//!   `QueryBatch` when either the oldest query's **deadline**
//!   ([`ServeConfig::max_delay`]) or the **maximum batch size**
//!   ([`ServeConfig::max_batch`]) is hit — or immediately at shutdown;
//! * every submission returns a [`ResponseHandle`] (blocking
//!   [`ResponseHandle::recv`] plus non-blocking [`ResponseHandle::try_recv`])
//!   carrying the [`prf_core::query::RankedResult`] or the per-query
//!   [`prf_core::query::QueryError`] — one bad query never poisons its
//!   flush (the batch runs with per-entry error isolation);
//! * each answered query's report records its serving provenance
//!   ([`prf_core::query::ServeCost`]): queue wait, admission-time queue
//!   depth, the relation's cumulative shed count, plus which
//!   [`prf_core::query::FlushTrigger`] (`Deadline | SizeLimit | Shutdown`)
//!   fired the flush that served it;
//! * flushes execute on a **worker pool** ([`ServeConfig::workers`]) with
//!   per-relation FIFO ordering — a slow relation's walk occupies one
//!   worker while every other relation keeps flushing on the rest;
//! * registration **prepares** each relation
//!   ([`prf_core::query::PreparedRelation`]): the score sort and compiled
//!   evaluation plan are built once and reused by every flush;
//! * queues can be **bounded** ([`ServeConfig::max_pending`]) — admission
//!   control: [`RankServer::submit`] blocks at the bound (backpressure)
//!   and [`RankServer::try_submit`] sheds with
//!   [`prf_core::query::QueryError::Overloaded`]; serving counters are
//!   visible through [`RankServer::metrics`];
//! * **live relations** ([`RankServer::register_live`]) accept
//!   insert/delete/reweight [`Mutation`]s through [`RankServer::apply`] —
//!   applied on the flush pipeline, serialized with query evaluation, and
//!   acknowledged through a [`MutationHandle`];
//! * **standing queries** ([`RankServer::subscribe`]) stream a
//!   [`RankingDelta`] (entered / left / moved tuples plus the new ranking)
//!   to their [`SubscriptionHandle`] after every mutated flush, starting
//!   from an initial snapshot — dropping the handle unsubscribes
//!   immediately;
//! * the serving layer is **fault tolerant**: a panic anywhere in a flush
//!   is contained to the flush (undelivered entries re-queue; the panicking
//!   entry alone resolves to [`prf_core::query::QueryError::Internal`]), a
//!   panic while applying a mutation repairs the live relation's prepared
//!   state before anything is served from it, poisoned locks are recovered
//!   and counted, and a **supervisor** thread respawns dead flush workers
//!   and compensates stuck ones ([`ServeConfig::stuck_after`]);
//! * submissions can carry **per-query deadlines and priority classes**
//!   ([`RankServer::submit_with`] + [`SubmitOptions`]): an expired query is
//!   shed with [`prf_core::query::QueryError::TimedOut`] *without being
//!   evaluated*, in-flight walks abandon it at the next cooperative
//!   cancellation check, dropping its [`ResponseHandle`] cancels the same
//!   way, and [`Priority::Bulk`] traffic waits on its own longer cadence
//!   ([`ServeConfig::bulk_delay`]) instead of dictating the latency class's;
//! * each relation carries a **result cache**: queries that canonicalize
//!   to a [`prf_core::query::QueryKey`] are remembered per relation
//!   generation and served on repeat *without joining a walk*
//!   ([`prf_core::query::ServeCost::served_from_cache`] marks them);
//!   entries are consulted generation-exactly — any mutation-applying
//!   flush invalidates them, so a mutate-then-query sequence can never be
//!   served stale — and identical untracked queries inside one flush
//!   coalesce onto a single walk slot
//!   ([`ServeConfig::cache_enabled`] / [`ServeConfig::cache_entries`]);
//! * a deterministic **fault-injection harness** (`FaultPlan`, compiled
//!   under `cfg(any(test, feature = "chaos"))`) arms panics, delays,
//!   overloads, and worker kills at seven named sites of the flush path,
//!   so chaos tests can prove exactly-once handle resolution under seeded
//!   fault schedules.
//!
//! The implementation is std-only — client threads, one deadline
//! scheduler thread, one supervisor thread, and N flush workers
//! coordinating through a `Mutex`/`Condvar` pair, with per-query `mpsc`
//! channels delivering answers.
//!
//! ```
//! use prf_core::query::{RankQuery, Semantics};
//! use prf_pdb::IndependentDb;
//! use prf_serve::{RankServer, ServeConfig};
//! use std::time::Duration;
//!
//! let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_millis(2)));
//! let db = IndependentDb::from_pairs([(100.0, 0.5), (50.0, 1.0), (80.0, 0.8)])?;
//! let rel = server.register("readings", db);
//!
//! // Submissions are non-blocking; many client threads may submit at once.
//! let pt = server.submit(rel, RankQuery::pt(2))?;
//! let prfe = server.submit(rel, RankQuery::prfe(0.9))?;
//!
//! // Both land in the same flush and share one score-order walk.
//! let pt = pt.recv()?;
//! let prfe = prfe.recv()?;
//! assert_eq!(pt.ranking.len(), 3);
//! let serve = pt.report.serve.expect("served answers carry provenance");
//! assert!(serve.queue_seconds >= 0.0);
//! server.shutdown(); // drains in-flight queries; Drop would do the same
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

#[cfg(any(test, feature = "chaos"))]
pub mod fault;
mod handle;
mod server;
mod supervisor;

#[cfg(any(test, feature = "chaos"))]
pub use fault::{FaultKind, FaultPlan};
pub use handle::{MutationHandle, QueryId, RankingDelta, ResponseHandle, SubscriptionHandle};
pub use server::{
    Priority, RankServer, RelationId, ServeConfig, ServeMetrics, SharedRelation, SubmitOptions,
};

// Re-exported so serving code can name its whole vocabulary from one crate.
pub use prf_core::live::{LiveApply, LiveRelation, MutableRelation, Mutation, MutationEffect};
pub use prf_core::query::{
    FlushTrigger, PreparedRelation, ProbabilisticRelation, QueryError, QueryKey, RankQuery,
    RankedResult, Semantics, ServeCost,
};
pub use prf_core::TupleId;
