//! Flush-worker supervision: heartbeats, dead/stuck detection, respawn.
//!
//! Every flush worker owns a [`WorkerCtl`]: a heartbeat counter it bumps
//! each scheduling round, a `busy` flag set around flush execution, and an
//! `alive` flag cleared by a drop sentinel when the thread exits for *any*
//! reason. The supervisor thread ticks a few times per
//! [`ServeConfig::stuck_after`](crate::ServeConfig::stuck_after) window and
//! compares:
//!
//! - **dead** (`alive == false` outside shutdown): the thread exited —
//!   an injected [`FaultKind::KillWorker`](crate::FaultKind) or an escaped
//!   double panic. The supervisor joins the corpse and spawns a
//!   replacement.
//! - **stuck** (`busy == true` and the heartbeat unchanged for longer than
//!   `stuck_after`): the worker is inside a walk that outlived its budget.
//!   `std` threads cannot be killed, so the supervisor spawns a
//!   *compensating* worker to restore pool throughput and marks the stuck
//!   one **superseded** — if it ever finishes its flush, it exits instead
//!   of rejoining the pool, keeping the worker count at the configured
//!   level.
//!
//! Respawns are counted in
//! [`ServeMetrics::workers_respawned`](crate::ServeMetrics::workers_respawned).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::server::{lock_recover, worker_loop, Shared};

/// Per-worker control block, shared between the worker thread (writer) and
/// the supervisor (reader).
pub(crate) struct WorkerCtl {
    /// Bumped by the worker every scheduling round and around each flush —
    /// a counter that stalls exactly when the worker does.
    pub(crate) beats: AtomicU64,
    /// Set while the worker executes a flush (an idle worker parked on the
    /// condvar is quiet but not stuck).
    pub(crate) busy: AtomicBool,
    /// Cleared by [`AliveSentinel`] when the thread exits, however it
    /// exits.
    pub(crate) alive: AtomicBool,
    /// Set by the supervisor once a compensating worker was spawned for
    /// this (stuck) one; the worker exits at its next scheduling round.
    pub(crate) superseded: AtomicBool,
}

impl WorkerCtl {
    fn new() -> Self {
        WorkerCtl {
            beats: AtomicU64::new(0),
            busy: AtomicBool::new(false),
            alive: AtomicBool::new(true),
            superseded: AtomicBool::new(false),
        }
    }
}

/// Clears `alive` when dropped — the worker's death certificate, filed on
/// normal exit, supersession, an injected kill, and unwinds alike.
struct AliveSentinel(Arc<WorkerCtl>);

impl Drop for AliveSentinel {
    fn drop(&mut self) {
        self.0.alive.store(false, Ordering::Release);
    }
}

/// The supervisor's view of one spawned worker.
pub(crate) struct WorkerEntry {
    ctl: Arc<WorkerCtl>,
    handle: Option<JoinHandle<()>>,
    /// The heartbeat value last observed, and when it last changed.
    last_beat: u64,
    last_progress: Instant,
}

/// The live worker pool: spawned threads plus their control blocks. Owned
/// jointly by the [`RankServer`](crate::RankServer) (for shutdown joins)
/// and the supervisor thread (for respawns).
pub(crate) struct WorkerTable {
    entries: Mutex<Vec<WorkerEntry>>,
    next_id: AtomicUsize,
}

impl WorkerTable {
    pub(crate) fn new() -> Self {
        WorkerTable {
            entries: Mutex::new(Vec::new()),
            next_id: AtomicUsize::new(0),
        }
    }

    /// Spawns a fresh worker thread and registers it.
    pub(crate) fn spawn(&self, shared: &Arc<Shared>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let ctl = Arc::new(WorkerCtl::new());
        let handle = {
            let shared = Arc::clone(shared);
            let ctl = Arc::clone(&ctl);
            std::thread::Builder::new()
                .name(format!("prf-serve-worker-{id}"))
                .spawn(move || {
                    let _death_certificate = AliveSentinel(Arc::clone(&ctl));
                    worker_loop(&shared, &ctl);
                })
                .expect("spawning a flush worker thread")
        };
        lock_recover(&self.entries, shared.poisoned()).push(WorkerEntry {
            ctl,
            handle: Some(handle),
            last_beat: 0,
            last_progress: Instant::now(),
        });
    }

    /// Joins every worker at shutdown. A worker that is both *superseded*
    /// and still mid-flush is detached instead of joined — its walk cannot
    /// be interrupted and a compensating worker already replaced it, so
    /// shutdown must not block on it.
    pub(crate) fn join_all(&self, shared: &Arc<Shared>) {
        let entries: Vec<WorkerEntry> = lock_recover(&self.entries, shared.poisoned())
            .drain(..)
            .collect();
        for mut entry in entries {
            let wedged = entry.ctl.superseded.load(Ordering::Acquire)
                && entry.ctl.alive.load(Ordering::Acquire)
                && entry.ctl.busy.load(Ordering::Acquire);
            if let Some(handle) = entry.handle.take() {
                if wedged {
                    drop(handle); // detach: the pool was already compensated
                } else {
                    let _ = handle.join();
                }
            }
        }
    }

    /// One supervision pass: join the dead (respawning non-superseded
    /// ones), spawn compensating workers for the stuck. Returns how many
    /// workers were (re)spawned.
    fn tick(&self, shared: &Arc<Shared>, stuck_after: Duration, stopping: bool) -> u64 {
        let now = Instant::now();
        let mut respawned = 0;
        let mut entries = lock_recover(&self.entries, shared.poisoned());
        let mut i = 0;
        while i < entries.len() {
            let entry = &mut entries[i];
            if !entry.ctl.alive.load(Ordering::Acquire) {
                let superseded = entry.ctl.superseded.load(Ordering::Acquire);
                if let Some(handle) = entry.handle.take() {
                    let _ = handle.join();
                }
                entries.remove(i);
                if !superseded && !stopping {
                    respawned += 1;
                }
                continue;
            }
            let beats = entry.ctl.beats.load(Ordering::Acquire);
            let busy = entry.ctl.busy.load(Ordering::Acquire);
            if beats != entry.last_beat || !busy {
                entry.last_beat = beats;
                entry.last_progress = now;
            } else if now.duration_since(entry.last_progress) > stuck_after
                && !entry.ctl.superseded.load(Ordering::Acquire)
                && !stopping
            {
                // Stuck mid-flush: compensate. The worker itself exits at
                // its next scheduling round (it checks `superseded`).
                entry.ctl.superseded.store(true, Ordering::Release);
                respawned += 1;
            }
            i += 1;
        }
        drop(entries);
        for _ in 0..respawned {
            self.spawn(shared);
        }
        respawned
    }
}

/// The supervisor thread: ticks until the pool stops, detecting dead and
/// stuck workers and restoring the pool. Woken early by the shared condvar
/// so shutdown never waits a full tick.
pub(crate) fn supervisor_loop(shared: &Arc<Shared>, table: &Arc<WorkerTable>) {
    let stuck_after = shared.stuck_after();
    let tick = (stuck_after / 8).clamp(Duration::from_millis(2), Duration::from_millis(250));
    let mut state = shared.lock();
    loop {
        if state.pool_stop {
            return;
        }
        state = shared.wait_timeout(state, tick);
        let stopping = state.pool_stop;
        drop(state);
        let respawned = table.tick(shared, stuck_after, stopping);
        if respawned > 0 {
            shared.count_respawned(respawned);
            shared.notify();
        }
        if stopping {
            return;
        }
        state = shared.lock();
    }
}
