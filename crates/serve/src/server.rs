//! The [`RankServer`]: concurrent submission, bounded per-relation queues,
//! the deadline scheduler, and the flush worker pool.
//!
//! # Architecture (v2)
//!
//! Three thread roles share one mutex-guarded [`State`]:
//!
//! - **Clients** call [`RankServer::submit`] / [`RankServer::try_submit`]:
//!   the query joins its relation's pending queue (bounded when
//!   [`ServeConfig::max_pending`] is set — `submit` then applies
//!   *backpressure* by blocking until space frees, `try_submit` *sheds*
//!   with [`QueryError::Overloaded`]). A submission that completes a size
//!   trigger — or arrives under a zero deadline — enqueues the flush
//!   itself, so the fast path hands work straight to a worker without a
//!   scheduler hop.
//! - The **scheduler** thread only computes deadlines: it sleeps until the
//!   earliest pending deadline, moves due queues onto the work queue, and
//!   never executes a flush itself.
//! - **Workers** (N = [`ServeConfig::workers`]) pop flushes off the work
//!   queue and evaluate them with the lock released. Per-relation FIFO is
//!   preserved by an `in_flight` latch: a relation's next flush is not
//!   enqueued until its previous one completed, so one relation's flushes
//!   never race each other — but a slow relation's walk occupies only one
//!   worker, and every other relation keeps flushing on the rest.
//!
//! Registration wraps each relation in a
//! [`PreparedRelation`](prf_core::query::PreparedRelation): the score sort
//! and compiled evaluation plan are built **once** and reused by every
//! flush, instead of being rebuilt per walk.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use prf_core::query::{
    FlushTrigger, PreparedRelation, ProbabilisticRelation, QueryBatch, QueryError, RankQuery,
    ServeCost,
};

use crate::handle::{Answer, QueryId, ResponseHandle};

/// A relation as the server owns it: shared, type-erased, and usable from
/// both client threads (registration) and the flush workers.
pub type SharedRelation = Arc<dyn ProbabilisticRelation + Send + Sync>;

/// Tuning knobs of a [`RankServer`].
///
/// The defaults (2 ms deadline, 64-query batches, 2 flush workers,
/// unbounded queues, serial walks) suit a latency-sensitive serving mix; a
/// zero [`ServeConfig::max_delay`] turns the server into an immediate
/// dispatcher that still batches whatever has accumulated since a worker
/// last took the queue.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub(crate) max_delay: Duration,
    pub(crate) max_batch: usize,
    pub(crate) threads: Option<usize>,
    pub(crate) workers: usize,
    pub(crate) max_pending: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_delay: Duration::from_millis(2),
            max_batch: 64,
            threads: None,
            workers: 2,
            max_pending: None,
        }
    }
}

impl ServeConfig {
    /// The default configuration (2 ms deadline, 64-query batches, 2 flush
    /// workers, unbounded queues).
    pub fn new() -> Self {
        ServeConfig::default()
    }

    /// How long the oldest pending query may wait before its relation's
    /// queue is flushed. Zero flushes on admission.
    pub fn max_delay(mut self, deadline: Duration) -> Self {
        self.max_delay = deadline;
        self
    }

    /// Queue size that triggers an immediate flush, regardless of the
    /// deadline (clamped to at least 1).
    pub fn max_batch(mut self, size: usize) -> Self {
        self.max_batch = size.max(1);
        self
    }

    /// Requests `threads` workers for each flush's shared walk (forwarded
    /// to [`QueryBatch::parallel`]; the engine degrades small walks to the
    /// serial route, so over-asking costs nothing).
    pub fn parallel(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Number of flush worker threads (clamped to at least 1). Flushes of
    /// *different* relations run concurrently across workers; flushes of
    /// the same relation stay FIFO.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Bounds every relation's pending queue to `cap` queries (clamped to
    /// at least 1) — the admission-control knob. At the bound,
    /// [`RankServer::submit`] blocks until a flush frees space
    /// (backpressure) and [`RankServer::try_submit`] sheds with
    /// [`QueryError::Overloaded`]. The default is unbounded.
    pub fn max_pending(mut self, cap: usize) -> Self {
        self.max_pending = Some(cap.max(1));
        self
    }
}

/// Server-local identifier of a registered relation, returned by
/// [`RankServer::register`] and presented with every submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RelationId(pub(crate) usize);

impl std::fmt::Display for RelationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rel{}", self.0)
    }
}

/// A point-in-time snapshot of the server's serving counters, summed over
/// all registered relations (see [`RankServer::metrics`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Queries waiting in pending queues right now.
    pub pending: usize,
    /// Relations with a flush currently executing on a worker.
    pub in_flight: usize,
    /// Cumulative submissions shed with [`QueryError::Overloaded`].
    pub shed: u64,
    /// Cumulative completed flushes.
    pub flushes: u64,
    /// Cumulative queries answered through completed flushes.
    pub flushed_queries: u64,
}

/// One submission waiting in a relation's queue.
struct Pending {
    query: RankQuery,
    submitted_at: Instant,
    /// Queue depth at admission, including this query — the backpressure
    /// signal stamped into [`ServeCost::queue_depth`].
    depth_at_admit: usize,
    tx: mpsc::Sender<Answer>,
}

/// A registered relation plus its pending queue and serving counters.
struct Slot {
    name: String,
    rel: SharedRelation,
    queue: Vec<Pending>,
    /// `true` while a flush of this relation sits on the work queue or
    /// executes on a worker — the per-relation FIFO latch.
    in_flight: bool,
    /// Cumulative submissions shed from this slot's bounded queue.
    shed: u64,
    /// Cumulative completed flushes of this slot.
    flushes: u64,
    /// Cumulative queries answered through this slot's completed flushes.
    flushed_queries: u64,
}

/// One flush's worth of work, taken from a slot under the lock and
/// executed by a worker outside it.
struct FlushWork {
    slot: usize,
    rel: SharedRelation,
    pending: Vec<Pending>,
    trigger: FlushTrigger,
    /// Snapshot of the slot's shed counter when the flush was taken.
    shed: u64,
}

/// Mutex-guarded server state shared between clients, the scheduler, and
/// the workers.
struct State {
    slots: Vec<Slot>,
    /// Flushes ready for a worker, in take order.
    work: VecDeque<FlushWork>,
    /// Set by [`RankServer::shutdown`] (or a failsafe): rejects new
    /// submissions; the scheduler then drains and stops the pool.
    shutdown: bool,
    /// Set by the scheduler once the drain completed (or by a failsafe):
    /// idle workers exit.
    pool_stop: bool,
}

struct Shared {
    config: ServeConfig,
    state: Mutex<State>,
    wake: Condvar,
}

impl Shared {
    /// Locks the state, recovering from poisoning — a panicking client
    /// thread must not wedge the scheduler or the workers (or vice versa).
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        self.wake
            .wait(guard)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn wait_timeout<'a>(
        &self,
        guard: MutexGuard<'a, State>,
        timeout: Duration,
    ) -> MutexGuard<'a, State> {
        self.wake
            .wait_timeout(guard, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .0
    }
}

/// Moves `slot`'s queue onto the work queue as one flush (setting the FIFO
/// latch). Callers have checked the trigger and the latch.
fn take_flush(state: &mut State, slot_idx: usize, trigger: FlushTrigger) {
    let slot = &mut state.slots[slot_idx];
    debug_assert!(!slot.in_flight && !slot.queue.is_empty());
    slot.in_flight = true;
    let work = FlushWork {
        slot: slot_idx,
        rel: Arc::clone(&slot.rel),
        pending: std::mem::take(&mut slot.queue),
        trigger,
        shed: slot.shed,
    };
    state.work.push_back(work);
}

/// A concurrent, deadline-batched front end over registered relations: see
/// the [crate docs](crate) for the architecture and a usage example.
///
/// The server is `Sync` — share it across client threads by reference
/// (e.g. `std::thread::scope`) or in an `Arc`. Dropping it shuts it down
/// and drains in-flight queries.
pub struct RankServer {
    shared: Arc<Shared>,
    scheduler: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    next_query: AtomicU64,
}

impl RankServer {
    /// Starts a server — spawning its scheduler thread and
    /// [`ServeConfig::workers`] flush workers — with the given
    /// configuration.
    pub fn new(config: ServeConfig) -> Self {
        let worker_count = config.workers;
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(State {
                slots: Vec::new(),
                work: VecDeque::new(),
                shutdown: false,
                pool_stop: false,
            }),
            wake: Condvar::new(),
        });
        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("prf-serve-scheduler".into())
                .spawn(move || {
                    let _failsafe = Failsafe(&shared);
                    scheduler_loop(&shared);
                })
                .expect("spawning the scheduler thread")
        };
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("prf-serve-worker-{i}"))
                    .spawn(move || {
                        let _failsafe = Failsafe(&shared);
                        worker_loop(&shared);
                    })
                    .expect("spawning a flush worker thread")
            })
            .collect();
        RankServer {
            shared,
            scheduler: Mutex::new(Some(scheduler)),
            workers: Mutex::new(workers),
            next_query: AtomicU64::new(0),
        }
    }

    /// Registers a relation under `name`, transferring ownership to the
    /// server. Registration **prepares** the relation — builds its score
    /// sort and evaluation plan once, so every later flush skips them.
    /// Relations may be registered at any time, including while other
    /// threads are already submitting against earlier ones.
    pub fn register(
        &self,
        name: impl Into<String>,
        rel: impl ProbabilisticRelation + Send + Sync + 'static,
    ) -> RelationId {
        self.register_shared(name, Arc::new(rel))
    }

    /// Registers an already-shared relation (the caller keeps its own
    /// `Arc` for direct queries). Prepares it like [`RankServer::register`].
    pub fn register_shared(&self, name: impl Into<String>, rel: SharedRelation) -> RelationId {
        let prepared: SharedRelation = Arc::new(PreparedRelation::new(rel));
        let mut state = self.shared.lock();
        state.slots.push(Slot {
            name: name.into(),
            rel: prepared,
            queue: Vec::new(),
            in_flight: false,
            shed: 0,
            flushes: 0,
            flushed_queries: 0,
        });
        RelationId(state.slots.len() - 1)
    }

    /// The registered name of a relation.
    pub fn relation_name(&self, relation: RelationId) -> Option<String> {
        self.shared
            .lock()
            .slots
            .get(relation.0)
            .map(|s| s.name.clone())
    }

    /// Submits a query against a registered relation. Never blocks on
    /// evaluation: the query joins the relation's pending queue and the
    /// returned [`ResponseHandle`] resolves when a flush answers it. When
    /// the queue is bounded ([`ServeConfig::max_pending`]) and full, the
    /// call **blocks until a flush frees space** — backpressure, not
    /// unbounded growth; use [`RankServer::try_submit`] to shed instead.
    ///
    /// Errors immediately with [`QueryError::Shutdown`] after
    /// [`RankServer::shutdown`] (including while blocked on a full queue),
    /// and with [`QueryError::InvalidParameter`] for a [`RelationId`] this
    /// server never issued. Per-query evaluation errors (incompatible
    /// algorithm, no set answer, …) are *not* reported here — they resolve
    /// through the handle, leaving the rest of the flush unharmed.
    pub fn submit(
        &self,
        relation: RelationId,
        query: RankQuery,
    ) -> Result<ResponseHandle, QueryError> {
        self.admit(relation, query, true)
    }

    /// Like [`RankServer::submit`], but **never blocks**: a full bounded
    /// queue sheds the query immediately with [`QueryError::Overloaded`]
    /// (counted in [`ServeCost::shed`] / [`ServeMetrics::shed`]). With
    /// unbounded queues it is identical to `submit`.
    pub fn try_submit(
        &self,
        relation: RelationId,
        query: RankQuery,
    ) -> Result<ResponseHandle, QueryError> {
        self.admit(relation, query, false)
    }

    fn admit(
        &self,
        relation: RelationId,
        query: RankQuery,
        block: bool,
    ) -> Result<ResponseHandle, QueryError> {
        let (tx, rx) = mpsc::channel();
        let id = QueryId(self.next_query.fetch_add(1, Ordering::Relaxed));
        let mut state = self.shared.lock();
        loop {
            if state.shutdown {
                return Err(QueryError::Shutdown);
            }
            let slot = state.slots.get_mut(relation.0).ok_or_else(|| {
                QueryError::InvalidParameter(format!("unknown relation {relation}"))
            })?;
            match self.shared.config.max_pending {
                Some(cap) if slot.queue.len() >= cap => {
                    if !block {
                        slot.shed += 1;
                        return Err(QueryError::Overloaded);
                    }
                    // Backpressure: wait for a worker to take the queue
                    // (or for shutdown). Spurious wake-ups just re-check.
                    state = self.shared.wait(state);
                }
                _ => break,
            }
        }
        let slot = &mut state.slots[relation.0];
        slot.queue.push(Pending {
            query,
            submitted_at: Instant::now(),
            depth_at_admit: slot.queue.len() + 1,
            tx,
        });
        // Fast path: a submission that completes a trigger enqueues the
        // flush itself — no scheduler hop between admission and a worker.
        // A latched relation leaves the re-check to its worker's
        // completion (which wakes the scheduler).
        if !slot.in_flight {
            if slot.queue.len() >= self.shared.config.max_batch {
                take_flush(&mut state, relation.0, FlushTrigger::SizeLimit);
            } else if self.shared.config.max_delay.is_zero() {
                take_flush(&mut state, relation.0, FlushTrigger::Deadline);
            }
        }
        drop(state);
        // Wake a worker (flush enqueued) or the scheduler (deadline
        // bookkeeping) — one condvar serves both roles.
        self.shared.wake.notify_all();
        Ok(ResponseHandle::new(id, rx))
    }

    /// Number of queries currently waiting in the pending queues (not
    /// counting flushes already handed to workers).
    pub fn pending(&self) -> usize {
        self.shared.lock().slots.iter().map(|s| s.queue.len()).sum()
    }

    /// A point-in-time snapshot of the serving counters, summed over all
    /// registered relations.
    pub fn metrics(&self) -> ServeMetrics {
        let state = self.shared.lock();
        let mut m = ServeMetrics::default();
        for slot in &state.slots {
            m.pending += slot.queue.len();
            m.in_flight += slot.in_flight as usize;
            m.shed += slot.shed;
            m.flushes += slot.flushes;
            m.flushed_queries += slot.flushed_queries;
        }
        m
    }

    /// Shuts the server down: rejects new submissions, lets the scheduler
    /// **drain** every pending queue through the worker pool — in-flight
    /// queries are evaluated (their provenance records
    /// [`FlushTrigger::Shutdown`]), not dropped — and joins every thread.
    /// Blocks until the drain completes. Idempotent; [`Drop`] calls it too.
    pub fn shutdown(&self) {
        self.shared.lock().shutdown = true;
        self.shared.wake.notify_all();
        let scheduler = self
            .scheduler
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(handle) = scheduler {
            // If the scheduler panicked instead of draining, its failsafe
            // already cleared the queues (handles resolve to `Shutdown`)
            // and stopped the pool; nothing to redo here.
            let _ = handle.join();
        }
        let workers: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for RankServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for RankServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.lock();
        f.debug_struct("RankServer")
            .field("relations", &state.slots.len())
            .field(
                "pending",
                &state.slots.iter().map(|s| s.queue.len()).sum::<usize>(),
            )
            .field("workers", &self.shared.config.workers)
            .field("shutdown", &state.shutdown)
            .finish()
    }
}

/// Failsafe for an abnormal scheduler/worker death (a panicking backend
/// kernel): on unwind, reject future submissions, stop the pool, release
/// every FIFO latch, and drop every queued sender so pending handles
/// resolve to `Shutdown` instead of blocking forever. After a normal exit
/// the drain already emptied the queues and set the flags, so the guard is
/// a no-op.
struct Failsafe<'a>(&'a Shared);

impl Drop for Failsafe<'_> {
    fn drop(&mut self) {
        let mut state = self.0.lock();
        state.shutdown = true;
        state.pool_stop = true;
        state.work.clear();
        for slot in state.slots.iter_mut() {
            slot.queue.clear();
            slot.in_flight = false;
        }
        drop(state);
        self.0.wake.notify_all();
    }
}

/// The scheduler: pure deadline bookkeeping. Sleeps until the earliest
/// pending deadline, moves due (and size-triggered) queues onto the work
/// queue, and hands them to the pool — it never evaluates a flush itself.
/// On shutdown it keeps feeding the pool until every queue is empty and
/// every flush completed, then stops the pool and exits.
fn scheduler_loop(shared: &Shared) {
    let config = &shared.config;
    let mut state = shared.lock();
    loop {
        if state.shutdown {
            // Drain: move every unlatched queue to the pool, then wait for
            // the latches to clear (workers re-notify on completion). A
            // latched relation's refilled queue becomes eligible once its
            // in-flight flush completes.
            loop {
                let mut fed = false;
                for i in 0..state.slots.len() {
                    if !state.slots[i].queue.is_empty() && !state.slots[i].in_flight {
                        take_flush(&mut state, i, FlushTrigger::Shutdown);
                        fed = true;
                    }
                }
                if fed {
                    shared.wake.notify_all();
                }
                let drained = state.work.is_empty()
                    && state
                        .slots
                        .iter()
                        .all(|s| s.queue.is_empty() && !s.in_flight);
                if drained {
                    state.pool_stop = true;
                    drop(state);
                    shared.wake.notify_all();
                    return;
                }
                state = shared.wait(state);
            }
        }

        let now = Instant::now();
        let mut next_due: Option<Instant> = None;
        let mut fed = false;
        for i in 0..state.slots.len() {
            let slot = &state.slots[i];
            if slot.queue.is_empty() || slot.in_flight {
                continue;
            }
            if slot.queue.len() >= config.max_batch {
                take_flush(&mut state, i, FlushTrigger::SizeLimit);
                fed = true;
                continue;
            }
            let due = slot.queue[0].submitted_at + config.max_delay;
            if due <= now {
                take_flush(&mut state, i, FlushTrigger::Deadline);
                fed = true;
            } else {
                next_due = Some(next_due.map_or(due, |d| d.min(due)));
            }
        }
        if fed {
            shared.wake.notify_all();
        }

        state = match next_due {
            // Sleep exactly until the earliest pending deadline (spurious
            // wake-ups just re-check).
            Some(due) => shared.wait_timeout(state, due.saturating_duration_since(now)),
            None => shared.wait(state),
        };
    }
}

/// A flush worker: pops flushes off the work queue, evaluates them with
/// the lock released, releases the relation's FIFO latch, and re-notifies
/// — the scheduler re-checks the (possibly refilled) queue, and blocked
/// submitters re-check the bound.
fn worker_loop(shared: &Shared) {
    let mut state = shared.lock();
    loop {
        if let Some(work) = state.work.pop_front() {
            drop(state);
            let flush_size = work.pending.len();
            execute_flush(
                &work.rel,
                work.pending,
                work.trigger,
                work.shed,
                shared.config.threads,
            );
            state = shared.lock();
            if let Some(slot) = state.slots.get_mut(work.slot) {
                slot.in_flight = false;
                slot.flushes += 1;
                slot.flushed_queries += flush_size as u64;
            }
            drop(state);
            shared.wake.notify_all();
            state = shared.lock();
            continue;
        }
        if state.pool_stop {
            return;
        }
        state = shared.wait(state);
    }
}

/// Compiles one relation's drained queue into a [`QueryBatch`], runs it
/// with per-entry error isolation, stamps serving provenance, and delivers
/// every answer — ignoring channels whose [`ResponseHandle`] was dropped.
fn execute_flush(
    rel: &SharedRelation,
    pending: Vec<Pending>,
    trigger: FlushTrigger,
    shed: u64,
    threads: Option<usize>,
) {
    let flush_size = pending.len();
    let mut queries = Vec::with_capacity(flush_size);
    let mut waiters = Vec::with_capacity(flush_size);
    for p in pending {
        queries.push(p.query);
        waiters.push((p.submitted_at, p.depth_at_admit, p.tx));
    }
    let mut batch = QueryBatch::new().add_queries(queries);
    if let Some(threads) = threads {
        batch = batch.parallel(threads);
    }
    let flush_start = Instant::now();
    let results = batch.run_isolated(&**rel);
    debug_assert_eq!(results.len(), flush_size);
    for ((submitted_at, depth_at_admit, tx), mut result) in waiters.into_iter().zip(results) {
        if let Ok(res) = &mut result {
            res.report.serve = Some(ServeCost {
                queue_seconds: flush_start.duration_since(submitted_at).as_secs_f64(),
                trigger,
                flush_size,
                queue_depth: depth_at_admit,
                shed,
            });
        }
        // A dropped handle disconnects the channel; the failed send is the
        // intended "discard the answer" path and must not stop the flush.
        let _ = tx.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_pdb::IndependentDb;

    fn db() -> IndependentDb {
        IndependentDb::from_pairs([
            (10.0, 0.4),
            (9.0, 0.45),
            (8.0, 0.8),
            (7.0, 0.95),
            (6.0, 0.3),
            (5.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_matches_direct_query() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
        let rel = server.register("db", db());
        assert_eq!(server.relation_name(rel).as_deref(), Some("db"));
        let handle = server.submit(rel, RankQuery::pt(2)).unwrap();
        let got = handle.recv().unwrap();
        let want = RankQuery::pt(2).run(&db()).unwrap();
        assert_eq!(got.ranking.order(), want.ranking.order());
        assert_eq!(got.values.as_complex(), want.values.as_complex());
        let serve = got.report.serve.expect("provenance stamped");
        assert!(serve.queue_seconds >= 0.0);
        assert!(serve.flush_size >= 1);
        assert!(serve.queue_depth >= 1);
        assert_eq!(serve.shed, 0);
    }

    #[test]
    fn size_limit_triggers_flush_without_deadline() {
        // A one-hour deadline: only the size limit can flush.
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_secs(3600))
                .max_batch(2),
        );
        let rel = server.register("db", db());
        let a = server.submit(rel, RankQuery::pt(1)).unwrap();
        let b = server.submit(rel, RankQuery::prfe(0.9)).unwrap();
        let a = a.recv().unwrap();
        let b = b.recv().unwrap();
        assert_eq!(a.report.serve.unwrap().trigger, FlushTrigger::SizeLimit);
        assert_eq!(b.report.serve.unwrap().flush_size, 2);
        // Both shared one walk.
        assert_eq!(a.report.batch.unwrap().consumers, 2);
        // Admission depths record the queue growing.
        assert_eq!(a.report.serve.unwrap().queue_depth, 1);
        assert_eq!(b.report.serve.unwrap().queue_depth, 2);
    }

    #[test]
    fn unknown_relation_errors_at_submission() {
        let server = RankServer::new(ServeConfig::new());
        let err = server.submit(RelationId(7), RankQuery::pt(1)).unwrap_err();
        assert!(matches!(err, QueryError::InvalidParameter(_)), "{err}");
        let err = server
            .try_submit(RelationId(7), RankQuery::pt(1))
            .unwrap_err();
        assert!(matches!(err, QueryError::InvalidParameter(_)), "{err}");
    }

    #[test]
    fn per_query_errors_resolve_through_the_handle() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO).max_batch(3));
        let rel = server.register("db", db());
        let bad = server
            .submit(
                rel,
                RankQuery::pt(2).algorithm(prf_core::query::Algorithm::LogDomain),
            )
            .unwrap();
        let good = server.submit(rel, RankQuery::pt(2)).unwrap();
        assert!(matches!(
            bad.recv(),
            Err(QueryError::IncompatibleAlgorithm { .. })
        ));
        assert!(good.recv().is_ok());
    }

    #[test]
    fn try_submit_sheds_at_the_bound() {
        // A one-hour deadline and a high batch limit: nothing flushes, so
        // the 2-slot bound must fill and shed.
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_secs(3600))
                .max_batch(1000)
                .max_pending(2),
        );
        let rel = server.register("db", db());
        let a = server.try_submit(rel, RankQuery::pt(1)).unwrap();
        let b = server.try_submit(rel, RankQuery::pt(1)).unwrap();
        let shed = server.try_submit(rel, RankQuery::pt(1));
        assert!(matches!(shed, Err(QueryError::Overloaded)), "{shed:?}");
        assert_eq!(server.metrics().shed, 1);
        // The accepted queries still resolve (shutdown drains them) and
        // carry the shed counter in their provenance.
        server.shutdown();
        let a = a.recv().unwrap();
        let b = b.recv().unwrap();
        assert_eq!(a.report.serve.unwrap().trigger, FlushTrigger::Shutdown);
        assert_eq!(a.report.serve.unwrap().shed, 1);
        assert_eq!(b.report.serve.unwrap().shed, 1);
    }

    #[test]
    fn blocked_submit_resumes_after_a_flush_frees_space() {
        let server = Arc::new(RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_millis(1))
                .max_pending(1),
        ));
        let rel = server.register("db", db());
        // Saturate the queue, then submit from another thread: the call
        // must block until the deadline flush frees the slot, then admit.
        let first = server.submit(rel, RankQuery::pt(1)).unwrap();
        let blocked = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.submit(rel, RankQuery::pt(2)))
        };
        let second = blocked.join().unwrap().unwrap();
        assert!(first.recv().is_ok());
        assert!(second.recv().is_ok());
    }

    #[test]
    fn panicking_backend_resolves_handles_instead_of_hanging() {
        use prf_core::query::CorrelationClass;
        use prf_core::weights::WeightFunction;
        use prf_numeric::Complex;

        /// A backend whose kernels die — stands in for any bug that makes
        /// a flush panic. The worker's failsafe must then resolve every
        /// pending handle to `Shutdown` and reject future submissions.
        struct Poisoned;
        impl ProbabilisticRelation for Poisoned {
            fn n_tuples(&self) -> usize {
                2
            }
            fn tuple_scores(&self) -> Vec<f64> {
                vec![2.0, 1.0]
            }
            fn tuple_marginals(&self) -> Vec<f64> {
                vec![0.5, 0.5]
            }
            fn correlation_class(&self) -> CorrelationClass {
                CorrelationClass::Graphical
            }
            fn prf_values(
                &self,
                _omega: &(dyn WeightFunction + Sync),
                _threads: Option<usize>,
            ) -> Vec<Complex> {
                panic!("injected kernel failure")
            }
            fn prfe_values(&self, _alpha: Complex) -> Vec<Complex> {
                panic!("injected kernel failure")
            }
        }

        let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO));
        let rel = server.register("poisoned", Poisoned);
        let first = server.submit(rel, RankQuery::pt(1)).unwrap();
        // The worker dies on this query; the handle must still resolve.
        assert!(matches!(first.recv(), Err(QueryError::Shutdown)));
        // …and the server now rejects instead of queueing into the void
        // (the failsafe may still be mid-flight, so poll briefly).
        let refused = (0..1000).any(|_| {
            std::thread::yield_now();
            matches!(
                server.submit(rel, RankQuery::pt(1)),
                Err(QueryError::Shutdown)
            )
        });
        assert!(refused, "submissions must start failing after the panic");
        server.shutdown(); // joins the dead worker without hanging
    }

    #[test]
    fn query_ids_are_unique_and_monotone() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO));
        let rel = server.register("db", db());
        let ids: Vec<u64> = (0..5)
            .map(|_| {
                server
                    .submit(rel, RankQuery::escore())
                    .unwrap()
                    .id()
                    .as_u64()
            })
            .collect();
        for w in ids.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn metrics_count_flushes_and_queries() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO).workers(3));
        let rel = server.register("db", db());
        let handles: Vec<_> = (0..6)
            .map(|_| server.submit(rel, RankQuery::pt(1)).unwrap())
            .collect();
        for h in handles {
            assert!(h.recv().is_ok());
        }
        server.shutdown();
        let m = server.metrics();
        assert_eq!(m.flushed_queries, 6);
        assert!(m.flushes >= 1 && m.flushes <= 6, "{m:?}");
        assert_eq!(m.pending, 0);
        assert_eq!(m.in_flight, 0);
    }
}
