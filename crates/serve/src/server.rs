//! The [`RankServer`]: concurrent submission, bounded per-relation queues,
//! the deadline scheduler, and the supervised flush worker pool.
//!
//! # Architecture (v3)
//!
//! Three thread roles share one mutex-guarded [`State`]:
//!
//! - **Clients** call [`RankServer::submit`] / [`RankServer::try_submit`] /
//!   [`RankServer::submit_with`]: the query joins its relation's pending
//!   queue (bounded when [`ServeConfig::max_pending`] is set — `submit`
//!   then applies *backpressure* by blocking until space frees,
//!   `try_submit` *sheds* with [`QueryError::Overloaded`]). A submission
//!   that completes a size trigger — or arrives under a zero deadline —
//!   enqueues the flush itself, so the fast path hands work straight to a
//!   worker without a scheduler hop.
//! - The **scheduler** thread only computes deadlines: it sleeps until the
//!   earliest pending deadline, moves due queues onto the work queue, and
//!   never executes a flush itself.
//! - **Workers** (N = [`ServeConfig::workers`]) pop flushes off the work
//!   queue and evaluate them with the lock released. Per-relation FIFO is
//!   preserved by an `in_flight` latch: a relation's next flush is not
//!   enqueued until its previous one completed, so one relation's flushes
//!   never race each other — but a slow relation's walk occupies only one
//!   worker, and every other relation keeps flushing on the rest.
//!
//! # Fault tolerance
//!
//! A panic anywhere in a flush is **contained to the flush**, never fatal
//! to the server:
//!
//! - a panic *inside evaluation* is caught per entry by the batch layer and
//!   resolves only that entry's handle to [`QueryError::Internal`];
//! - a panic *escaping the flush* (a dying mutation backend, an injected
//!   fault) is caught by the worker, which **re-queues the flush's
//!   undelivered entries** at the front of their queues for the next flush
//!   — an entry interrupted twice resolves to `Internal` instead of
//!   looping;
//! - a panic while *applying a mutation* additionally calls
//!   [`LiveRelation::repair`](prf_core::live::LiveRelation::repair), so a
//!   half-patched prepared ranking is rebuilt before anything is served
//!   from it.
//!
//! A **supervisor** thread watches worker heartbeats (see
//! [`crate::supervisor`]): dead workers are joined and respawned, stuck
//! workers (no heartbeat for [`ServeConfig::stuck_after`] while mid-flush)
//! are compensated with a fresh worker. [`ServeMetrics`] exposes
//! [`ServeMetrics::panics_caught`] and [`ServeMetrics::workers_respawned`].
//!
//! # Deadline classes
//!
//! [`RankServer::submit_with`] attaches [`SubmitOptions`]: a per-query
//! **deadline** and a **priority class**. [`Priority::Latency`] traffic
//! flushes on [`ServeConfig::max_delay`]; [`Priority::Bulk`] traffic waits
//! in a second queue for the (longer) [`ServeConfig::bulk_delay`] cadence
//! and piggybacks on latency flushes already due. A query whose deadline
//! expires before a worker dequeues it is shed with
//! [`QueryError::TimedOut`] **without being evaluated**; mid-walk, the
//! deadline is checked cooperatively by the batch kernels. Dropping a
//! tracked [`ResponseHandle`] trips the same cancellation token.
//!
//! # Live relations and standing queries
//!
//! [`RankServer::register_live`] registers a
//! [`LiveRelation`](prf_core::live::LiveRelation): mutations submitted via
//! [`RankServer::apply`] join the relation's flush pipeline and are applied
//! by the worker **at flush start, under the per-relation FIFO latch** —
//! never concurrently with that relation's query evaluation. Every query
//! batched into the same flush therefore observes every mutation batched
//! with it, and the sequence of flushes is a serialization of all
//! mutations. [`RankServer::subscribe`] registers a **standing query**: it
//! receives an initial ranking snapshot, then a [`RankingDelta`] after
//! every flush that applied mutations to its relation.
//!
//! # Result cache
//!
//! Each registered relation carries a keyed **answer cache**: queries that
//! canonicalize to a [`QueryKey`] (every semantics except `PRF^omega`, and
//! every exact algorithm) are remembered per `(key, generation)` and served
//! on repeat without joining a walk — [`ServeCost::served_from_cache`]
//! marks such answers. Entries are stamped with the relation's
//! [`generation`](ProbabilisticRelation::generation) at evaluation time and
//! consulted **generation-exactly**: any flush that touches the relation's
//! state purges the cache, and a stale entry that survives (e.g. after an
//! offline mutation through a retained handle) is discarded at lookup
//! rather than served. Within one flush, identical untracked queries
//! **coalesce**: one representative joins the walk and the rest alias its
//! answer. [`ServeConfig::cache_enabled`] / [`ServeConfig::cache_entries`]
//! tune the cache; [`ServeMetrics`] counts hits, misses, and
//! invalidations.

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use prf_core::live::{LiveApply, LiveRelation, MutableRelation, Mutation};
use prf_core::query::{
    panic_reason, CancelToken, FlushTrigger, PreparedRelation, ProbabilisticRelation, QueryBatch,
    QueryError, QueryKey, RankQuery, RankedResult, ServeCost,
};
use prf_core::shard::{ShardError, ShardHandle, ShardedRelation};
use prf_core::TupleId;

#[cfg(any(test, feature = "chaos"))]
use crate::fault::{FaultKind, FaultPlan};
use crate::handle::{
    Answer, DeltaAnswer, MutationAnswer, MutationHandle, QueryId, RankingDelta, ResponseHandle,
    SubscriptionHandle,
};
use crate::supervisor::{supervisor_loop, WorkerCtl, WorkerTable};

/// A relation as the server owns it: shared, type-erased, and usable from
/// both client threads (registration) and the flush workers.
pub type SharedRelation = Arc<dyn ProbabilisticRelation + Send + Sync>;

/// Locks a mutex, recovering from poisoning and counting each recovery in
/// `poisoned` (surfaced as [`ServeMetrics::poisoned_locks`]). The serving
/// layer's only sanctioned way to lock — a panicking thread must never
/// wedge the scheduler, the workers, or a client, and never silently: the
/// counter makes every recovery observable.
pub(crate) fn lock_recover<'a, T>(m: &'a Mutex<T>, poisoned: &AtomicU64) -> MutexGuard<'a, T> {
    #[allow(clippy::disallowed_methods)] // the one sanctioned raw `lock` in this crate
    m.lock().unwrap_or_else(|err| {
        poisoned.fetch_add(1, Ordering::Relaxed);
        err.into_inner()
    })
}

/// Tuning knobs of a [`RankServer`].
///
/// The defaults (2 ms deadline, 20 ms bulk deadline, 64-query batches, 2
/// flush workers, unbounded queues, serial walks, 30 s stuck detection)
/// suit a latency-sensitive serving mix; a zero [`ServeConfig::max_delay`]
/// turns the server into an immediate dispatcher that still batches
/// whatever has accumulated since a worker last took the queue.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub(crate) max_delay: Duration,
    pub(crate) bulk_delay: Duration,
    pub(crate) max_batch: usize,
    pub(crate) threads: Option<usize>,
    pub(crate) workers: usize,
    pub(crate) max_pending: Option<usize>,
    pub(crate) stuck_after: Duration,
    pub(crate) cache_enabled: bool,
    pub(crate) cache_entries: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_delay: Duration::from_millis(2),
            bulk_delay: Duration::from_millis(20),
            max_batch: 64,
            threads: None,
            workers: 2,
            max_pending: None,
            stuck_after: Duration::from_secs(30),
            cache_enabled: true,
            cache_entries: 128,
        }
    }
}

impl ServeConfig {
    /// The default configuration (2 ms deadline, 64-query batches, 2 flush
    /// workers, unbounded queues).
    pub fn new() -> Self {
        ServeConfig::default()
    }

    /// How long the oldest pending [`Priority::Latency`] query may wait
    /// before its relation's queue is flushed. Zero flushes on admission.
    pub fn max_delay(mut self, deadline: Duration) -> Self {
        self.max_delay = deadline;
        self
    }

    /// How long the oldest pending [`Priority::Bulk`] query may wait before
    /// its relation's bulk queue is flushed (default 20 ms). Bulk queries
    /// also piggyback on any flush of their relation once this deadline has
    /// passed, so the two classes share walks without sharing a cadence.
    pub fn bulk_delay(mut self, deadline: Duration) -> Self {
        self.bulk_delay = deadline;
        self
    }

    /// Queue size that triggers an immediate flush, regardless of the
    /// deadline (clamped to at least 1). Applies to each class queue.
    pub fn max_batch(mut self, size: usize) -> Self {
        self.max_batch = size.max(1);
        self
    }

    /// Requests `threads` workers for each flush's shared walk (forwarded
    /// to [`QueryBatch::parallel`]; the engine degrades small walks to the
    /// serial route, so over-asking costs nothing).
    pub fn parallel(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Number of flush worker threads (clamped to at least 1). Flushes of
    /// *different* relations run concurrently across workers; flushes of
    /// the same relation stay FIFO.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Bounds every relation's pending queue to `cap` queries per class
    /// (clamped to at least 1) — the admission-control knob. At the bound,
    /// [`RankServer::submit`] blocks until a flush frees space
    /// (backpressure) and [`RankServer::try_submit`] sheds with
    /// [`QueryError::Overloaded`]. The default is unbounded.
    pub fn max_pending(mut self, cap: usize) -> Self {
        self.max_pending = Some(cap.max(1));
        self
    }

    /// How long a worker may run one flush without a heartbeat before the
    /// supervisor declares it **stuck** and spawns a compensating worker
    /// (default 30 s). Detection granularity is an eighth of this window,
    /// clamped to 2–250 ms.
    pub fn stuck_after(mut self, window: Duration) -> Self {
        self.stuck_after = window;
        self
    }

    /// Enables or disables the per-relation result cache (default
    /// **enabled**). Disabling also disables within-flush coalescing of
    /// identical queries, so every submission pays its own share of a walk
    /// — the right setting for benchmarks that repeat a query to measure
    /// evaluation cost.
    pub fn cache_enabled(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Caps each relation's result cache at `entries` distinct query keys
    /// (clamped to at least 1; default 128). At the cap the oldest-inserted
    /// key is evicted.
    pub fn cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries.max(1);
        self
    }
}

/// Scheduling class of one submission (see [`SubmitOptions::priority`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Flushes on [`ServeConfig::max_delay`] — the default, and the class
    /// of every [`RankServer::submit`] call.
    #[default]
    Latency,
    /// Waits in a separate queue for [`ServeConfig::bulk_delay`]; joins a
    /// flush only once that longer deadline has passed. Analytics traffic
    /// in this class stops dictating the latency class's cadence.
    Bulk,
}

/// Per-submission options for [`RankServer::submit_with`] /
/// [`RankServer::try_submit_with`]: a deadline and a priority class.
///
/// Every submission made through these carries a cancellation token:
/// dropping the returned [`ResponseHandle`] trips it, and an expired
/// deadline trips it too — either way the query is shed with
/// [`QueryError::TimedOut`] at dequeue instead of being evaluated, and
/// abandoned mid-walk by the cooperative cancellation checks in the batch
/// kernels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    deadline: Option<Duration>,
    priority: Priority,
}

impl SubmitOptions {
    /// Default options: no deadline, [`Priority::Latency`] — but tracked
    /// by a cancellation token (unlike plain [`RankServer::submit`]).
    pub fn new() -> Self {
        SubmitOptions::default()
    }

    /// Shorthand for the latency class.
    pub fn latency() -> Self {
        SubmitOptions::default()
    }

    /// Shorthand for the bulk class.
    pub fn bulk() -> Self {
        SubmitOptions::default().priority(Priority::Bulk)
    }

    /// Sheds the query with [`QueryError::TimedOut`] if it has not been
    /// dequeued within `deadline` of submission (and abandons it mid-walk
    /// at the next cooperative cancellation check).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The scheduling class (default [`Priority::Latency`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// Server-local identifier of a registered relation, returned by
/// [`RankServer::register`] and presented with every submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RelationId(pub(crate) usize);

impl std::fmt::Display for RelationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rel{}", self.0)
    }
}

/// A point-in-time snapshot of the server's serving counters, summed over
/// all registered relations (see [`RankServer::metrics`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Queries waiting in pending queues right now (both classes).
    pub pending: usize,
    /// Relations with a flush currently executing on a worker.
    pub in_flight: usize,
    /// Cumulative submissions shed with [`QueryError::Overloaded`].
    pub shed: u64,
    /// Cumulative completed flushes.
    pub flushes: u64,
    /// Cumulative queries answered through completed flushes.
    pub flushed_queries: u64,
    /// Cumulative mutations applied successfully through
    /// [`RankServer::apply`] (rejected mutations are not counted).
    pub mutations_applied: u64,
    /// Cumulative [`RankingDelta`]s pushed to standing-query subscribers.
    pub deltas_pushed: u64,
    /// Standing-query subscriptions currently registered.
    pub subscribers_live: usize,
    /// Cumulative panics contained by the serving layer: per-entry
    /// evaluation panics resolved as [`QueryError::Internal`], plus panics
    /// that escaped a flush and were caught by its worker.
    pub panics_caught: u64,
    /// Cumulative queries shed with [`QueryError::TimedOut`]: their
    /// deadline expired (or their handle was dropped) before evaluation.
    pub timed_out: u64,
    /// Cumulative workers (re)spawned by the supervisor: replacements for
    /// dead workers plus compensations for stuck ones.
    pub workers_respawned: u64,
    /// Cumulative poisoned-lock recoveries (a thread panicked while
    /// holding a serving-layer mutex; the lock was recovered, not wedged).
    pub poisoned_locks: u64,
    /// Cumulative queries answered straight from a relation's result cache
    /// (same canonical [`QueryKey`], same relation generation) without
    /// joining a walk.
    pub cache_hits: u64,
    /// Cumulative cacheable queries that were *not* served from the cache
    /// (no entry for their key at the relation's current generation) and
    /// went to evaluation instead.
    pub cache_misses: u64,
    /// Cumulative result-cache entries discarded because the relation's
    /// state moved: entries purged by a mutation-applying flush, plus any
    /// stale entry caught by the generation-exact check at lookup.
    pub cache_invalidations: u64,
}

/// One submission waiting in a relation's queue.
struct Pending {
    query: RankQuery,
    submitted_at: Instant,
    /// Queue depth at admission, including this query — the backpressure
    /// signal stamped into [`ServeCost::queue_depth`].
    depth_at_admit: usize,
    class: Priority,
    /// Set when an interrupted flush put this entry back on its queue —
    /// a second interruption resolves it with [`QueryError::Internal`]
    /// instead of re-queueing forever.
    requeued: bool,
    tx: mpsc::Sender<Answer>,
}

impl Pending {
    /// Whether this entry's cancellation token has tripped (deadline
    /// expired, or the client dropped its handle).
    fn cancelled(&self) -> bool {
        self.query
            .cancel_token_ref()
            .is_some_and(CancelToken::is_cancelled)
    }
}

/// One mutation waiting in a relation's pipeline.
struct PendingMut {
    mutation: Mutation,
    submitted_at: Instant,
    /// See [`Pending::requeued`].
    requeued: bool,
    tx: mpsc::Sender<MutationAnswer>,
}

/// One standing query registered on a slot.
struct Subscription {
    id: QueryId,
    query: RankQuery,
    /// The ranking order this subscriber last saw — `None` until its
    /// initial snapshot was pushed.
    last: Option<Vec<TupleId>>,
    /// Sequence number of the next delta to push.
    seq: u64,
    tx: mpsc::Sender<DeltaAnswer>,
}

/// One remembered answer: the result as evaluated, stamped with the
/// relation generation that produced it.
struct CacheEntry {
    result: RankedResult,
    generation: u64,
}

/// What [`ResultCache::lookup`] found for a key (the hit is boxed so the
/// enum stays pointer-sized next to its unit variants).
enum CacheLookup {
    /// A current entry — a clone of the remembered answer, ready to serve.
    Hit(Box<RankedResult>),
    /// An entry existed but its generation is not the relation's current
    /// one; it has been removed (the caller counts it as an invalidation).
    Stale,
    /// No entry for this key.
    Miss,
}

/// A relation's keyed answer cache: canonical [`QueryKey`] → remembered
/// [`RankedResult`], consulted and populated by flush workers under the
/// per-relation FIFO latch.
///
/// Correctness rests on the **generation-exact** lookup, not on eager
/// purging: an entry is served only when its stored generation equals the
/// relation's generation read in the consulting flush, so a purge that is
/// skipped (or raced by an offline mutation through a retained handle)
/// degrades to a lazy discard at lookup, never to a stale answer.
struct ResultCache {
    entries: HashMap<QueryKey, CacheEntry>,
    /// Insertion order of the keys in `entries`, oldest first — the
    /// eviction queue ([`ServeConfig::cache_entries`] caps `entries`).
    order: VecDeque<QueryKey>,
    cap: usize,
}

impl ResultCache {
    fn new(cap: usize) -> Self {
        ResultCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// The remembered answer for `key` at exactly `generation`. A present
    /// entry stamped with any other generation is discarded here rather
    /// than returned.
    fn lookup(&mut self, key: &QueryKey, generation: u64) -> CacheLookup {
        match self.entries.get(key) {
            Some(entry) if entry.generation == generation => {
                CacheLookup::Hit(Box::new(entry.result.clone()))
            }
            Some(_) => {
                self.entries.remove(key);
                self.order.retain(|k| k != key);
                CacheLookup::Stale
            }
            None => CacheLookup::Miss,
        }
    }

    /// Drops every entry (the relation's state moved), returning how many
    /// were discarded.
    fn purge(&mut self) -> u64 {
        let n = self.entries.len() as u64;
        self.entries.clear();
        self.order.clear();
        n
    }

    /// Remembers `result` for `key` as of `generation`, evicting the
    /// oldest-inserted key once the cap is reached.
    fn insert(&mut self, key: QueryKey, generation: u64, result: RankedResult) {
        if self
            .entries
            .insert(key.clone(), CacheEntry { result, generation })
            .is_none()
        {
            self.order.push_back(key);
        }
        while self.entries.len() > self.cap {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.entries.remove(&oldest);
        }
    }
}

/// A registered relation plus its pending queues and serving counters.
struct Slot {
    name: String,
    rel: SharedRelation,
    /// The mutation entry point of a live relation ([`RankServer::apply`]
    /// rejects mutations when `None`).
    live: Option<Arc<dyn LiveApply>>,
    /// [`Priority::Latency`] submissions, in admission order.
    queue: Vec<Pending>,
    /// [`Priority::Bulk`] submissions, in admission order — flushed on
    /// their own (longer) cadence.
    bulk: Vec<Pending>,
    /// Mutations awaiting the next flush, in submission order.
    muts: Vec<PendingMut>,
    /// Standing queries registered on this relation.
    subs: Vec<Subscription>,
    /// Set while a subscriber awaits its initial snapshot — makes the slot
    /// due even with empty queues, so the snapshot flush happens within
    /// one deadline.
    sync_since: Option<Instant>,
    /// `true` while a flush of this relation sits on the work queue or
    /// executes on a worker — the per-relation FIFO latch.
    in_flight: bool,
    /// Cumulative submissions shed from this slot's bounded queue.
    shed: u64,
    /// Cumulative completed flushes of this slot.
    flushes: u64,
    /// Cumulative queries answered through this slot's completed flushes.
    flushed_queries: u64,
    /// Cumulative mutations applied successfully on this slot.
    mutations_applied: u64,
    /// Cumulative deltas pushed to this slot's subscribers.
    deltas_pushed: u64,
    /// This relation's result cache, shared with in-flight flushes (the
    /// FIFO latch keeps use single-flush at a time; the mutex makes the
    /// sharing sound).
    cache: Arc<Mutex<ResultCache>>,
}

impl Slot {
    /// Whether this slot has work that must eventually flush.
    fn due(&self) -> bool {
        !self.queue.is_empty()
            || !self.bulk.is_empty()
            || !self.muts.is_empty()
            || self.sync_since.is_some()
    }

    /// Queued latency queries plus queued mutations — the latency-class
    /// size-trigger load.
    fn load(&self) -> usize {
        self.queue.len() + self.muts.len()
    }

    /// The earliest admission instant among queued latency queries, queued
    /// mutations, and a pending initial snapshot — the latency deadline
    /// anchor. Bulk queries have their own anchor ([`Slot::bulk_due_at`]).
    fn anchor(&self) -> Option<Instant> {
        let mut anchor: Option<Instant> = None;
        let candidates = self
            .queue
            .first()
            .map(|p| p.submitted_at)
            .into_iter()
            .chain(self.muts.first().map(|m| m.submitted_at))
            .chain(self.sync_since);
        for t in candidates {
            anchor = Some(anchor.map_or(t, |a| a.min(t)));
        }
        anchor
    }

    /// When the oldest bulk query's cadence deadline passes, if any.
    fn bulk_due_at(&self, bulk_delay: Duration) -> Option<Instant> {
        self.bulk.first().map(|p| p.submitted_at + bulk_delay)
    }

    /// Whether a flush taken *now* should carry the bulk queue along.
    fn take_bulk_now(&self, config: &ServeConfig, now: Instant) -> bool {
        self.bulk.len() >= config.max_batch
            || self
                .bulk_due_at(config.bulk_delay)
                .is_some_and(|d| d <= now)
    }
}

/// A standing query's snapshot carried into one flush: the worker
/// re-evaluates `query`, diffs against `last`, and pushes the delta; the
/// slot's [`Subscription`] is updated under the lock afterwards.
struct SubTask {
    id: QueryId,
    query: RankQuery,
    last: Option<Vec<TupleId>>,
    seq: u64,
    tx: mpsc::Sender<DeltaAnswer>,
}

/// One flush's worth of work, taken from a slot under the lock and
/// executed by a worker outside it. Entries stay inside until the moment
/// their answer is delivered, so a panic escaping the flush leaves the
/// undelivered remainder here for the worker to re-queue.
struct FlushWork {
    slot: usize,
    rel: SharedRelation,
    live: Option<Arc<dyn LiveApply>>,
    pending: Vec<Pending>,
    /// Mutations to apply before evaluating, in submission order.
    muts: Vec<PendingMut>,
    /// Standing queries to re-evaluate — non-empty only when this flush
    /// carries mutations or a subscriber awaits its initial snapshot.
    subs: Vec<SubTask>,
    trigger: FlushTrigger,
    /// Snapshot of the slot's shed counter when the flush was taken.
    shed: u64,
    /// The slot's result cache (see [`Slot::cache`]).
    cache: Arc<Mutex<ResultCache>>,
}

/// Mutex-guarded server state shared between clients, the scheduler, and
/// the workers.
pub(crate) struct State {
    slots: Vec<Slot>,
    /// Flushes ready for a worker, in take order.
    work: VecDeque<FlushWork>,
    /// Set by [`RankServer::shutdown`] (or a failsafe): rejects new
    /// submissions; the scheduler then drains and stops the pool.
    shutdown: bool,
    /// Set by the scheduler once the drain completed (or by a failsafe):
    /// idle workers and the supervisor exit.
    pub(crate) pool_stop: bool,
}

/// What an armed fault makes the consulting thread do, beyond the panics
/// and delays [`Shared::chaos`] performs on the spot.
// Without injection hooks compiled in, `chaos` is a constant `None` and
// never constructs these.
#[cfg_attr(not(any(test, feature = "chaos")), allow(dead_code))]
enum FaultAction {
    /// Shed the admission with [`QueryError::Overloaded`].
    Overload,
    /// Exit the worker thread (after re-queueing its flush).
    Die,
}

pub(crate) struct Shared {
    config: ServeConfig,
    state: Mutex<State>,
    wake: Condvar,
    /// Cumulative poisoned-lock recoveries (see [`lock_recover`]).
    poisoned: AtomicU64,
    /// Cumulative contained panics (see [`ServeMetrics::panics_caught`]).
    panics_caught: AtomicU64,
    /// Cumulative dequeue-time deadline sheds.
    timed_out: AtomicU64,
    /// Cumulative supervisor respawns.
    respawned: AtomicU64,
    /// Cumulative result-cache hits (see [`ServeMetrics::cache_hits`]).
    cache_hits: AtomicU64,
    /// Cumulative result-cache misses (see [`ServeMetrics::cache_misses`]).
    cache_misses: AtomicU64,
    /// Cumulative result-cache entries discarded (see
    /// [`ServeMetrics::cache_invalidations`]).
    cache_invalidations: AtomicU64,
    /// The armed fault-injection plan (test / `chaos` builds only).
    #[cfg(any(test, feature = "chaos"))]
    faults: Mutex<FaultPlan>,
}

impl Shared {
    pub(crate) fn lock(&self) -> MutexGuard<'_, State> {
        lock_recover(&self.state, &self.poisoned)
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        self.wake
            .wait(guard)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn wait_timeout<'a>(
        &self,
        guard: MutexGuard<'a, State>,
        timeout: Duration,
    ) -> MutexGuard<'a, State> {
        self.wake
            .wait_timeout(guard, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .0
    }

    pub(crate) fn notify(&self) {
        self.wake.notify_all();
    }

    pub(crate) fn poisoned(&self) -> &AtomicU64 {
        &self.poisoned
    }

    pub(crate) fn stuck_after(&self) -> Duration {
        self.config.stuck_after
    }

    pub(crate) fn count_respawned(&self, n: u64) {
        self.respawned.fetch_add(n, Ordering::Relaxed);
    }

    /// Consults the fault plan at `site`. Panics and delays happen right
    /// here; overload and kill actions are returned for the caller to act
    /// on. Release builds without the `chaos` feature compile this to a
    /// constant `None`.
    #[cfg(any(test, feature = "chaos"))]
    fn chaos(&self, site: &str) -> Option<FaultAction> {
        let plan = lock_recover(&self.faults, &self.poisoned).clone();
        match plan.fire(site)? {
            FaultKind::Panic => panic!("injected fault at `{site}`"),
            FaultKind::Delay(d) => {
                std::thread::sleep(d);
                None
            }
            FaultKind::Overloaded => Some(FaultAction::Overload),
            FaultKind::KillWorker => Some(FaultAction::Die),
        }
    }

    #[cfg(not(any(test, feature = "chaos")))]
    #[inline(always)]
    fn chaos(&self, _site: &str) -> Option<FaultAction> {
        None
    }
}

/// Moves `slot`'s queues onto the work queue as one flush (setting the
/// FIFO latch): latency queries and mutations always, bulk queries only
/// when `take_bulk` (their own cadence is due). Standing queries are
/// snapshotted into the flush when it carries mutations — their rankings
/// may change — or when a new subscriber awaits its initial snapshot.
/// Callers have checked the trigger and the latch.
fn take_flush(state: &mut State, slot_idx: usize, trigger: FlushTrigger, take_bulk: bool) {
    let slot = &mut state.slots[slot_idx];
    debug_assert!(!slot.in_flight && slot.due());
    slot.in_flight = true;
    let muts = std::mem::take(&mut slot.muts);
    let syncing = slot.sync_since.take().is_some();
    let subs = if !muts.is_empty() || syncing {
        slot.subs
            .iter()
            .map(|s| SubTask {
                id: s.id,
                query: s.query.clone(),
                last: s.last.clone(),
                seq: s.seq,
                tx: s.tx.clone(),
            })
            .collect()
    } else {
        Vec::new()
    };
    let mut pending = std::mem::take(&mut slot.queue);
    if take_bulk {
        pending.append(&mut slot.bulk);
    }
    let work = FlushWork {
        slot: slot_idx,
        rel: Arc::clone(&slot.rel),
        live: slot.live.clone(),
        pending,
        muts,
        subs,
        trigger,
        shed: slot.shed,
        cache: Arc::clone(&slot.cache),
    };
    state.work.push_back(work);
}

/// The admission-side flush trigger: mirrors the scheduler's immediate
/// conditions so a submission that completes one enqueues the flush itself
/// — no scheduler hop between admission and a worker. A latched relation
/// leaves the re-check to its worker's completion (which wakes the
/// scheduler).
fn maybe_flush(state: &mut State, slot_idx: usize, config: &ServeConfig) {
    let slot = &state.slots[slot_idx];
    if slot.in_flight || !slot.due() {
        return;
    }
    let now = Instant::now();
    let take_bulk = slot.take_bulk_now(config, now);
    if slot.load() >= config.max_batch || slot.bulk.len() >= config.max_batch {
        take_flush(state, slot_idx, FlushTrigger::SizeLimit, take_bulk);
    } else if config.max_delay.is_zero()
        && (!slot.queue.is_empty() || !slot.muts.is_empty() || slot.sync_since.is_some())
    {
        take_flush(state, slot_idx, FlushTrigger::Deadline, take_bulk);
    } else if config.bulk_delay.is_zero() && !slot.bulk.is_empty() {
        take_flush(state, slot_idx, FlushTrigger::Deadline, true);
    }
}

/// A concurrent, deadline-batched front end over registered relations: see
/// the [crate docs](crate) for the architecture and a usage example.
///
/// The server is `Sync` — share it across client threads by reference
/// (e.g. `std::thread::scope`) or in an `Arc`. Dropping it shuts it down
/// and drains in-flight queries.
pub struct RankServer {
    shared: Arc<Shared>,
    scheduler: Mutex<Option<JoinHandle<()>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    workers: Arc<WorkerTable>,
    next_query: AtomicU64,
}

impl RankServer {
    /// Starts a server — spawning its scheduler thread,
    /// [`ServeConfig::workers`] flush workers, and the worker supervisor —
    /// with the given configuration.
    pub fn new(config: ServeConfig) -> Self {
        let worker_count = config.workers;
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(State {
                slots: Vec::new(),
                work: VecDeque::new(),
                shutdown: false,
                pool_stop: false,
            }),
            wake: Condvar::new(),
            poisoned: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            respawned: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_invalidations: AtomicU64::new(0),
            #[cfg(any(test, feature = "chaos"))]
            faults: Mutex::new(FaultPlan::new()),
        });
        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("prf-serve-scheduler".into())
                .spawn(move || {
                    let _failsafe = Failsafe(&shared);
                    scheduler_loop(&shared);
                })
                .expect("spawning the scheduler thread")
        };
        let workers = Arc::new(WorkerTable::new());
        for _ in 0..worker_count {
            workers.spawn(&shared);
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new()
                .name("prf-serve-supervisor".into())
                .spawn(move || supervisor_loop(&shared, &workers))
                .expect("spawning the supervisor thread")
        };
        RankServer {
            shared,
            scheduler: Mutex::new(Some(scheduler)),
            supervisor: Mutex::new(Some(supervisor)),
            workers,
            next_query: AtomicU64::new(0),
        }
    }

    /// Arms a fault-injection plan: the serving path consults it at seven
    /// named sites (see [`crate::fault`]) and panics, sleeps, sheds, or
    /// kills a worker where the plan says to. Replaces any previous plan.
    /// Available only in test builds and under the `chaos` feature.
    #[cfg(any(test, feature = "chaos"))]
    pub fn inject_faults(&self, plan: FaultPlan) {
        *lock_recover(&self.shared.faults, &self.shared.poisoned) = plan;
    }

    /// Registers a relation under `name`, transferring ownership to the
    /// server. Registration **prepares** the relation — builds its score
    /// sort and evaluation plan once, so every later flush skips them.
    /// Relations may be registered at any time, including while other
    /// threads are already submitting against earlier ones.
    pub fn register(
        &self,
        name: impl Into<String>,
        rel: impl ProbabilisticRelation + Send + Sync + 'static,
    ) -> RelationId {
        self.register_shared(name, Arc::new(rel))
    }

    /// Registers an already-shared relation (the caller keeps its own
    /// `Arc` for direct queries). Prepares it like [`RankServer::register`].
    pub fn register_shared(&self, name: impl Into<String>, rel: SharedRelation) -> RelationId {
        let prepared: SharedRelation = Arc::new(PreparedRelation::new(rel));
        self.push_slot(name.into(), prepared, None)
    }

    /// Assembles a [`ShardedRelation`] over score-contiguous shards and
    /// registers it under `name`. Preparation builds every shard's state
    /// (sort/plan) once; flushes then fan each shared walk out over the
    /// relation's persistent pool of `workers` shard threads. Generation
    /// tracking is per shard set — a bump in **any** shard's generation
    /// bumps the sharded relation's, so the result cache stays
    /// generation-exact and re-preparation rebuilds exactly the changed
    /// shard states.
    ///
    /// Fails (without registering) if the shards overlap in score or a
    /// shard's backend lacks the presence-GF hooks.
    pub fn register_sharded(
        &self,
        name: impl Into<String>,
        shards: Vec<ShardHandle>,
        workers: usize,
    ) -> Result<RelationId, ShardError> {
        let sharded = ShardedRelation::new(shards, workers)?;
        Ok(self.register_shared(name, Arc::new(sharded)))
    }

    /// Registers a **live** relation: [`RankServer::apply`] then accepts
    /// mutations against it, and standing queries
    /// ([`RankServer::subscribe`]) receive a [`RankingDelta`] after every
    /// mutated flush. The caller keeps its own `Arc` for direct queries
    /// and offline mutation.
    ///
    /// A `LiveRelation` maintains (and incrementally patches) its own
    /// prepared state, so — unlike [`RankServer::register`] — it is *not*
    /// wrapped in a [`PreparedRelation`].
    ///
    /// Mutating the relation **directly** through a retained `Arc` while
    /// the server is flushing it is not torn-read safe (a flush makes
    /// several backend calls); route mutations through
    /// [`RankServer::apply`], which serializes them with evaluation on the
    /// relation's FIFO flush pipeline.
    pub fn register_live<B>(&self, name: impl Into<String>, rel: Arc<LiveRelation<B>>) -> RelationId
    where
        B: MutableRelation + Send + Sync + 'static,
    {
        let shared_rel: SharedRelation = rel.clone();
        let live: Arc<dyn LiveApply> = rel;
        self.push_slot(name.into(), shared_rel, Some(live))
    }

    fn push_slot(
        &self,
        name: String,
        rel: SharedRelation,
        live: Option<Arc<dyn LiveApply>>,
    ) -> RelationId {
        let mut state = self.shared.lock();
        state.slots.push(Slot {
            name,
            rel,
            live,
            queue: Vec::new(),
            bulk: Vec::new(),
            muts: Vec::new(),
            subs: Vec::new(),
            sync_since: None,
            in_flight: false,
            shed: 0,
            flushes: 0,
            flushed_queries: 0,
            mutations_applied: 0,
            deltas_pushed: 0,
            cache: Arc::new(Mutex::new(ResultCache::new(
                self.shared.config.cache_entries,
            ))),
        });
        RelationId(state.slots.len() - 1)
    }

    /// The registered name of a relation.
    pub fn relation_name(&self, relation: RelationId) -> Option<String> {
        self.shared
            .lock()
            .slots
            .get(relation.0)
            .map(|s| s.name.clone())
    }

    /// Submits a query against a registered relation. Never blocks on
    /// evaluation: the query joins the relation's pending queue and the
    /// returned [`ResponseHandle`] resolves when a flush answers it. When
    /// the queue is bounded ([`ServeConfig::max_pending`]) and full, the
    /// call **blocks until a flush frees space** — backpressure, not
    /// unbounded growth; use [`RankServer::try_submit`] to shed instead.
    ///
    /// Errors immediately with [`QueryError::Shutdown`] after
    /// [`RankServer::shutdown`] (including while blocked on a full queue),
    /// and with [`QueryError::InvalidParameter`] for a [`RelationId`] this
    /// server never issued. Per-query evaluation errors (incompatible
    /// algorithm, no set answer, …) are *not* reported here — they resolve
    /// through the handle, leaving the rest of the flush unharmed.
    pub fn submit(
        &self,
        relation: RelationId,
        query: RankQuery,
    ) -> Result<ResponseHandle, QueryError> {
        self.admit(relation, query, None, true)
    }

    /// Like [`RankServer::submit`], but **never blocks**: a full bounded
    /// queue sheds the query immediately with [`QueryError::Overloaded`]
    /// (counted in [`ServeCost::shed`] / [`ServeMetrics::shed`]). With
    /// unbounded queues it is identical to `submit`.
    pub fn try_submit(
        &self,
        relation: RelationId,
        query: RankQuery,
    ) -> Result<ResponseHandle, QueryError> {
        self.admit(relation, query, None, false)
    }

    /// Like [`RankServer::submit`], with per-submission [`SubmitOptions`]:
    /// a deadline (expired ⇒ shed with [`QueryError::TimedOut`] at
    /// dequeue, without evaluation) and a [`Priority`] class. Submissions
    /// made this way are **tracked**: dropping the returned handle cancels
    /// the query the same way an expired deadline does.
    pub fn submit_with(
        &self,
        relation: RelationId,
        query: RankQuery,
        opts: SubmitOptions,
    ) -> Result<ResponseHandle, QueryError> {
        self.admit(relation, query, Some(opts), true)
    }

    /// Like [`RankServer::submit_with`], but shedding at a full bounded
    /// queue (the [`RankServer::try_submit`] behavior).
    pub fn try_submit_with(
        &self,
        relation: RelationId,
        query: RankQuery,
        opts: SubmitOptions,
    ) -> Result<ResponseHandle, QueryError> {
        self.admit(relation, query, Some(opts), false)
    }

    fn admit(
        &self,
        relation: RelationId,
        query: RankQuery,
        opts: Option<SubmitOptions>,
        block: bool,
    ) -> Result<ResponseHandle, QueryError> {
        if matches!(self.shared.chaos("admit"), Some(FaultAction::Overload)) {
            return Err(QueryError::Overloaded);
        }
        let (cancel, class) = match &opts {
            Some(o) => {
                let token = match o.deadline {
                    Some(d) => CancelToken::with_deadline(Instant::now() + d),
                    None => CancelToken::new(),
                };
                (Some(token), o.priority)
            }
            None => (None, Priority::Latency),
        };
        let query = match &cancel {
            Some(token) => query.cancel_token(token.clone()),
            None => query,
        };
        let (tx, rx) = mpsc::channel();
        let id = QueryId(self.next_query.fetch_add(1, Ordering::Relaxed));
        let mut state = self.shared.lock();
        loop {
            if state.shutdown {
                return Err(QueryError::Shutdown);
            }
            let slot = state.slots.get_mut(relation.0).ok_or_else(|| {
                QueryError::InvalidParameter(format!("unknown relation {relation}"))
            })?;
            let depth = match class {
                Priority::Latency => slot.queue.len(),
                Priority::Bulk => slot.bulk.len(),
            };
            match self.shared.config.max_pending {
                Some(cap) if depth >= cap => {
                    if !block {
                        slot.shed += 1;
                        return Err(QueryError::Overloaded);
                    }
                    // Backpressure: wait for a worker to take the queue
                    // (or for shutdown). Spurious wake-ups just re-check.
                    state = self.shared.wait(state);
                }
                _ => break,
            }
        }
        let slot = &mut state.slots[relation.0];
        let target = match class {
            Priority::Latency => &mut slot.queue,
            Priority::Bulk => &mut slot.bulk,
        };
        let depth_at_admit = target.len() + 1;
        target.push(Pending {
            query,
            submitted_at: Instant::now(),
            depth_at_admit,
            class,
            requeued: false,
            tx,
        });
        maybe_flush(&mut state, relation.0, &self.shared.config);
        drop(state);
        // Wake a worker (flush enqueued) or the scheduler (deadline
        // bookkeeping) — one condvar serves both roles.
        self.shared.notify();
        Ok(ResponseHandle::new(id, rx, cancel))
    }

    /// Submits a mutation against a live relation (see
    /// [`RankServer::register_live`]). Never blocks on application: the
    /// mutation joins the relation's flush pipeline and is applied by a
    /// worker **before** that flush's queries evaluate, so batched queries
    /// observe it and the per-relation FIFO latch serializes it against
    /// every other flush. The returned [`MutationHandle`] resolves to the
    /// backend's [`MutationEffect`](prf_core::live::MutationEffect) — or
    /// the validation error that rejected the mutation, which deliberately
    /// leaves the relation unchanged.
    ///
    /// Errors immediately with [`QueryError::Shutdown`] after
    /// [`RankServer::shutdown`] and with [`QueryError::InvalidParameter`]
    /// for an unknown relation or one not registered via `register_live`.
    /// Mutations are exempt from [`ServeConfig::max_pending`] — they are
    /// lightweight; await the handle for application-level backpressure.
    pub fn apply(
        &self,
        relation: RelationId,
        mutation: Mutation,
    ) -> Result<MutationHandle, QueryError> {
        if matches!(self.shared.chaos("admit"), Some(FaultAction::Overload)) {
            return Err(QueryError::Overloaded);
        }
        let (tx, rx) = mpsc::channel();
        let id = QueryId(self.next_query.fetch_add(1, Ordering::Relaxed));
        let mut state = self.shared.lock();
        if state.shutdown {
            return Err(QueryError::Shutdown);
        }
        let slot = state
            .slots
            .get_mut(relation.0)
            .ok_or_else(|| QueryError::InvalidParameter(format!("unknown relation {relation}")))?;
        if slot.live.is_none() {
            return Err(QueryError::InvalidParameter(format!(
                "relation {relation} (`{}`) is not live; register it with `register_live` \
                 to accept mutations",
                slot.name
            )));
        }
        slot.muts.push(PendingMut {
            mutation,
            submitted_at: Instant::now(),
            requeued: false,
            tx,
        });
        maybe_flush(&mut state, relation.0, &self.shared.config);
        drop(state);
        self.shared.notify();
        Ok(MutationHandle::new(id, rx))
    }

    /// Registers a **standing query** against a relation. The returned
    /// [`SubscriptionHandle`] first receives an initial ranking snapshot
    /// (within one [`ServeConfig::max_delay`] deadline), then a
    /// [`RankingDelta`] after **every** flush that applied mutations to the
    /// relation — even when the ranking did not change, so subscribers can
    /// count mutation batches by counting deltas. Subscribing to a non-live
    /// relation is allowed: the stream delivers the snapshot and then stays
    /// silent until shutdown.
    ///
    /// Dropping the handle **unsubscribes immediately**: the subscription
    /// and its queued deltas are freed at the drop, not at the server's
    /// next push.
    ///
    /// Errors immediately with [`QueryError::Shutdown`] after
    /// [`RankServer::shutdown`] and with [`QueryError::InvalidParameter`]
    /// for an unknown relation. A query that fails to *evaluate* reports
    /// the error through the handle and terminates only its own
    /// subscription.
    pub fn subscribe(
        &self,
        relation: RelationId,
        query: RankQuery,
    ) -> Result<SubscriptionHandle, QueryError> {
        let (tx, rx) = mpsc::channel();
        let id = QueryId(self.next_query.fetch_add(1, Ordering::Relaxed));
        let mut state = self.shared.lock();
        if state.shutdown {
            return Err(QueryError::Shutdown);
        }
        let slot = state
            .slots
            .get_mut(relation.0)
            .ok_or_else(|| QueryError::InvalidParameter(format!("unknown relation {relation}")))?;
        slot.subs.push(Subscription {
            id,
            query,
            last: None,
            seq: 0,
            tx,
        });
        if slot.sync_since.is_none() {
            slot.sync_since = Some(Instant::now());
        }
        maybe_flush(&mut state, relation.0, &self.shared.config);
        drop(state);
        self.shared.notify();
        let unsubscribe = {
            let shared = Arc::downgrade(&self.shared);
            let slot_idx = relation.0;
            Box::new(move || {
                if let Some(shared) = shared.upgrade() {
                    let mut state = shared.lock();
                    if let Some(slot) = state.slots.get_mut(slot_idx) {
                        slot.subs.retain(|s| s.id != id);
                    }
                    drop(state);
                    shared.notify();
                }
            })
        };
        Ok(SubscriptionHandle::new(id, rx, Some(unsubscribe)))
    }

    /// Number of queries currently waiting in the pending queues (both
    /// classes; not counting flushes already handed to workers).
    pub fn pending(&self) -> usize {
        self.shared
            .lock()
            .slots
            .iter()
            .map(|s| s.queue.len() + s.bulk.len())
            .sum()
    }

    /// A point-in-time snapshot of the serving counters, summed over all
    /// registered relations.
    ///
    /// # Consistency
    ///
    /// The per-relation counters (`pending`, `in_flight`, `shed`,
    /// `flushes`, `flushed_queries`, `mutations_applied`, `deltas_pushed`,
    /// `subscribers_live`) are read in **one pass under a single
    /// acquisition of the server's state lock** — the same lock every
    /// flush's completion write-back holds — so they are mutually
    /// consistent: a snapshot observes each flush either entirely before
    /// or entirely after its write-back, never a half-recorded one. The
    /// process-wide counters (`panics_caught`, `timed_out`,
    /// `workers_respawned`, `poisoned_locks`, `cache_*`) are lock-free
    /// atomics updated outside that lock; each is individually monotone,
    /// but they may run ahead of the slot view by whatever an in-flight
    /// flush has already done (e.g. `cache_hits` can count an answer whose
    /// flush has not yet written back to `flushes`).
    pub fn metrics(&self) -> ServeMetrics {
        // The lock is taken first: every slot-derived field below comes
        // from this one critical section.
        let state = self.shared.lock();
        let mut m = ServeMetrics {
            panics_caught: self.shared.panics_caught.load(Ordering::Relaxed),
            timed_out: self.shared.timed_out.load(Ordering::Relaxed),
            workers_respawned: self.shared.respawned.load(Ordering::Relaxed),
            poisoned_locks: self.shared.poisoned.load(Ordering::Relaxed),
            cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.shared.cache_misses.load(Ordering::Relaxed),
            cache_invalidations: self.shared.cache_invalidations.load(Ordering::Relaxed),
            ..ServeMetrics::default()
        };
        for slot in &state.slots {
            m.pending += slot.queue.len() + slot.bulk.len();
            m.in_flight += slot.in_flight as usize;
            m.shed += slot.shed;
            m.flushes += slot.flushes;
            m.flushed_queries += slot.flushed_queries;
            m.mutations_applied += slot.mutations_applied;
            m.deltas_pushed += slot.deltas_pushed;
            m.subscribers_live += slot.subs.len();
        }
        m
    }

    /// Shuts the server down: rejects new submissions, lets the scheduler
    /// **drain** every pending queue through the worker pool — in-flight
    /// queries are evaluated (their provenance records
    /// [`FlushTrigger::Shutdown`]), not dropped — and joins every thread,
    /// supervisor included. Blocks until the drain completes. Idempotent;
    /// [`Drop`] calls it too.
    pub fn shutdown(&self) {
        self.shared.lock().shutdown = true;
        self.shared.notify();
        let scheduler = lock_recover(&self.scheduler, &self.shared.poisoned).take();
        if let Some(handle) = scheduler {
            // If the scheduler panicked instead of draining, its failsafe
            // already cleared the queues (handles resolve to `Shutdown`)
            // and stopped the pool; nothing to redo here.
            let _ = handle.join();
        }
        let supervisor = lock_recover(&self.supervisor, &self.shared.poisoned).take();
        if let Some(handle) = supervisor {
            let _ = handle.join();
        }
        self.workers.join_all(&self.shared);
    }
}

impl Drop for RankServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for RankServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.lock();
        f.debug_struct("RankServer")
            .field("relations", &state.slots.len())
            .field(
                "pending",
                &state
                    .slots
                    .iter()
                    .map(|s| s.queue.len() + s.bulk.len())
                    .sum::<usize>(),
            )
            .field("workers", &self.shared.config.workers)
            .field("shutdown", &state.shutdown)
            .finish()
    }
}

/// Failsafe for an abnormal **scheduler** death: on unwind, reject future
/// submissions, stop the pool, release every FIFO latch, and drop every
/// queued sender so pending handles resolve to `Shutdown` instead of
/// blocking forever. After a normal exit the drain already emptied the
/// queues and set the flags, so the guard is a no-op. (Workers need no
/// failsafe: their panics are caught and converted into re-queues.)
struct Failsafe<'a>(&'a Shared);

impl Drop for Failsafe<'_> {
    fn drop(&mut self) {
        let mut state = self.0.lock();
        state.shutdown = true;
        state.pool_stop = true;
        state.work.clear();
        for slot in state.slots.iter_mut() {
            slot.queue.clear();
            slot.bulk.clear();
            slot.muts.clear();
            // Dropping the subscriptions' senders disconnects the
            // subscribers' channels: their `recv` resolves to `Shutdown`.
            slot.subs.clear();
            slot.sync_since = None;
            slot.in_flight = false;
        }
        drop(state);
        self.0.notify();
    }
}

/// The scheduler: pure deadline bookkeeping. Sleeps until the earliest
/// pending deadline (latency or bulk), moves due (and size-triggered)
/// queues onto the work queue, and hands them to the pool — it never
/// evaluates a flush itself. On shutdown it keeps feeding the pool until
/// every queue is empty and every flush completed, then stops the pool and
/// exits.
fn scheduler_loop(shared: &Shared) {
    let config = &shared.config;
    let mut state = shared.lock();
    loop {
        if state.shutdown {
            // Drain: move every unlatched queue to the pool, then wait for
            // the latches to clear (workers re-notify on completion). A
            // latched relation's refilled queue becomes eligible once its
            // in-flight flush completes.
            loop {
                let mut fed = false;
                for i in 0..state.slots.len() {
                    if state.slots[i].due() && !state.slots[i].in_flight {
                        take_flush(&mut state, i, FlushTrigger::Shutdown, true);
                        fed = true;
                    }
                }
                if fed {
                    shared.notify();
                }
                let drained =
                    state.work.is_empty() && state.slots.iter().all(|s| !s.due() && !s.in_flight);
                if drained {
                    state.pool_stop = true;
                    // End every subscription stream: dropping the senders
                    // disconnects the channels, so subscribers' `recv`
                    // resolves to `Shutdown` after any final deltas the
                    // drain already delivered.
                    for slot in state.slots.iter_mut() {
                        slot.subs.clear();
                    }
                    drop(state);
                    shared.notify();
                    return;
                }
                state = shared.wait(state);
            }
        }

        let now = Instant::now();
        let mut next_due: Option<Instant> = None;
        let mut fed = false;
        for i in 0..state.slots.len() {
            let slot = &state.slots[i];
            if !slot.due() || slot.in_flight {
                continue;
            }
            let take_bulk = slot.take_bulk_now(config, now);
            if slot.load() >= config.max_batch || slot.bulk.len() >= config.max_batch {
                take_flush(&mut state, i, FlushTrigger::SizeLimit, take_bulk);
                fed = true;
                continue;
            }
            let mut earliest: Option<Instant> = slot.anchor().map(|a| a + config.max_delay);
            if let Some(bulk_due) = slot.bulk_due_at(config.bulk_delay) {
                earliest = Some(earliest.map_or(bulk_due, |e| e.min(bulk_due)));
            }
            let due = earliest.expect("a due slot has an anchor");
            if due <= now {
                take_flush(&mut state, i, FlushTrigger::Deadline, take_bulk);
                fed = true;
            } else {
                next_due = Some(next_due.map_or(due, |d| d.min(due)));
            }
        }
        if fed {
            shared.notify();
        }

        state = match next_due {
            // Sleep exactly until the earliest pending deadline (spurious
            // wake-ups just re-check).
            Some(due) => shared.wait_timeout(state, due.saturating_duration_since(now)),
            None => shared.wait(state),
        };
    }
}

/// How one worker round ended.
enum WorkerRun {
    /// The flush executed (possibly with per-entry errors contained).
    Done(FlushOutcome),
    /// An injected `KillWorker` fault: re-queue and exit the thread.
    Die,
}

/// Puts an interrupted flush's undelivered entries back at the front of
/// their queues (entries already re-queued once resolve to
/// [`QueryError::Internal`] instead), releases the FIFO latch, and re-arms
/// the initial-snapshot trigger for subscribers whose snapshot never went
/// out. Mutations consumed by the flush were already acknowledged; only
/// unprocessed ones return to the pipeline.
fn requeue_interrupted(state: &mut State, work: &mut FlushWork, reason: &str) {
    let Some(slot) = state.slots.get_mut(work.slot) else {
        return;
    };
    slot.in_flight = false;
    let mut latency = Vec::new();
    let mut bulk = Vec::new();
    for mut p in work.pending.drain(..) {
        if p.requeued {
            let _ = p.tx.send(Err(QueryError::Internal {
                reason: format!("flush interrupted twice: {reason}"),
            }));
        } else {
            p.requeued = true;
            match p.class {
                Priority::Latency => latency.push(p),
                Priority::Bulk => bulk.push(p),
            }
        }
    }
    slot.queue.splice(0..0, latency);
    slot.bulk.splice(0..0, bulk);
    let mut muts = Vec::new();
    for mut m in work.muts.drain(..) {
        if m.requeued {
            let _ = m.tx.send(Err(QueryError::Internal {
                reason: format!("flush interrupted twice: {reason}"),
            }));
        } else {
            m.requeued = true;
            muts.push(m);
        }
    }
    slot.muts.splice(0..0, muts);
    if work.subs.iter().any(|s| s.last.is_none()) && slot.sync_since.is_none() {
        slot.sync_since = Some(Instant::now());
    }
}

/// A flush worker: pops flushes off the work queue, evaluates them with
/// the lock released, releases the relation's FIFO latch, and re-notifies
/// — the scheduler re-checks the (possibly refilled) queue, and blocked
/// submitters re-check the bound. A panic escaping a flush is caught here:
/// the undelivered entries are re-queued and the worker lives on.
pub(crate) fn worker_loop(shared: &Shared, ctl: &WorkerCtl) {
    let mut state = shared.lock();
    loop {
        ctl.beats.fetch_add(1, Ordering::Release);
        if ctl.superseded.load(Ordering::Acquire) {
            // A compensating worker replaced this one while it was stuck;
            // exit to keep the pool at its configured size.
            return;
        }
        if let Some(mut work) = state.work.pop_front() {
            drop(state);
            ctl.busy.store(true, Ordering::Release);
            let run = catch_unwind(AssertUnwindSafe(|| {
                if matches!(shared.chaos("worker"), Some(FaultAction::Die)) {
                    return WorkerRun::Die;
                }
                WorkerRun::Done(execute_flush(&mut work, shared))
            }));
            ctl.busy.store(false, Ordering::Release);
            ctl.beats.fetch_add(1, Ordering::Release);
            state = shared.lock();
            match run {
                Ok(WorkerRun::Done(outcome)) => {
                    if let Some(slot) = state.slots.get_mut(work.slot) {
                        slot.in_flight = false;
                        slot.flushes += 1;
                        slot.flushed_queries += outcome.answered;
                        slot.mutations_applied += outcome.mutations_applied;
                        slot.deltas_pushed += outcome.deltas_pushed;
                        // Write the subscriptions' new sync points back
                        // (the FIFO latch guarantees no other flush touched
                        // them meanwhile); drop subscriptions that errored
                        // or disconnected.
                        for (id, update) in outcome.subs {
                            match update {
                                Some((last, seq)) => {
                                    if let Some(sub) = slot.subs.iter_mut().find(|s| s.id == id) {
                                        sub.last = Some(last);
                                        sub.seq = seq;
                                    }
                                }
                                None => slot.subs.retain(|s| s.id != id),
                            }
                        }
                    }
                }
                Ok(WorkerRun::Die) => {
                    requeue_interrupted(&mut state, &mut work, "worker killed by injected fault");
                    drop(state);
                    shared.notify();
                    return;
                }
                Err(payload) => {
                    shared.panics_caught.fetch_add(1, Ordering::Relaxed);
                    let reason = panic_reason(payload.as_ref());
                    requeue_interrupted(&mut state, &mut work, &reason);
                }
            }
            drop(state);
            shared.notify();
            state = shared.lock();
            continue;
        }
        if state.pool_stop {
            return;
        }
        state = shared.wait(state);
    }
}

/// Per-subscription write-back entry of a [`FlushOutcome`]:
/// `Some((last_order, next_seq))` keeps the subscription with a new sync
/// point, `None` unregisters it (evaluation error or disconnected handle).
type SubWriteBack = (QueryId, Option<(Vec<TupleId>, u64)>);

/// Where one pending entry's answer comes from in a flush's evaluation.
#[derive(Clone, Copy)]
enum Src {
    /// The entry joined the walk: its answer is the batch result at this
    /// index.
    Eval(usize),
    /// The entry coalesced onto an identical earlier untracked entry; its
    /// answer is a copy of the batch result at this index.
    Alias(usize),
}

/// What one flush did beyond answering its queries, reported back to the
/// slot under the lock.
struct FlushOutcome {
    /// Mutations this flush applied successfully.
    mutations_applied: u64,
    /// Deltas this flush delivered to live subscribers.
    deltas_pushed: u64,
    /// Query answers this flush delivered (evaluated entries, not
    /// deadline sheds).
    answered: u64,
    /// Per-subscription write-back.
    subs: Vec<SubWriteBack>,
}

/// Applies the flush's mutations (acknowledging each through its
/// [`MutationHandle`]; a panicking backend resolves only that mutation to
/// [`QueryError::Internal`] and triggers a prepared-state repair), sheds
/// entries whose deadline expired with [`QueryError::TimedOut`] **before**
/// evaluation, purges and consults the relation's **result cache**
/// (serving current entries without a walk, generation-exactly), compiles
/// the rest **plus** the standing queries into one [`QueryBatch`] —
/// coalescing identical untracked queries onto one walk slot — runs it
/// with per-entry error and panic isolation, remembers cacheable answers,
/// stamps serving provenance, delivers every answer — ignoring channels
/// whose [`ResponseHandle`] was dropped — and pushes ranking deltas to the
/// subscribers.
///
/// Entries stay in `work` until the moment their answer is delivered: if a
/// panic escapes (an injected fault at the eval or deliver site), the
/// caller re-queues whatever remains.
fn execute_flush(work: &mut FlushWork, shared: &Shared) -> FlushOutcome {
    let _ = shared.chaos("flush-take");
    let mut out = FlushOutcome {
        mutations_applied: 0,
        deltas_pushed: 0,
        answered: 0,
        subs: Vec::with_capacity(work.subs.len()),
    };
    // Mutations first: every query evaluated in this flush observes every
    // mutation batched with it. The per-relation FIFO latch means no other
    // flush of this relation runs concurrently, so applying here is
    // serialized against all evaluation. Each application is isolated: a
    // panicking backend costs that one mutation (resolved `Internal`), and
    // the relation's derived state is rebuilt before anything reads it —
    // a mid-patch panic can never serve a half-patched ranking.
    let muts = std::mem::take(&mut work.muts);
    // Whether this flush may have moved the relation's state at all —
    // successful applications *and* panicked ones (a backend may mutate
    // before dying; the repair bumps the generation). Drives the cache
    // purge below, which must never under-trigger.
    let mut relation_touched = false;
    for m in muts {
        let applied = catch_unwind(AssertUnwindSafe(|| {
            let _ = shared.chaos("apply");
            match &work.live {
                Some(live) => live.apply_dyn(&m.mutation),
                // `apply` only admits mutations on live slots; tolerate an
                // impossible mismatch rather than losing the
                // acknowledgement.
                None => Err(QueryError::InvalidParameter(
                    "relation is not live".to_string(),
                )),
            }
        }));
        let result = match applied {
            Ok(result) => result,
            Err(payload) => {
                shared.panics_caught.fetch_add(1, Ordering::Relaxed);
                relation_touched = true;
                if let Some(live) = &work.live {
                    live.repair_dyn();
                }
                Err(QueryError::Internal {
                    reason: panic_reason(payload.as_ref()),
                })
            }
        };
        if result.is_ok() {
            out.mutations_applied += 1;
            relation_touched = true;
        }
        let _ = m.tx.send(result);
    }
    // A failed (rejected) mutation leaves the relation unchanged, so
    // deltas go out only when at least one mutation actually applied —
    // plus initial snapshots, which are pushed unconditionally.
    let mutated = out.mutations_applied > 0;

    // Deadline enforcement at dequeue: an expired (or client-abandoned)
    // entry is shed with `TimedOut` without ever being evaluated.
    work.pending.retain(|p| {
        if p.cancelled() {
            shared.timed_out.fetch_add(1, Ordering::Relaxed);
            let _ = p.tx.send(Err(QueryError::TimedOut));
            false
        } else {
            true
        }
    });

    // Result cache. With the relation's post-mutation generation in hand:
    // purge on any state movement, then serve every entry whose key has a
    // current remembered answer — no walk, no scheduler hop.
    let cache_on = shared.config.cache_enabled;
    let _ = shared.chaos("cache");
    let generation = work.rel.generation();
    if relation_touched {
        // Eager purge keeps the cache small and the invalidation counter
        // honest; correctness never rests on it — the lookup below is
        // generation-exact either way, so a skipped purge degrades to a
        // lazy per-key discard, never to a stale answer.
        let purged = lock_recover(&work.cache, &shared.poisoned).purge();
        if purged > 0 {
            shared
                .cache_invalidations
                .fetch_add(purged, Ordering::Relaxed);
        }
    }
    let admitted = work.pending.len();
    if cache_on && admitted > 0 {
        let mut cache = lock_recover(&work.cache, &shared.poisoned);
        let now = Instant::now();
        let mut i = 0;
        // Index loop with immediate delivery: an entry leaves
        // `work.pending` only in the same step that sends its answer, so a
        // panic anywhere here leaves the undelivered remainder in place
        // for the worker to re-queue.
        while i < work.pending.len() {
            let Some(key) = work.pending[i].query.cache_key() else {
                i += 1;
                continue;
            };
            match cache.lookup(&key, generation) {
                CacheLookup::Hit(res) => {
                    let mut res = *res;
                    let p = work.pending.remove(i);
                    res.report.serve = Some(ServeCost {
                        queue_seconds: now.duration_since(p.submitted_at).as_secs_f64(),
                        trigger: work.trigger,
                        flush_size: admitted,
                        queue_depth: p.depth_at_admit,
                        shed: work.shed,
                        served_from_cache: true,
                    });
                    shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                    out.answered += 1;
                    let _ = p.tx.send(Ok(res));
                }
                CacheLookup::Stale => {
                    shared.cache_invalidations.fetch_add(1, Ordering::Relaxed);
                    shared.cache_misses.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
                CacheLookup::Miss => {
                    shared.cache_misses.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            }
        }
    }

    let flush_size = work.pending.len();
    if flush_size == 0 && work.subs.is_empty() {
        // Nothing left to evaluate: a mutation-only flush with no
        // subscribers, one shed whole, or one answered entirely from the
        // cache.
        return out;
    }
    // Compile the walk. Identical untracked queries coalesce: the first
    // occurrence evaluates, later ones alias its result slot. Tracked
    // entries never coalesce (in either role) — each keeps its own
    // cancellation semantics, and an alias must never inherit a sibling's
    // `TimedOut`.
    let mut plan: Vec<Src> = Vec::with_capacity(flush_size);
    let mut keys: Vec<Option<QueryKey>> = Vec::with_capacity(flush_size);
    let mut first_by_key: HashMap<QueryKey, usize> = HashMap::new();
    let mut queries = Vec::with_capacity(flush_size + work.subs.len());
    for p in &work.pending {
        let key = if cache_on { p.query.cache_key() } else { None };
        let untracked = p.query.cancel_token_ref().is_none();
        let alias = key
            .as_ref()
            .filter(|_| untracked)
            .and_then(|k| first_by_key.get(k).copied());
        let src = match alias {
            Some(ri) => Src::Alias(ri),
            None => {
                let ri = queries.len();
                queries.push(p.query.clone());
                if untracked {
                    if let Some(k) = &key {
                        first_by_key.insert(k.clone(), ri);
                    }
                }
                Src::Eval(ri)
            }
        };
        plan.push(src);
        keys.push(key);
    }
    let n_eval = queries.len();
    for s in &work.subs {
        queries.push(s.query.clone());
    }
    let mut batch = QueryBatch::new().add_queries(queries);
    if let Some(threads) = shared.config.threads {
        batch = batch.parallel(threads);
    }
    let flush_start = Instant::now();
    let _ = shared.chaos("eval");
    let results = batch.run_isolated(&*work.rel);
    debug_assert_eq!(results.len(), n_eval + work.subs.len());
    let mut results: Vec<Option<Answer>> = results.into_iter().map(Some).collect();
    let sub_results = results.split_off(n_eval);

    // Remember cacheable answers before delivering: a remembered answer is
    // correct for `(key, generation)` whether or not delivery completes.
    // The generation re-read guards the offline edge (a retained handle
    // mutating the relation directly, outside the FIFO latch): a moved
    // generation skips population instead of mislabeling entries.
    if cache_on && work.rel.generation() == generation {
        let mut cache = lock_recover(&work.cache, &shared.poisoned);
        for (key, src) in keys.iter().zip(&plan) {
            let (Some(key), Src::Eval(ri)) = (key, src) else {
                continue;
            };
            if let Some(Some(Ok(res))) = results.get(*ri) {
                cache.insert(key.clone(), generation, res.clone());
            }
        }
    }

    let _ = shared.chaos("deliver");
    // Each walk slot is delivered once per use (its evaluating entry plus
    // any aliases): the last use takes the result, earlier ones clone it.
    let mut uses = vec![0usize; n_eval];
    for src in &plan {
        let (Src::Eval(ri) | Src::Alias(ri)) = src;
        uses[*ri] += 1;
    }
    let mut srcs = plan.into_iter();
    while !work.pending.is_empty() {
        let src = srcs.next().expect("plan parallels pending");
        let (Src::Eval(ri) | Src::Alias(ri)) = src;
        uses[ri] -= 1;
        let taken = if uses[ri] == 0 {
            results[ri].take()
        } else {
            results[ri].clone()
        };
        let mut result = taken.expect("each walk slot outlives its uses");
        let p = work.pending.remove(0);
        match &mut result {
            Ok(res) => {
                res.report.serve = Some(ServeCost {
                    queue_seconds: flush_start.duration_since(p.submitted_at).as_secs_f64(),
                    trigger: work.trigger,
                    flush_size,
                    queue_depth: p.depth_at_admit,
                    shed: work.shed,
                    served_from_cache: false,
                });
            }
            Err(QueryError::Internal { .. }) => {
                // The batch layer converted an evaluation panic into this
                // entry's answer; count it with the contained panics —
                // once per walk slot, so aliases don't multiply the one
                // panic they share.
                if matches!(src, Src::Eval(_)) {
                    shared.panics_caught.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {}
        }
        out.answered += 1;
        // A dropped handle disconnects the channel; the failed send is the
        // intended "discard the answer" path and must not stop the flush.
        let _ = p.tx.send(result);
    }
    for (sub, result) in std::mem::take(&mut work.subs).into_iter().zip(sub_results) {
        let result = result.expect("sub slots are never aliased or taken");
        match result {
            Err(err) => {
                if matches!(err, QueryError::Internal { .. }) {
                    shared.panics_caught.fetch_add(1, Ordering::Relaxed);
                }
                // A standing query that stops evaluating terminates its
                // own subscription with the error.
                let _ = sub.tx.send(Err(err));
                out.subs.push((sub.id, None));
            }
            Ok(res) => {
                let order = res.ranking.order().to_vec();
                if sub.last.is_none() || mutated {
                    let (entered, left, moved) = diff_orders(sub.last.as_deref(), &order);
                    let delta = RankingDelta {
                        seq: sub.seq,
                        entered,
                        left,
                        moved,
                        ranking: res.ranking,
                    };
                    if sub.tx.send(Ok(delta)).is_ok() {
                        out.deltas_pushed += 1;
                        out.subs.push((sub.id, Some((order, sub.seq + 1))));
                    } else {
                        // The subscriber dropped its handle: unregister.
                        out.subs.push((sub.id, None));
                    }
                } else {
                    // Re-evaluated for a sibling's initial snapshot with no
                    // mutation in between: the ranking is unchanged — no
                    // push, but refresh the sync point.
                    out.subs.push((sub.id, Some((order, sub.seq))));
                }
            }
        }
    }
    out
}

/// The `(entered, left, moved)` payload of a [`RankingDelta`].
type OrderDiff = (Vec<TupleId>, Vec<TupleId>, Vec<(TupleId, usize, usize)>);

/// Position-level diff between a subscriber's previous ranking order and
/// the freshly evaluated one — the payload of a [`RankingDelta`].
fn diff_orders(old: Option<&[TupleId]>, new: &[TupleId]) -> OrderDiff {
    let old = old.unwrap_or(&[]);
    let old_pos: HashMap<TupleId, usize> = old.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let mut entered = Vec::new();
    let mut moved = Vec::new();
    for (i, &t) in new.iter().enumerate() {
        match old_pos.get(&t) {
            None => entered.push(t),
            Some(&j) if j != i => moved.push((t, j, i)),
            _ => {}
        }
    }
    let new_set: HashSet<TupleId> = new.iter().copied().collect();
    let left = old
        .iter()
        .copied()
        .filter(|t| !new_set.contains(t))
        .collect();
    (entered, left, moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_pdb::IndependentDb;

    fn db() -> IndependentDb {
        IndependentDb::from_pairs([
            (10.0, 0.4),
            (9.0, 0.45),
            (8.0, 0.8),
            (7.0, 0.95),
            (6.0, 0.3),
            (5.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_matches_direct_query() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
        let rel = server.register("db", db());
        assert_eq!(server.relation_name(rel).as_deref(), Some("db"));
        let handle = server.submit(rel, RankQuery::pt(2)).unwrap();
        let got = handle.recv().unwrap();
        let want = RankQuery::pt(2).run(&db()).unwrap();
        assert_eq!(got.ranking.order(), want.ranking.order());
        assert_eq!(got.values.as_complex(), want.values.as_complex());
        let serve = got.report.serve.expect("provenance stamped");
        assert!(serve.queue_seconds >= 0.0);
        assert!(serve.flush_size >= 1);
        assert!(serve.queue_depth >= 1);
        assert_eq!(serve.shed, 0);
    }

    #[test]
    fn size_limit_triggers_flush_without_deadline() {
        // A one-hour deadline: only the size limit can flush.
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_secs(3600))
                .max_batch(2),
        );
        let rel = server.register("db", db());
        let a = server.submit(rel, RankQuery::pt(1)).unwrap();
        let b = server.submit(rel, RankQuery::prfe(0.9)).unwrap();
        let a = a.recv().unwrap();
        let b = b.recv().unwrap();
        assert_eq!(a.report.serve.unwrap().trigger, FlushTrigger::SizeLimit);
        assert_eq!(b.report.serve.unwrap().flush_size, 2);
        // Both shared one walk.
        assert_eq!(a.report.batch.unwrap().consumers, 2);
        // Admission depths record the queue growing.
        assert_eq!(a.report.serve.unwrap().queue_depth, 1);
        assert_eq!(b.report.serve.unwrap().queue_depth, 2);
    }

    #[test]
    fn unknown_relation_errors_at_submission() {
        let server = RankServer::new(ServeConfig::new());
        let err = server.submit(RelationId(7), RankQuery::pt(1)).unwrap_err();
        assert!(matches!(err, QueryError::InvalidParameter(_)), "{err}");
        let err = server
            .try_submit(RelationId(7), RankQuery::pt(1))
            .unwrap_err();
        assert!(matches!(err, QueryError::InvalidParameter(_)), "{err}");
    }

    #[test]
    fn per_query_errors_resolve_through_the_handle() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO).max_batch(3));
        let rel = server.register("db", db());
        let bad = server
            .submit(
                rel,
                RankQuery::pt(2).algorithm(prf_core::query::Algorithm::LogDomain),
            )
            .unwrap();
        let good = server.submit(rel, RankQuery::pt(2)).unwrap();
        assert!(matches!(
            bad.recv(),
            Err(QueryError::IncompatibleAlgorithm { .. })
        ));
        assert!(good.recv().is_ok());
    }

    #[test]
    fn try_submit_sheds_at_the_bound() {
        // A one-hour deadline and a high batch limit: nothing flushes, so
        // the 2-slot bound must fill and shed.
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_secs(3600))
                .max_batch(1000)
                .max_pending(2),
        );
        let rel = server.register("db", db());
        let a = server.try_submit(rel, RankQuery::pt(1)).unwrap();
        let b = server.try_submit(rel, RankQuery::pt(1)).unwrap();
        let shed = server.try_submit(rel, RankQuery::pt(1));
        assert!(matches!(shed, Err(QueryError::Overloaded)), "{shed:?}");
        assert_eq!(server.metrics().shed, 1);
        // The accepted queries still resolve (shutdown drains them) and
        // carry the shed counter in their provenance.
        server.shutdown();
        let a = a.recv().unwrap();
        let b = b.recv().unwrap();
        assert_eq!(a.report.serve.unwrap().trigger, FlushTrigger::Shutdown);
        assert_eq!(a.report.serve.unwrap().shed, 1);
        assert_eq!(b.report.serve.unwrap().shed, 1);
    }

    #[test]
    fn blocked_submit_resumes_after_a_flush_frees_space() {
        let server = Arc::new(RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_millis(1))
                .max_pending(1),
        ));
        let rel = server.register("db", db());
        // Saturate the queue, then submit from another thread: the call
        // must block until the deadline flush frees the slot, then admit.
        let first = server.submit(rel, RankQuery::pt(1)).unwrap();
        let blocked = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.submit(rel, RankQuery::pt(2)))
        };
        let second = blocked.join().unwrap().unwrap();
        assert!(first.recv().is_ok());
        assert!(second.recv().is_ok());
    }

    #[test]
    fn panicking_backend_resolves_to_internal_and_server_survives() {
        use prf_core::query::CorrelationClass;
        use prf_core::weights::WeightFunction;
        use prf_numeric::Complex;

        /// A backend whose kernels die — stands in for any bug that makes
        /// evaluation panic. Panic isolation must resolve the doomed
        /// query's handle to `Internal` and leave the server serving.
        struct Poisoned;
        impl ProbabilisticRelation for Poisoned {
            fn n_tuples(&self) -> usize {
                2
            }
            fn tuple_scores(&self) -> Vec<f64> {
                vec![2.0, 1.0]
            }
            fn tuple_marginals(&self) -> Vec<f64> {
                vec![0.5, 0.5]
            }
            fn correlation_class(&self) -> CorrelationClass {
                CorrelationClass::Graphical
            }
            fn prf_values(
                &self,
                _omega: &(dyn WeightFunction + Sync),
                _threads: Option<usize>,
            ) -> Vec<Complex> {
                panic!("injected kernel failure")
            }
            fn prfe_values(&self, _alpha: Complex) -> Vec<Complex> {
                panic!("injected kernel failure")
            }
        }

        let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO));
        let rel = server.register("poisoned", Poisoned);
        let first = server.submit(rel, RankQuery::pt(1)).unwrap();
        // The panic is contained to this entry: its handle resolves to
        // `Internal` (never hangs), and the panic message survives.
        match first.recv() {
            Err(QueryError::Internal { reason }) => {
                assert!(reason.contains("injected kernel failure"), "{reason}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        // The server is still alive: healthy relations keep serving, and
        // the doomed one keeps resolving (not hanging) per submission.
        let healthy = server.register("db", db());
        let ok = server.submit(healthy, RankQuery::pt(1)).unwrap();
        assert!(ok.recv().is_ok());
        let again = server.submit(rel, RankQuery::prfe(0.9)).unwrap();
        assert!(matches!(again.recv(), Err(QueryError::Internal { .. })));
        assert!(server.metrics().panics_caught >= 2);
        server.shutdown();
    }

    #[test]
    fn query_ids_are_unique_and_monotone() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO));
        let rel = server.register("db", db());
        let ids: Vec<u64> = (0..5)
            .map(|_| {
                server
                    .submit(rel, RankQuery::escore())
                    .unwrap()
                    .id()
                    .as_u64()
            })
            .collect();
        for w in ids.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn live_mutations_apply_and_notify_subscribers() {
        use prf_core::live::{LiveRelation, Mutation};

        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
        let live = Arc::new(LiveRelation::new(db()));
        let rel = server.register_live("live", Arc::clone(&live));

        // The subscription's initial snapshot: everything "enters".
        let sub = server.subscribe(rel, RankQuery::pt(3)).unwrap();
        let snapshot = sub.recv().unwrap();
        assert_eq!(snapshot.seq, 0);
        assert_eq!(snapshot.entered.len(), snapshot.ranking.len());
        assert!(snapshot.left.is_empty() && snapshot.moved.is_empty());

        // Push the lowest-probability tuple to certainty: the PT(3) top set
        // must change, and the subscriber must see a delta for it.
        let before = snapshot.ranking.order().to_vec();
        let target = *before.last().unwrap();
        let effect = server
            .apply(rel, Mutation::Reweight(target, 1.0))
            .unwrap()
            .recv()
            .unwrap();
        assert!(matches!(
            effect,
            prf_core::live::MutationEffect::Reweighted { tuple, new_prob, .. }
                if tuple == target && new_prob == 1.0
        ));
        let delta = sub.recv().unwrap();
        assert_eq!(delta.seq, 1);
        assert_ne!(delta.ranking.order(), &before[..]);
        assert!(!delta.is_empty());

        // Ordinary queries against the mutated relation agree with a
        // rebuilt offline copy.
        let served = server
            .submit(rel, RankQuery::pt(3))
            .unwrap()
            .recv()
            .unwrap();
        let rebuilt = RankQuery::pt(3).run(&live.snapshot_backend()).unwrap();
        assert_eq!(served.ranking.order(), rebuilt.ranking.order());
        assert_eq!(delta.ranking.order(), rebuilt.ranking.order());

        let m = server.metrics();
        assert_eq!(m.mutations_applied, 1);
        assert!(m.deltas_pushed >= 2, "{m:?}");
        assert_eq!(m.subscribers_live, 1);
        server.shutdown();
        // Shutdown ends the stream.
        assert!(matches!(sub.recv(), Err(QueryError::Shutdown)));
    }

    #[test]
    fn apply_rejects_non_live_relations() {
        use prf_core::live::Mutation;

        let server = RankServer::new(ServeConfig::new());
        let rel = server.register("static", db());
        let err = server
            .apply(rel, Mutation::Reweight(prf_core::TupleId(0), 0.5))
            .unwrap_err();
        assert!(matches!(err, QueryError::InvalidParameter(_)), "{err}");
        let err = server
            .apply(RelationId(9), Mutation::Reweight(prf_core::TupleId(0), 0.5))
            .unwrap_err();
        assert!(matches!(err, QueryError::InvalidParameter(_)), "{err}");
    }

    #[test]
    fn rejected_mutation_resolves_through_handle_and_pushes_no_delta() {
        use prf_core::live::{LiveRelation, Mutation};

        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
        let live = Arc::new(LiveRelation::new(db()));
        let rel = server.register_live("live", Arc::clone(&live));
        let sub = server.subscribe(rel, RankQuery::pt(2)).unwrap();
        let snapshot = sub.recv().unwrap();

        // An out-of-range probability: the backend rejects, the relation
        // is unchanged, and subscribers see no delta.
        let ack = server
            .apply(rel, Mutation::Reweight(prf_core::TupleId(0), 1.5))
            .unwrap()
            .recv();
        assert!(
            matches!(ack, Err(QueryError::InvalidParameter(_))),
            "{ack:?}"
        );
        assert!(sub.recv_timeout(Duration::from_millis(50)).is_none());
        assert_eq!(server.metrics().mutations_applied, 0);

        let served = server
            .submit(rel, RankQuery::pt(2))
            .unwrap()
            .recv()
            .unwrap();
        assert_eq!(served.ranking.order(), snapshot.ranking.order());
    }

    #[test]
    fn shutdown_drains_pending_mutations() {
        use prf_core::live::{LiveRelation, Mutation};

        // A one-hour deadline: only the shutdown drain can flush.
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_secs(3600)));
        let live = Arc::new(LiveRelation::new(db()));
        let rel = server.register_live("live", Arc::clone(&live));
        let ack = server
            .apply(
                rel,
                Mutation::Insert {
                    score: 11.0,
                    prob: 0.25,
                },
            )
            .unwrap();
        server.shutdown();
        assert!(ack.recv().is_ok());
        assert_eq!(live.snapshot_backend().len(), 7);
        assert_eq!(server.metrics().mutations_applied, 1);
    }

    #[test]
    fn standing_query_evaluation_error_terminates_only_that_subscription() {
        use prf_core::live::{LiveRelation, Mutation};
        use prf_core::query::Algorithm;

        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
        let live = Arc::new(LiveRelation::new(db()));
        let rel = server.register_live("live", Arc::clone(&live));
        // PT with a log-domain algorithm is incompatible — the standing
        // query fails at its first evaluation and self-terminates.
        let bad = server
            .subscribe(rel, RankQuery::pt(2).algorithm(Algorithm::LogDomain))
            .unwrap();
        let good = server.subscribe(rel, RankQuery::pt(2)).unwrap();
        assert!(matches!(
            bad.recv(),
            Err(QueryError::IncompatibleAlgorithm { .. })
        ));
        assert!(matches!(bad.recv(), Err(QueryError::Shutdown)));
        assert!(good.recv().is_ok());
        // The healthy subscriber keeps receiving deltas.
        server
            .apply(rel, Mutation::Reweight(prf_core::TupleId(4), 0.9))
            .unwrap()
            .recv()
            .unwrap();
        assert_eq!(good.recv().unwrap().seq, 1);
        assert_eq!(server.metrics().subscribers_live, 1);
    }

    #[test]
    fn metrics_count_flushes_and_queries() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO).workers(3));
        let rel = server.register("db", db());
        let handles: Vec<_> = (0..6)
            .map(|_| server.submit(rel, RankQuery::pt(1)).unwrap())
            .collect();
        for h in handles {
            assert!(h.recv().is_ok());
        }
        server.shutdown();
        let m = server.metrics();
        assert_eq!(m.flushed_queries, 6);
        assert!(m.flushes >= 1 && m.flushes <= 6, "{m:?}");
        assert_eq!(m.pending, 0);
        assert_eq!(m.in_flight, 0);
    }

    #[test]
    fn expired_deadline_sheds_without_evaluation() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_millis(1)));
        let rel = server.register("db", db());
        let handle = server
            .submit_with(
                rel,
                RankQuery::pt(2),
                SubmitOptions::new().deadline(Duration::ZERO),
            )
            .unwrap();
        assert!(matches!(handle.recv(), Err(QueryError::TimedOut)));
        let m = server.metrics();
        assert_eq!(m.timed_out, 1);
        // Shed at dequeue: the query was never evaluated.
        assert_eq!(m.flushed_queries, 0);
    }

    #[test]
    fn dropped_tracked_handle_cancels_the_query() {
        // A one-hour deadline: only the shutdown drain dequeues, and by
        // then the handle is gone.
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_secs(3600)));
        let rel = server.register("db", db());
        let handle = server
            .submit_with(rel, RankQuery::pt(2), SubmitOptions::new())
            .unwrap();
        drop(handle); // trips the cancellation token
        server.shutdown();
        let m = server.metrics();
        assert_eq!(m.timed_out, 1);
        assert_eq!(m.flushed_queries, 0);
    }

    #[test]
    fn untracked_submissions_carry_no_cancel_token() {
        // Plain `submit` must stay on the PR 7 fast path: no token, so a
        // dropped handle only discards the answer, never the work.
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_secs(3600)));
        let rel = server.register("db", db());
        let handle = server.submit(rel, RankQuery::pt(2)).unwrap();
        drop(handle);
        server.shutdown();
        let m = server.metrics();
        assert_eq!(m.timed_out, 0);
        assert_eq!(m.flushed_queries, 1);
    }

    #[test]
    fn bulk_class_waits_for_its_own_cadence() {
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_micros(200))
                .bulk_delay(Duration::from_secs(3600)),
        );
        let rel = server.register("db", db());
        let mut bulk = server
            .submit_with(rel, RankQuery::pt(2), SubmitOptions::bulk())
            .unwrap();
        // The latency class flushes on its 200 µs deadline; the bulk query
        // does not ride along — its hour-long cadence is nowhere near due.
        let latency = server.submit(rel, RankQuery::pt(1)).unwrap();
        assert!(latency.recv().is_ok());
        assert!(bulk.recv_timeout(Duration::from_millis(50)).is_none());
        // Shutdown still drains the bulk queue.
        server.shutdown();
        let got = bulk.recv().unwrap();
        assert_eq!(got.report.serve.unwrap().trigger, FlushTrigger::Shutdown);
    }

    #[test]
    fn bulk_deadline_flushes_bulk_on_its_own() {
        // Latency deadline an hour out: only the bulk cadence can flush.
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_secs(3600))
                .bulk_delay(Duration::from_micros(200)),
        );
        let rel = server.register("db", db());
        let bulk = server
            .submit_with(rel, RankQuery::pt(2), SubmitOptions::bulk())
            .unwrap();
        let got = bulk.recv().unwrap();
        assert_eq!(got.report.serve.unwrap().trigger, FlushTrigger::Deadline);
        let want = RankQuery::pt(2).run(&db()).unwrap();
        assert_eq!(got.ranking.order(), want.ranking.order());
    }

    #[test]
    fn dropping_a_subscription_unsubscribes_immediately() {
        use prf_core::live::LiveRelation;

        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
        let live = Arc::new(LiveRelation::new(db()));
        let rel = server.register_live("live", Arc::clone(&live));
        let sub = server.subscribe(rel, RankQuery::pt(2)).unwrap();
        assert!(sub.recv().is_ok()); // initial snapshot delivered
        assert_eq!(server.metrics().subscribers_live, 1);
        drop(sub);
        // No flush in between: the drop itself removed the subscription.
        assert_eq!(server.metrics().subscribers_live, 0);
    }

    #[test]
    fn injected_eval_panic_requeues_and_answers() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
        server.inject_faults(FaultPlan::new().once("eval", FaultKind::Panic));
        let rel = server.register("db", db());
        let handle = server.submit(rel, RankQuery::pt(2)).unwrap();
        // The first flush attempt panics at the eval site (escaping the
        // batch layer); the worker re-queues the entry and the retry
        // answers it correctly.
        let got = handle.recv().unwrap();
        let want = RankQuery::pt(2).run(&db()).unwrap();
        assert_eq!(got.ranking.order(), want.ranking.order());
        assert!(server.metrics().panics_caught >= 1);
        server.shutdown();
    }

    #[test]
    fn injected_apply_panic_resolves_mutation_and_repairs() {
        use prf_core::live::{LiveRelation, Mutation};

        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
        server.inject_faults(FaultPlan::new().once("apply", FaultKind::Panic));
        let live = Arc::new(LiveRelation::new(db()));
        let rel = server.register_live("live", Arc::clone(&live));
        let ack = server
            .apply(
                rel,
                Mutation::Insert {
                    score: 11.0,
                    prob: 0.25,
                },
            )
            .unwrap()
            .recv();
        assert!(matches!(ack, Err(QueryError::Internal { .. })), "{ack:?}");
        // The panic fired before the backend changed, and the prepared
        // state was repaired: served answers still match an offline
        // rebuild of the (unchanged) relation.
        let served = server
            .submit(rel, RankQuery::pt(3))
            .unwrap()
            .recv()
            .unwrap();
        let rebuilt = RankQuery::pt(3).run(&live.snapshot_backend()).unwrap();
        assert_eq!(served.ranking.order(), rebuilt.ranking.order());
        let m = server.metrics();
        assert_eq!(m.mutations_applied, 0);
        assert!(m.panics_caught >= 1);
        server.shutdown();
    }

    #[test]
    fn killed_worker_is_respawned_and_the_flush_retried() {
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_micros(200))
                .workers(1)
                .stuck_after(Duration::from_millis(100)),
        );
        server.inject_faults(FaultPlan::new().once("worker", FaultKind::KillWorker));
        let rel = server.register("db", db());
        let handle = server.submit(rel, RankQuery::pt(1)).unwrap();
        // The only worker exits while holding this flush; the supervisor
        // must respawn one, which retries the re-queued entry.
        assert!(handle.recv().is_ok());
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.metrics().workers_respawned == 0 {
            assert!(Instant::now() < deadline, "respawn never observed");
            std::thread::sleep(Duration::from_millis(2));
        }
        server.shutdown();
    }

    #[test]
    fn twice_interrupted_entry_resolves_internal() {
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_micros(200))
                .workers(1)
                .stuck_after(Duration::from_millis(100)),
        );
        server.inject_faults(FaultPlan::new().times("worker", FaultKind::KillWorker, 2));
        let rel = server.register("db", db());
        let handle = server.submit(rel, RankQuery::pt(1)).unwrap();
        // First kill re-queues the entry; the second interruption must
        // resolve it to `Internal` instead of re-queueing forever.
        let got = handle.recv();
        assert!(matches!(got, Err(QueryError::Internal { .. })), "{got:?}");
        server.shutdown();
    }

    #[test]
    fn injected_admit_overload_sheds_the_submission() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
        server.inject_faults(FaultPlan::new().once("admit", FaultKind::Overloaded));
        let rel = server.register("db", db());
        let shed = server.submit(rel, RankQuery::pt(1));
        assert!(matches!(shed, Err(QueryError::Overloaded)), "{shed:?}");
        // One-shot: the next submission is admitted and served.
        assert!(server.submit(rel, RankQuery::pt(1)).unwrap().recv().is_ok());
    }

    #[test]
    fn result_cache_is_generation_exact_and_bounded() {
        let res = RankQuery::pt(1).run(&db()).unwrap();
        let key = RankQuery::pt(1).cache_key().unwrap();
        let key2 = RankQuery::pt(2).cache_key().unwrap();
        let mut cache = ResultCache::new(1);
        cache.insert(key.clone(), 3, res.clone());
        assert!(matches!(cache.lookup(&key, 3), CacheLookup::Hit(_)));
        // A generation mismatch discards the entry rather than serving it.
        assert!(matches!(cache.lookup(&key, 4), CacheLookup::Stale));
        assert!(matches!(cache.lookup(&key, 3), CacheLookup::Miss));
        // The cap evicts the oldest-inserted key.
        cache.insert(key.clone(), 5, res.clone());
        cache.insert(key2.clone(), 5, res.clone());
        assert!(matches!(cache.lookup(&key, 5), CacheLookup::Miss));
        assert!(matches!(cache.lookup(&key2, 5), CacheLookup::Hit(_)));
        assert_eq!(cache.purge(), 1);
        assert!(matches!(cache.lookup(&key2, 5), CacheLookup::Miss));
    }

    #[test]
    fn repeated_query_is_served_from_cache() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
        let rel = server.register("db", db());
        let first = server
            .submit(rel, RankQuery::prfe(0.9))
            .unwrap()
            .recv()
            .unwrap();
        assert!(!first.report.serve.unwrap().served_from_cache);
        let second = server
            .submit(rel, RankQuery::prfe(0.9))
            .unwrap()
            .recv()
            .unwrap();
        let serve = second.report.serve.unwrap();
        assert!(
            serve.served_from_cache,
            "repeat of an identical query on an unchanged relation must hit"
        );
        assert!(serve.queue_seconds >= 0.0);
        assert_eq!(second.ranking.order(), first.ranking.order());
        assert_eq!(second.values.as_complex(), first.values.as_complex());
        let m = server.metrics();
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        // The hit still counts as a served query.
        server.shutdown();
        assert_eq!(server.metrics().flushed_queries, 2);
    }

    #[test]
    fn mutation_invalidates_the_cache_before_the_next_answer() {
        use prf_core::live::{LiveRelation, Mutation};

        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
        let live = Arc::new(LiveRelation::new(db()));
        let rel = server.register_live("live", Arc::clone(&live));
        let before = server
            .submit(rel, RankQuery::pt(3))
            .unwrap()
            .recv()
            .unwrap();
        let target = *before.ranking.order().last().unwrap();
        server
            .apply(rel, Mutation::Reweight(target, 1.0))
            .unwrap()
            .recv()
            .unwrap();
        let after = server
            .submit(rel, RankQuery::pt(3))
            .unwrap()
            .recv()
            .unwrap();
        // The mutated flush purged the entry: the repeat re-evaluates and
        // matches a rebuilt offline copy, never the remembered answer.
        assert!(!after.report.serve.unwrap().served_from_cache);
        let rebuilt = RankQuery::pt(3).run(&live.snapshot_backend()).unwrap();
        assert_eq!(after.ranking.order(), rebuilt.ranking.order());
        assert_eq!(after.values.as_complex(), rebuilt.values.as_complex());
        assert!(server.metrics().cache_invalidations >= 1);
        // Unchanged since the mutation: the re-populated entry now hits.
        let again = server
            .submit(rel, RankQuery::pt(3))
            .unwrap()
            .recv()
            .unwrap();
        assert!(again.report.serve.unwrap().served_from_cache);
        assert_eq!(again.values.as_complex(), rebuilt.values.as_complex());
    }

    #[test]
    fn identical_untracked_queries_coalesce_onto_one_walk_slot() {
        // A one-hour deadline with a 4-query size trigger: all four land
        // in one flush. Identical and untracked, they coalesce — the walk
        // sees a single consumer.
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_secs(3600))
                .max_batch(4),
        );
        let rel = server.register("db", db());
        let handles: Vec<_> = (0..4)
            .map(|_| server.submit(rel, RankQuery::prfe(0.9)).unwrap())
            .collect();
        let answers: Vec<_> = handles.into_iter().map(|h| h.recv().unwrap()).collect();
        for a in &answers {
            assert_eq!(a.values.as_complex(), answers[0].values.as_complex());
            assert_eq!(a.report.batch.as_ref().unwrap().consumers, 1);
            // Coalesced answers are evaluated answers, not cache hits.
            assert!(!a.report.serve.as_ref().unwrap().served_from_cache);
        }
        assert_eq!(server.metrics().flushed_queries, 4);
    }

    #[test]
    fn disabling_the_cache_disables_hits_and_coalescing() {
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_secs(3600))
                .max_batch(2)
                .cache_enabled(false),
        );
        let rel = server.register("db", db());
        let a = server.submit(rel, RankQuery::pt(2)).unwrap();
        let b = server.submit(rel, RankQuery::pt(2)).unwrap();
        let a = a.recv().unwrap();
        let b = b.recv().unwrap();
        // Identical queries in one flush each pay their own walk share.
        assert_eq!(a.report.batch.unwrap().consumers, 2);
        assert_eq!(b.report.batch.unwrap().consumers, 2);
        // And a repeat across flushes re-evaluates.
        let c = server.submit(rel, RankQuery::pt(2)).unwrap();
        let d = server.submit(rel, RankQuery::pt(2)).unwrap();
        assert!(!c.recv().unwrap().report.serve.unwrap().served_from_cache);
        assert!(!d.recv().unwrap().report.serve.unwrap().served_from_cache);
        let m = server.metrics();
        assert_eq!(
            (m.cache_hits, m.cache_misses, m.cache_invalidations),
            (0, 0, 0)
        );
    }

    #[test]
    fn cache_entries_cap_bounds_remembered_keys() {
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_micros(200))
                .cache_entries(1),
        );
        let rel = server.register("db", db());
        let roundtrip = |q: RankQuery| server.submit(rel, q).unwrap().recv().unwrap();
        roundtrip(RankQuery::pt(1)); // populate {pt(1)}
        roundtrip(RankQuery::pt(2)); // evict pt(1), populate {pt(2)}
        let repeat = roundtrip(RankQuery::pt(1)); // evicted: a miss again
        assert!(!repeat.report.serve.unwrap().served_from_cache);
        assert_eq!(server.metrics().cache_hits, 0);
        let repeat = roundtrip(RankQuery::pt(1)); // now remembered again
        assert!(repeat.report.serve.unwrap().served_from_cache);
        assert_eq!(server.metrics().cache_hits, 1);
    }

    #[test]
    fn injected_cache_panic_requeues_and_answers() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
        server.inject_faults(FaultPlan::new().once("cache", FaultKind::Panic));
        let rel = server.register("db", db());
        // The panic fires before the cache is consulted; the entry is
        // re-queued and the retry answers normally.
        let got = server
            .submit(rel, RankQuery::pt(2))
            .unwrap()
            .recv()
            .unwrap();
        let want = RankQuery::pt(2).run(&db()).unwrap();
        assert_eq!(got.values.as_complex(), want.values.as_complex());
        assert!(server.metrics().panics_caught >= 1);
    }
}
