//! The [`RankServer`]: concurrent submission, per-relation queues, and the
//! deadline/size-triggered flusher thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use prf_core::query::{
    FlushTrigger, ProbabilisticRelation, QueryBatch, QueryError, RankQuery, ServeCost,
};

use crate::handle::{Answer, QueryId, ResponseHandle};

/// A relation as the server owns it: shared, type-erased, and usable from
/// both client threads (registration) and the flusher.
pub type SharedRelation = Arc<dyn ProbabilisticRelation + Send + Sync>;

/// Tuning knobs of a [`RankServer`].
///
/// The defaults (2 ms deadline, 64-query batches, serial walks) suit a
/// latency-sensitive serving mix; a zero [`ServeConfig::max_delay`] turns
/// the server into an immediate dispatcher that still batches whatever has
/// accumulated since the flusher last ran.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub(crate) max_delay: Duration,
    pub(crate) max_batch: usize,
    pub(crate) threads: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_delay: Duration::from_millis(2),
            max_batch: 64,
            threads: None,
        }
    }
}

impl ServeConfig {
    /// The default configuration (2 ms deadline, 64-query batches).
    pub fn new() -> Self {
        ServeConfig::default()
    }

    /// How long the oldest pending query may wait before its relation's
    /// queue is flushed. Zero flushes on the first flusher wake-up after
    /// every submission.
    pub fn max_delay(mut self, deadline: Duration) -> Self {
        self.max_delay = deadline;
        self
    }

    /// Queue size that triggers an immediate flush, regardless of the
    /// deadline (clamped to at least 1).
    pub fn max_batch(mut self, size: usize) -> Self {
        self.max_batch = size.max(1);
        self
    }

    /// Requests `threads` workers for each flush's shared walk (forwarded
    /// to [`QueryBatch::parallel`]).
    pub fn parallel(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }
}

/// Server-local identifier of a registered relation, returned by
/// [`RankServer::register`] and presented with every submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RelationId(pub(crate) usize);

impl std::fmt::Display for RelationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rel{}", self.0)
    }
}

/// One submission waiting in a relation's queue.
struct Pending {
    query: RankQuery,
    submitted_at: Instant,
    tx: mpsc::Sender<Answer>,
}

/// A registered relation plus its pending queue.
struct Slot {
    name: String,
    rel: SharedRelation,
    queue: Vec<Pending>,
}

/// Mutex-guarded server state shared between clients and the flusher.
struct State {
    slots: Vec<Slot>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    wake: Condvar,
}

impl Shared {
    /// Locks the state, recovering from poisoning — a panicking client
    /// thread must not wedge the flusher (or vice versa).
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A concurrent, deadline-batched front end over registered relations: see
/// the [crate docs](crate) for the architecture and a usage example.
///
/// The server is `Sync` — share it across client threads by reference
/// (e.g. `std::thread::scope`) or in an `Arc`. Dropping it shuts it down
/// and drains in-flight queries.
pub struct RankServer {
    shared: Arc<Shared>,
    flusher: Mutex<Option<JoinHandle<()>>>,
    next_query: AtomicU64,
}

impl RankServer {
    /// Starts a server (spawning its flusher thread) with the given
    /// configuration.
    pub fn new(config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                slots: Vec::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let flusher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("prf-serve-flusher".into())
                .spawn(move || {
                    // Failsafe for an abnormal flusher death (a panicking
                    // backend kernel): on unwind, reject future submissions
                    // and drop every queued sender so pending handles
                    // resolve to `Shutdown` instead of blocking forever.
                    // After a normal exit the drain already emptied the
                    // queues and set the flag, so the guard is a no-op.
                    struct Failsafe<'a>(&'a Shared);
                    impl Drop for Failsafe<'_> {
                        fn drop(&mut self) {
                            let mut state = self.0.lock();
                            state.shutdown = true;
                            for slot in state.slots.iter_mut() {
                                slot.queue.clear();
                            }
                        }
                    }
                    let _failsafe = Failsafe(&shared);
                    flusher_loop(&shared, &config);
                })
                .expect("spawning the flusher thread")
        };
        RankServer {
            shared,
            flusher: Mutex::new(Some(flusher)),
            next_query: AtomicU64::new(0),
        }
    }

    /// Registers a relation under `name`, transferring ownership to the
    /// server. Relations may be registered at any time, including while
    /// other threads are already submitting against earlier ones.
    pub fn register(
        &self,
        name: impl Into<String>,
        rel: impl ProbabilisticRelation + Send + Sync + 'static,
    ) -> RelationId {
        self.register_shared(name, Arc::new(rel))
    }

    /// Registers an already-shared relation (the caller keeps its own
    /// `Arc` for direct queries).
    pub fn register_shared(&self, name: impl Into<String>, rel: SharedRelation) -> RelationId {
        let mut state = self.shared.lock();
        state.slots.push(Slot {
            name: name.into(),
            rel,
            queue: Vec::new(),
        });
        RelationId(state.slots.len() - 1)
    }

    /// The registered name of a relation.
    pub fn relation_name(&self, relation: RelationId) -> Option<String> {
        self.shared
            .lock()
            .slots
            .get(relation.0)
            .map(|s| s.name.clone())
    }

    /// Submits a query against a registered relation. Never blocks on
    /// evaluation: the query joins the relation's pending queue and the
    /// returned [`ResponseHandle`] resolves when a flush answers it.
    ///
    /// Errors immediately with [`QueryError::Shutdown`] after
    /// [`RankServer::shutdown`], and with
    /// [`QueryError::InvalidParameter`] for a [`RelationId`] this server
    /// never issued. Per-query evaluation errors (incompatible algorithm,
    /// no set answer, …) are *not* reported here — they resolve through
    /// the handle, leaving the rest of the flush unharmed.
    pub fn submit(
        &self,
        relation: RelationId,
        query: RankQuery,
    ) -> Result<ResponseHandle, QueryError> {
        let (tx, rx) = mpsc::channel();
        let id = QueryId(self.next_query.fetch_add(1, Ordering::Relaxed));
        {
            let mut state = self.shared.lock();
            if state.shutdown {
                return Err(QueryError::Shutdown);
            }
            let slot = state.slots.get_mut(relation.0).ok_or_else(|| {
                QueryError::InvalidParameter(format!("unknown relation {relation}"))
            })?;
            slot.queue.push(Pending {
                query,
                submitted_at: Instant::now(),
                tx,
            });
        }
        // Wake the flusher: it re-computes deadlines (and flushes at once
        // when the size limit or a zero deadline is hit).
        self.shared.wake.notify_all();
        Ok(ResponseHandle::new(id, rx))
    }

    /// Number of queries currently waiting in the pending queues (not
    /// counting a flush already in flight).
    pub fn pending(&self) -> usize {
        self.shared.lock().slots.iter().map(|s| s.queue.len()).sum()
    }

    /// Shuts the server down: rejects new submissions, lets the flusher
    /// **drain** every pending queue — in-flight queries are evaluated
    /// (their provenance records [`FlushTrigger::Shutdown`]), not dropped —
    /// and joins the flusher thread. Blocks until the drain completes.
    /// Idempotent; [`Drop`] calls it too.
    pub fn shutdown(&self) {
        self.shared.lock().shutdown = true;
        self.shared.wake.notify_all();
        let handle = self
            .flusher
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            // If the flusher panicked instead of draining, its failsafe
            // guard already cleared the queues (handles resolve to
            // `Shutdown`); nothing to redo here.
            let _ = handle.join();
        }
    }
}

impl Drop for RankServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for RankServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.lock();
        f.debug_struct("RankServer")
            .field("relations", &state.slots.len())
            .field(
                "pending",
                &state.slots.iter().map(|s| s.queue.len()).sum::<usize>(),
            )
            .field("shutdown", &state.shutdown)
            .finish()
    }
}

/// One flush's worth of work, taken from a slot under the lock and
/// executed outside it.
type FlushWork = (SharedRelation, Vec<Pending>, FlushTrigger);

/// The flusher: waits for a deadline or size trigger, takes ready queues
/// under the lock, and evaluates them with the lock released so clients
/// keep submitting during the walk. Exits after draining on shutdown.
fn flusher_loop(shared: &Shared, config: &ServeConfig) {
    let mut state = shared.lock();
    loop {
        if state.shutdown {
            let work: Vec<FlushWork> = state
                .slots
                .iter_mut()
                .filter(|s| !s.queue.is_empty())
                .map(|s| {
                    (
                        Arc::clone(&s.rel),
                        std::mem::take(&mut s.queue),
                        FlushTrigger::Shutdown,
                    )
                })
                .collect();
            drop(state);
            for (rel, pending, trigger) in work {
                execute_flush(&rel, pending, trigger, config);
            }
            return;
        }

        let now = Instant::now();
        let mut work: Vec<FlushWork> = Vec::new();
        let mut next_due: Option<Instant> = None;
        for slot in state.slots.iter_mut() {
            if slot.queue.is_empty() {
                continue;
            }
            if slot.queue.len() >= config.max_batch {
                work.push((
                    Arc::clone(&slot.rel),
                    std::mem::take(&mut slot.queue),
                    FlushTrigger::SizeLimit,
                ));
                continue;
            }
            let due = slot.queue[0].submitted_at + config.max_delay;
            if due <= now {
                work.push((
                    Arc::clone(&slot.rel),
                    std::mem::take(&mut slot.queue),
                    FlushTrigger::Deadline,
                ));
            } else {
                next_due = Some(next_due.map_or(due, |d| d.min(due)));
            }
        }

        if !work.is_empty() {
            drop(state);
            for (rel, pending, trigger) in work {
                execute_flush(&rel, pending, trigger, config);
            }
            state = shared.lock();
            continue; // re-check: queues may have refilled meanwhile
        }

        state = match next_due {
            // Sleep exactly until the earliest pending deadline (spurious
            // wake-ups just re-check).
            Some(due) => {
                shared
                    .wake
                    .wait_timeout(state, due.saturating_duration_since(now))
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0
            }
            None => shared
                .wake
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        };
    }
}

/// Compiles one relation's drained queue into a [`QueryBatch`], runs it
/// with per-entry error isolation, stamps serving provenance, and delivers
/// every answer — ignoring channels whose [`ResponseHandle`] was dropped.
fn execute_flush(
    rel: &SharedRelation,
    pending: Vec<Pending>,
    trigger: FlushTrigger,
    config: &ServeConfig,
) {
    let flush_size = pending.len();
    let mut queries = Vec::with_capacity(flush_size);
    let mut waiters = Vec::with_capacity(flush_size);
    for p in pending {
        queries.push(p.query);
        waiters.push((p.submitted_at, p.tx));
    }
    let mut batch = QueryBatch::new().add_queries(queries);
    if let Some(threads) = config.threads {
        batch = batch.parallel(threads);
    }
    let flush_start = Instant::now();
    let results = batch.run_isolated(&**rel);
    debug_assert_eq!(results.len(), flush_size);
    for ((submitted_at, tx), mut result) in waiters.into_iter().zip(results) {
        if let Ok(res) = &mut result {
            res.report.serve = Some(ServeCost {
                queue_seconds: flush_start.duration_since(submitted_at).as_secs_f64(),
                trigger,
                flush_size,
            });
        }
        // A dropped handle disconnects the channel; the failed send is the
        // intended "discard the answer" path and must not stop the flush.
        let _ = tx.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_pdb::IndependentDb;

    fn db() -> IndependentDb {
        IndependentDb::from_pairs([
            (10.0, 0.4),
            (9.0, 0.45),
            (8.0, 0.8),
            (7.0, 0.95),
            (6.0, 0.3),
            (5.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_matches_direct_query() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::from_micros(200)));
        let rel = server.register("db", db());
        assert_eq!(server.relation_name(rel).as_deref(), Some("db"));
        let handle = server.submit(rel, RankQuery::pt(2)).unwrap();
        let got = handle.recv().unwrap();
        let want = RankQuery::pt(2).run(&db()).unwrap();
        assert_eq!(got.ranking.order(), want.ranking.order());
        assert_eq!(got.values.as_complex(), want.values.as_complex());
        let serve = got.report.serve.expect("provenance stamped");
        assert!(serve.queue_seconds >= 0.0);
        assert!(serve.flush_size >= 1);
    }

    #[test]
    fn size_limit_triggers_flush_without_deadline() {
        // A one-hour deadline: only the size limit can flush.
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_secs(3600))
                .max_batch(2),
        );
        let rel = server.register("db", db());
        let a = server.submit(rel, RankQuery::pt(1)).unwrap();
        let b = server.submit(rel, RankQuery::prfe(0.9)).unwrap();
        let a = a.recv().unwrap();
        let b = b.recv().unwrap();
        assert_eq!(a.report.serve.unwrap().trigger, FlushTrigger::SizeLimit);
        assert_eq!(b.report.serve.unwrap().flush_size, 2);
        // Both shared one walk.
        assert_eq!(a.report.batch.unwrap().consumers, 2);
    }

    #[test]
    fn unknown_relation_errors_at_submission() {
        let server = RankServer::new(ServeConfig::new());
        let err = server.submit(RelationId(7), RankQuery::pt(1)).unwrap_err();
        assert!(matches!(err, QueryError::InvalidParameter(_)), "{err}");
    }

    #[test]
    fn per_query_errors_resolve_through_the_handle() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO).max_batch(3));
        let rel = server.register("db", db());
        let bad = server
            .submit(
                rel,
                RankQuery::pt(2).algorithm(prf_core::query::Algorithm::LogDomain),
            )
            .unwrap();
        let good = server.submit(rel, RankQuery::pt(2)).unwrap();
        assert!(matches!(
            bad.recv(),
            Err(QueryError::IncompatibleAlgorithm { .. })
        ));
        assert!(good.recv().is_ok());
    }

    #[test]
    fn panicking_backend_resolves_handles_instead_of_hanging() {
        use prf_core::query::CorrelationClass;
        use prf_core::weights::WeightFunction;
        use prf_numeric::Complex;

        /// A backend whose kernels die — stands in for any bug that makes
        /// a flush panic. The failsafe must then resolve every pending
        /// handle to `Shutdown` and reject future submissions.
        struct Poisoned;
        impl ProbabilisticRelation for Poisoned {
            fn n_tuples(&self) -> usize {
                2
            }
            fn tuple_scores(&self) -> Vec<f64> {
                vec![2.0, 1.0]
            }
            fn tuple_marginals(&self) -> Vec<f64> {
                vec![0.5, 0.5]
            }
            fn correlation_class(&self) -> CorrelationClass {
                CorrelationClass::Graphical
            }
            fn prf_values(
                &self,
                _omega: &(dyn WeightFunction + Sync),
                _threads: Option<usize>,
            ) -> Vec<Complex> {
                panic!("injected kernel failure")
            }
            fn prfe_values(&self, _alpha: Complex) -> Vec<Complex> {
                panic!("injected kernel failure")
            }
        }

        let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO));
        let rel = server.register("poisoned", Poisoned);
        let first = server.submit(rel, RankQuery::pt(1)).unwrap();
        // The flusher dies on this query; the handle must still resolve.
        assert!(matches!(first.recv(), Err(QueryError::Shutdown)));
        // …and the server now rejects instead of queueing into the void
        // (the failsafe may still be mid-flight, so poll briefly).
        let refused = (0..1000).any(|_| {
            std::thread::yield_now();
            matches!(
                server.submit(rel, RankQuery::pt(1)),
                Err(QueryError::Shutdown)
            )
        });
        assert!(refused, "submissions must start failing after the panic");
        server.shutdown(); // joins the dead flusher without hanging
    }

    #[test]
    fn query_ids_are_unique_and_monotone() {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO));
        let rel = server.register("db", db());
        let ids: Vec<u64> = (0..5)
            .map(|_| {
                server
                    .submit(rel, RankQuery::escore())
                    .unwrap()
                    .id()
                    .as_u64()
            })
            .collect();
        for w in ids.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
