//! Per-query response handles: the client side of a submission.

use std::sync::mpsc;
use std::time::Duration;

use prf_core::query::{QueryError, RankedResult};

/// What a flush delivers for one submission.
pub(crate) type Answer = Result<RankedResult, QueryError>;

/// Server-assigned identifier of one submitted query — unique per
/// [`crate::RankServer`] for its whole lifetime, so clients (and the
/// response-accounting tests) can track that every submission resolves
/// exactly once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub(crate) u64);

impl QueryId {
    /// The raw id value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The client side of one submitted query: resolves **exactly once** to the
/// query's [`RankedResult`] or its [`QueryError`].
///
/// Dropping a handle is always safe — the server detects the disconnected
/// channel and discards the answer without stalling the flush. Conversely,
/// if the server shuts down (or its flusher dies) before an answer is
/// produced, the handle resolves to [`QueryError::Shutdown`] rather than
/// blocking forever.
#[derive(Debug)]
pub struct ResponseHandle {
    id: QueryId,
    rx: mpsc::Receiver<Answer>,
    /// Caches the answer once observed, so a [`ResponseHandle::try_recv`]
    /// poll followed by [`ResponseHandle::recv`] still resolves.
    cached: Option<Answer>,
}

impl ResponseHandle {
    pub(crate) fn new(id: QueryId, rx: mpsc::Receiver<Answer>) -> Self {
        ResponseHandle {
            id,
            rx,
            cached: None,
        }
    }

    /// The server-assigned id of this query.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Blocks until the answer arrives and returns it. Resolves to
    /// [`QueryError::Shutdown`] if the server is torn down without ever
    /// answering (it never is during an orderly [`crate::RankServer::shutdown`],
    /// which drains pending queries by evaluating them).
    pub fn recv(mut self) -> Answer {
        if let Some(answer) = self.cached.take() {
            return answer;
        }
        self.rx.recv().unwrap_or(Err(QueryError::Shutdown))
    }

    /// Like [`ResponseHandle::recv`], but gives up after `timeout`,
    /// returning `None` when the answer has not arrived in time (the handle
    /// stays usable).
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<Answer> {
        if self.cached.is_none() {
            match self.rx.recv_timeout(timeout) {
                Ok(answer) => self.cached = Some(answer),
                Err(mpsc::RecvTimeoutError::Timeout) => return None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    self.cached = Some(Err(QueryError::Shutdown));
                }
            }
        }
        self.cached.clone()
    }

    /// Non-blocking poll: `None` while the answer is still pending, the
    /// answer (a clone — it stays cached, so `recv` after a successful poll
    /// still resolves) once it has arrived.
    pub fn try_recv(&mut self) -> Option<Answer> {
        if self.cached.is_none() {
            match self.rx.try_recv() {
                Ok(answer) => self.cached = Some(answer),
                Err(mpsc::TryRecvError::Empty) => return None,
                Err(mpsc::TryRecvError::Disconnected) => {
                    self.cached = Some(Err(QueryError::Shutdown));
                }
            }
        }
        self.cached.clone()
    }
}
