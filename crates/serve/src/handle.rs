//! Per-query response handles: the client side of a submission, a
//! mutation, or a standing-query subscription.

use std::sync::mpsc;
use std::time::Duration;

use prf_core::live::MutationEffect;
use prf_core::query::{CancelToken, QueryError, RankedResult};
use prf_core::topk::Ranking;
use prf_core::TupleId;

/// What a flush delivers for one submission.
pub(crate) type Answer = Result<RankedResult, QueryError>;

/// What a flush delivers for one applied mutation.
pub(crate) type MutationAnswer = Result<MutationEffect, QueryError>;

/// What a flush delivers to one subscriber.
pub(crate) type DeltaAnswer = Result<RankingDelta, QueryError>;

/// Server-assigned identifier of one submitted query — unique per
/// [`crate::RankServer`] for its whole lifetime, so clients (and the
/// response-accounting tests) can track that every submission resolves
/// exactly once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub(crate) u64);

impl QueryId {
    /// The raw id value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The client side of one submitted query: resolves **exactly once** to the
/// query's [`RankedResult`] or its [`QueryError`].
///
/// Dropping a handle is always safe — the server detects the disconnected
/// channel and discards the answer without stalling the flush. For a
/// **tracked** submission ([`crate::RankServer::submit_with`]) the drop
/// additionally trips the query's cancellation token, so an unevaluated
/// query is shed at dequeue and an in-flight walk abandons it at the next
/// cooperative check — abandoning the handle abandons the work. Conversely,
/// if the server shuts down (or its flusher dies) before an answer is
/// produced, the handle resolves to [`QueryError::Shutdown`] rather than
/// blocking forever.
#[derive(Debug)]
pub struct ResponseHandle {
    id: QueryId,
    rx: mpsc::Receiver<Answer>,
    /// Caches the answer once observed, so a [`ResponseHandle::try_recv`]
    /// poll followed by [`ResponseHandle::recv`] still resolves.
    cached: Option<Answer>,
    /// The tracked submission's cancellation token, tripped on drop.
    cancel: Option<CancelToken>,
}

impl Drop for ResponseHandle {
    fn drop(&mut self) {
        if let Some(token) = &self.cancel {
            token.cancel();
        }
    }
}

impl ResponseHandle {
    pub(crate) fn new(
        id: QueryId,
        rx: mpsc::Receiver<Answer>,
        cancel: Option<CancelToken>,
    ) -> Self {
        ResponseHandle {
            id,
            rx,
            cached: None,
            cancel,
        }
    }

    /// The server-assigned id of this query.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Blocks until the answer arrives and returns it. Resolves to
    /// [`QueryError::Shutdown`] if the server is torn down without ever
    /// answering (it never is during an orderly [`crate::RankServer::shutdown`],
    /// which drains pending queries by evaluating them).
    pub fn recv(mut self) -> Answer {
        if let Some(answer) = self.cached.take() {
            return answer;
        }
        self.rx.recv().unwrap_or(Err(QueryError::Shutdown))
    }

    /// Like [`ResponseHandle::recv`], but gives up after `timeout`,
    /// returning `None` when the answer has not arrived in time (the handle
    /// stays usable).
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<Answer> {
        if self.cached.is_none() {
            match self.rx.recv_timeout(timeout) {
                Ok(answer) => self.cached = Some(answer),
                Err(mpsc::RecvTimeoutError::Timeout) => return None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    self.cached = Some(Err(QueryError::Shutdown));
                }
            }
        }
        self.cached.clone()
    }

    /// Non-blocking poll: `None` while the answer is still pending, the
    /// answer (a clone — it stays cached, so `recv` after a successful poll
    /// still resolves) once it has arrived.
    pub fn try_recv(&mut self) -> Option<Answer> {
        if self.cached.is_none() {
            match self.rx.try_recv() {
                Ok(answer) => self.cached = Some(answer),
                Err(mpsc::TryRecvError::Empty) => return None,
                Err(mpsc::TryRecvError::Disconnected) => {
                    self.cached = Some(Err(QueryError::Shutdown));
                }
            }
        }
        self.cached.clone()
    }
}

/// The client side of one mutation routed through
/// [`crate::RankServer::apply`]: resolves **exactly once** to the
/// [`MutationEffect`] the backend reported, or to the [`QueryError`] that
/// rejected the mutation (validation failures arrive here, not at `apply`,
/// because mutations are applied on the flush pipeline, serialized with
/// query evaluation).
///
/// Dropping the handle is safe — the mutation is still applied; only its
/// acknowledgement is discarded. If the server dies before the mutation's
/// flush runs, the handle resolves to [`QueryError::Shutdown`] (an orderly
/// [`crate::RankServer::shutdown`] drains pending mutations first).
#[derive(Debug)]
pub struct MutationHandle {
    id: QueryId,
    rx: mpsc::Receiver<MutationAnswer>,
}

impl MutationHandle {
    pub(crate) fn new(id: QueryId, rx: mpsc::Receiver<MutationAnswer>) -> Self {
        MutationHandle { id, rx }
    }

    /// The server-assigned id of this mutation (drawn from the same
    /// sequence as query ids).
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Blocks until the mutation's flush applied (or rejected) it and
    /// returns the outcome.
    pub fn recv(self) -> MutationAnswer {
        self.rx.recv().unwrap_or(Err(QueryError::Shutdown))
    }

    /// Like [`MutationHandle::recv`], but gives up after `timeout`,
    /// returning `None` when the acknowledgement has not arrived in time
    /// (the handle stays usable).
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<MutationAnswer> {
        match self.rx.recv_timeout(timeout) {
            Ok(answer) => Some(answer),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(QueryError::Shutdown)),
        }
    }
}

/// What one flush changed in a standing query's ranking, pushed to the
/// subscription's [`SubscriptionHandle`].
///
/// The first delta a subscriber receives is its **initial snapshot**: every
/// tuple of the ranking is in [`RankingDelta::entered`] and
/// [`RankingDelta::seq`] is 0. Later deltas are diffs against the order the
/// same subscriber last saw.
#[derive(Clone, Debug)]
pub struct RankingDelta {
    /// Per-subscription sequence number, starting at 0 with the initial
    /// snapshot and incrementing by 1 per pushed delta — gap-free, so a
    /// subscriber can assert it missed nothing.
    pub seq: u64,
    /// Tuples ranked now that were absent from the previous ranking, in
    /// ranking order.
    pub entered: Vec<TupleId>,
    /// Tuples of the previous ranking that are absent now, in their old
    /// order.
    pub left: Vec<TupleId>,
    /// Tuples present in both rankings at different positions:
    /// `(tuple, old_position, new_position)`, positions 0-based, in new
    /// ranking order.
    pub moved: Vec<(TupleId, usize, usize)>,
    /// The full ranking after this delta — always consistent with applying
    /// `entered`/`left`/`moved` to the previous one.
    pub ranking: Ranking,
}

impl RankingDelta {
    /// `true` when the ranking did not change (no tuple entered, left, or
    /// moved) — pushed only as an initial snapshot of an empty ranking.
    pub fn is_empty(&self) -> bool {
        self.entered.is_empty() && self.left.is_empty() && self.moved.is_empty()
    }
}

/// The client side of one standing query: a stream of [`RankingDelta`]s,
/// one per flush that re-evaluated the subscription (the initial snapshot,
/// then every mutation batch applied to the relation).
///
/// After [`crate::RankServer::shutdown`] (orderly or failsafe) the stream
/// ends: every further [`SubscriptionHandle::recv`] returns
/// [`QueryError::Shutdown`]. A standing query whose evaluation errors
/// terminates its own subscription by delivering that error once, then
/// `Shutdown`. Dropping the handle **unsubscribes immediately**: the
/// server's subscription entry (its retained query, last-seen ranking, and
/// sender) is removed at the drop itself, not lazily at the next push — a
/// churning subscriber population cannot accumulate dead subscriptions.
pub struct SubscriptionHandle {
    id: QueryId,
    rx: mpsc::Receiver<DeltaAnswer>,
    /// Unregisters the subscription server-side; run on drop.
    on_drop: Option<Box<dyn FnOnce() + Send>>,
}

impl Drop for SubscriptionHandle {
    fn drop(&mut self) {
        if let Some(unsubscribe) = self.on_drop.take() {
            unsubscribe();
        }
    }
}

impl std::fmt::Debug for SubscriptionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriptionHandle")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl SubscriptionHandle {
    pub(crate) fn new(
        id: QueryId,
        rx: mpsc::Receiver<DeltaAnswer>,
        on_drop: Option<Box<dyn FnOnce() + Send>>,
    ) -> Self {
        SubscriptionHandle { id, rx, on_drop }
    }

    /// The server-assigned id of this subscription (drawn from the same
    /// sequence as query ids).
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Blocks until the next delta (or the subscription's terminal error)
    /// arrives. Returns [`QueryError::Shutdown`] once the server — or this
    /// subscription — is gone.
    pub fn recv(&self) -> DeltaAnswer {
        self.rx.recv().unwrap_or(Err(QueryError::Shutdown))
    }

    /// Like [`SubscriptionHandle::recv`], but gives up after `timeout`,
    /// returning `None` when no delta arrived in time.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<DeltaAnswer> {
        match self.rx.recv_timeout(timeout) {
            Ok(delta) => Some(delta),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(QueryError::Shutdown)),
        }
    }

    /// Non-blocking poll: `None` while no delta is waiting.
    pub fn try_recv(&self) -> Option<DeltaAnswer> {
        match self.rx.try_recv() {
            Ok(delta) => Some(delta),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(QueryError::Shutdown)),
        }
    }
}
