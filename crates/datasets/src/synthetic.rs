//! Synthetic datasets: Syn-IND and the random and/xor tree family
//! (Section 8, "Datasets").
//!
//! The correlated datasets are random probabilistic and/xor trees generated
//! by controlling the height `L`, the maximum fanout `d` of non-root nodes,
//! and the proportion `X/A` of ∨ to ∧ inner nodes:
//!
//! | dataset | L | X/A | d |
//! |---------|---|-----|---|
//! | Syn-XOR  | 2 | ∞  | 5 |
//! | Syn-LOW  | 3 | 10 | 2 |
//! | Syn-MED  | 5 | 3  | 5 |
//! | Syn-HIGH | 5 | 1  | 10 |
//!
//! Scores are uniform on `[0, 10000]`; Syn-IND draws probabilities uniform
//! on `[0, 1]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prf_pdb::{AndXorTree, IndependentDb, NodeId, NodeKind, TreeBuilder};

/// Configuration for the random and/xor tree generator.
#[derive(Clone, Copy, Debug)]
pub struct TreeGenConfig {
    /// Number of tuples (leaves).
    pub n_tuples: usize,
    /// Maximum leaf depth (root at depth 0). Must be ≥ 2.
    pub height: usize,
    /// Maximum fanout of non-root inner nodes. The root's fanout is
    /// unbounded so generation can always place the requested leaves.
    pub max_fanout: usize,
    /// Ratio of ∨ to ∧ inner nodes below the root; `f64::INFINITY` makes
    /// every inner node a ∨ (the x-tuple regime).
    pub xor_to_and: f64,
    /// Score range (uniform).
    pub score_range: (f64, f64),
}

impl TreeGenConfig {
    /// Syn-XOR: x-tuples (height 2, all-∨, fanout 5).
    pub fn syn_xor(n: usize) -> Self {
        TreeGenConfig {
            n_tuples: n,
            height: 2,
            max_fanout: 5,
            xor_to_and: f64::INFINITY,
            score_range: (0.0, 10_000.0),
        }
    }

    /// Syn-LOW: light correlation (L=3, X/A=10, d=2).
    pub fn syn_low(n: usize) -> Self {
        TreeGenConfig {
            n_tuples: n,
            height: 3,
            max_fanout: 2,
            xor_to_and: 10.0,
            score_range: (0.0, 10_000.0),
        }
    }

    /// Syn-MED: medium correlation (L=5, X/A=3, d=5).
    pub fn syn_med(n: usize) -> Self {
        TreeGenConfig {
            n_tuples: n,
            height: 5,
            max_fanout: 5,
            xor_to_and: 3.0,
            score_range: (0.0, 10_000.0),
        }
    }

    /// Syn-HIGH: heavy correlation (L=5, X/A=1, d=10).
    pub fn syn_high(n: usize) -> Self {
        TreeGenConfig {
            n_tuples: n,
            height: 5,
            max_fanout: 10,
            xor_to_and: 1.0,
            score_range: (0.0, 10_000.0),
        }
    }
}

/// Syn-IND: `n` independent tuples, scores `U[0, 10000]`, probabilities
/// `U[0, 1]`.
pub fn syn_ind(n: usize, seed: u64) -> IndependentDb {
    let mut rng = StdRng::seed_from_u64(seed);
    IndependentDb::from_pairs(
        (0..n).map(|_| (rng.gen_range(0.0..10_000.0), rng.gen_range(0.0..1.0f64))),
    )
    .expect("generated tuples are valid")
}

/// Generates a random probabilistic and/xor tree per the configuration.
///
/// The tree has an ∧ root (unbounded fanout — the paper bounds only
/// *non-root* degrees) whose children are densely grown correlation
/// *blocks*: each block is filled towards its capacity `d^{L−1}` before a
/// new one is started, so that high-scoring tuples genuinely share ∨/∧
/// ancestors — the entanglement the Figure 10 experiments measure. Inner
/// nodes are ∨ with probability `X/A / (1 + X/A)`; ∨-edge probabilities are
/// drawn from the node's remaining budget so `Σp ≤ 1` holds by
/// construction. Leaves appear at depth ≥ 2 and are forced at `cfg.height`.
pub fn random_andxor_tree(cfg: &TreeGenConfig, seed: u64) -> AndXorTree {
    assert!(cfg.height >= 2, "height must be at least 2");
    assert!(cfg.max_fanout >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TreeBuilder::new(NodeKind::And);
    let root = b.root();
    let p_xor = if cfg.xor_to_and.is_infinite() {
        1.0
    } else {
        cfg.xor_to_and / (1.0 + cfg.xor_to_and)
    };
    // Capacity of one block; keep at least ~4 blocks so exclusivity between
    // blocks also exists.
    let capacity = (cfg.max_fanout as f64).powi(cfg.height as i32 - 1).min(1e9) as usize;
    let block_target = capacity.max(1).min((cfg.n_tuples / 4).max(1));

    struct Slot {
        node: NodeId,
        is_xor: bool,
        depth: usize,
        children: usize,
        budget: f64,
    }

    let mut leaves = 0usize;
    while leaves < cfg.n_tuples {
        // Start a new top-level block.
        let kind = if rng.gen_bool(p_xor) {
            NodeKind::Xor
        } else {
            NodeKind::And
        };
        let top = b.add_inner(root, kind, 1.0).expect("root accepts children");
        let mut frontier = vec![Slot {
            node: top,
            is_xor: matches!(kind, NodeKind::Xor),
            depth: 1,
            children: 0,
            budget: 1.0,
        }];
        let goal = block_target.min(cfg.n_tuples - leaves);
        let mut grown = 0usize;
        while grown < goal && !frontier.is_empty() {
            let idx = rng.gen_range(0..frontier.len());
            let slot = &mut frontier[idx];
            let depth = slot.depth;
            let edge_prob = if slot.is_xor {
                // Aim for ~d children per ∨ node (each taking ~1/d of the
                // unit budget): wide exclusive groups are what distinguish
                // MED/HIGH from LOW.
                let frac = rng
                    .gen_range(0.5 / cfg.max_fanout as f64..1.5 / cfg.max_fanout as f64)
                    .min(0.85);
                let p = slot.budget * frac;
                slot.budget -= p;
                p
            } else {
                1.0
            };
            let node = slot.node;
            // Fill blocks densely: inner nodes strongly preferred above the
            // height limit.
            let make_leaf = depth + 1 >= cfg.height || rng.gen_bool(0.15);
            if make_leaf {
                let score = rng.gen_range(cfg.score_range.0..cfg.score_range.1);
                b.add_leaf(node, edge_prob, score).expect("valid leaf");
                grown += 1;
            } else {
                let kind = if rng.gen_bool(p_xor) {
                    NodeKind::Xor
                } else {
                    NodeKind::And
                };
                let child = b.add_inner(node, kind, edge_prob).expect("valid inner");
                let child_is_xor = matches!(kind, NodeKind::Xor);
                frontier.push(Slot {
                    node: child,
                    is_xor: child_is_xor,
                    depth: depth + 1,
                    children: 0,
                    budget: 1.0,
                });
            }
            let slot = &mut frontier[idx];
            slot.children += 1;
            let saturated = slot.children >= cfg.max_fanout || (slot.is_xor && slot.budget < 0.02);
            if saturated {
                frontier.swap_remove(idx);
            }
        }
        leaves += grown;
        // A block whose frontier saturated early simply comes out smaller;
        // the outer loop starts another one.
        if grown == 0 {
            // Degenerate capacity (e.g. d = 1): fall back to a single leaf
            // chain to guarantee progress.
            let score = rng.gen_range(cfg.score_range.0..cfg.score_range.1);
            let chain = b.add_inner(root, NodeKind::Xor, 1.0).expect("inner");
            b.add_leaf(chain, rng.gen_range(0.15..0.85), score)
                .expect("valid leaf");
            leaves += 1;
        }
    }
    b.build().expect("generator respects ∨ budgets")
}

/// Convenience constructors matching the paper's four correlated datasets.
pub fn syn_xor_tree(n: usize, seed: u64) -> AndXorTree {
    random_andxor_tree(&TreeGenConfig::syn_xor(n), seed)
}

/// See [`TreeGenConfig::syn_low`].
pub fn syn_low_tree(n: usize, seed: u64) -> AndXorTree {
    random_andxor_tree(&TreeGenConfig::syn_low(n), seed)
}

/// See [`TreeGenConfig::syn_med`].
pub fn syn_med_tree(n: usize, seed: u64) -> AndXorTree {
    random_andxor_tree(&TreeGenConfig::syn_med(n), seed)
}

/// See [`TreeGenConfig::syn_high`].
pub fn syn_high_tree(n: usize, seed: u64) -> AndXorTree {
    random_andxor_tree(&TreeGenConfig::syn_high(n), seed)
}

/// A uniform random sample of `m` tuples from an independent relation,
/// re-identified densely — the "small sample of the tuples" on which user
/// preferences are collected in Section 5.2. Returns the sample and the
/// original ids (`sample id → original id`).
pub fn subsample_independent(
    db: &IndependentDb,
    m: usize,
    seed: u64,
) -> (IndependentDb, Vec<prf_pdb::TupleId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = db.len();
    let m = m.min(n);
    // Partial Fisher–Yates over indices.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..m {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    let chosen = &idx[..m];
    let sample = IndependentDb::from_pairs(chosen.iter().map(|&i| {
        let t = db.tuple(prf_pdb::TupleId(i as u32));
        (t.score, t.prob)
    }))
    .expect("subsample of a valid relation is valid");
    (
        sample,
        chosen.iter().map(|&i| prf_pdb::TupleId(i as u32)).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syn_ind_shape() {
        let db = syn_ind(1000, 3);
        assert_eq!(db.len(), 1000);
        for t in db.tuples() {
            assert!((0.0..10_000.0).contains(&t.score));
            assert!((0.0..=1.0).contains(&t.prob));
        }
        // Expected world size ≈ n/2 ("expected size ≈ 50000" for n=100k).
        let c = db.expected_world_size();
        assert!((c - 500.0).abs() < 50.0, "C = {c}");
    }

    #[test]
    fn syn_xor_is_xtuple_form() {
        let tree = syn_xor_tree(200, 5);
        assert_eq!(tree.n_tuples(), 200);
        assert!(tree.x_tuple_groups().is_some());
        assert_eq!(tree.height(), 2);
        // Fanout bound respected for non-root nodes.
        let groups = tree.x_tuple_groups().unwrap();
        assert!(groups.iter().all(|g| g.len() <= 5));
    }

    #[test]
    fn height_bounds_respected() {
        for (tree, h) in [
            (syn_low_tree(300, 1), 3),
            (syn_med_tree(300, 1), 5),
            (syn_high_tree(300, 1), 5),
        ] {
            assert_eq!(tree.n_tuples(), 300);
            assert!(tree.height() <= h, "height {} > {h}", tree.height());
            assert!(tree.height() >= 2);
        }
    }

    #[test]
    fn xor_ratio_influences_node_mix() {
        let n = 2000;
        let count_kinds = |tree: &AndXorTree| {
            let mut xor = 0usize;
            let mut and = 0usize;
            for i in 0..tree.node_count() {
                match tree.kind(prf_pdb::NodeId(i as u32)) {
                    NodeKind::Xor => xor += 1,
                    NodeKind::And => and += 1,
                    NodeKind::Leaf(_) => {}
                }
            }
            (xor, and)
        };
        let (x_hi, a_hi) = count_kinds(&syn_high_tree(n, 2)); // ratio 1
        let (x_low, a_low) = count_kinds(&syn_low_tree(n, 2)); // ratio 10

        // Syn-LOW should be much more xor-dominated than Syn-HIGH.
        let r_hi = x_hi as f64 / a_hi.max(1) as f64;
        let r_low = x_low as f64 / a_low.max(1) as f64;
        assert!(r_low > 2.0 * r_hi, "ratios: low {r_low} vs high {r_hi}");
    }

    #[test]
    fn generated_trees_are_valid_distributions() {
        // Marginals in range; sampling works; enumeration on a small one.
        let tree = syn_med_tree(12, 9);
        for m in tree.marginals() {
            assert!((0.0..=1.0 + 1e-9).contains(&m));
        }
        let worlds = tree.enumerate_worlds(1 << 20).unwrap();
        assert!((worlds.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_generation() {
        let a = syn_high_tree(100, 42);
        let b = syn_high_tree(100, 42);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.scores(), b.scores());
    }

    #[test]
    fn subsample_draws_distinct_tuples() {
        let db = syn_ind(100, 1);
        let (sample, origin) = subsample_independent(&db, 30, 2);
        assert_eq!(sample.len(), 30);
        let mut o = origin.clone();
        o.sort();
        o.dedup();
        assert_eq!(o.len(), 30, "no duplicates");
        for (s, &oid) in sample.tuples().iter().zip(&origin) {
            let t = db.tuple(oid);
            assert_eq!(s.score, t.score);
            assert_eq!(s.prob, t.prob);
        }
    }
}
