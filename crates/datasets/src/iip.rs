//! Simulated International Ice Patrol (IIP) iceberg-sighting data.
//!
//! The paper's main real dataset is the IIP Iceberg Sightings database
//! (~10⁶ records, 1960–2007): each record carries the number of days the
//! iceberg has drifted (the ranking score — long drifters matter most) and
//! a confidence level determined by the sighting source, which the authors
//! map to existence probabilities
//! `{R/V: 0.8, VIS: 0.7, RAD: 0.6, SAT-LOW: 0.5, SAT-MED: 0.4,
//! SAT-HIGH: 0.3, EST: 0.4}` plus a small Gaussian tie-breaking noise.
//!
//! The raw data is not redistributable here, so this module *simulates* it:
//! scores follow a heavy-tailed drift-duration mixture (most sightings
//! drift days or weeks; a small fraction drifts for months), and
//! probabilities replicate the paper's exact confidence-level mapping with
//! source frequencies matching the database's documented composition
//! (visual and radar sightings dominate; satellite and estimated records
//! are rarer). The ranking algorithms only ever observe
//! `(score, probability)` pairs, so this reproduces the paper's workload
//! shape exactly. See DESIGN.md §3 for the substitution rationale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prf_pdb::IndependentDb;

/// Sighting sources and the paper's confidence-level probabilities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// Radar and visual.
    RadarVisual,
    /// Visual only.
    Visual,
    /// Radar only.
    Radar,
    /// Low-earth-orbit satellite.
    SatLow,
    /// Medium-earth-orbit satellite.
    SatMed,
    /// High-earth-orbit satellite.
    SatHigh,
    /// Estimated position.
    Estimated,
}

impl Source {
    /// The paper's confidence-level probability for this source.
    pub fn base_probability(self) -> f64 {
        match self {
            Source::RadarVisual => 0.8,
            Source::Visual => 0.7,
            Source::Radar => 0.6,
            Source::SatLow => 0.5,
            Source::SatMed => 0.4,
            Source::SatHigh => 0.3,
            Source::Estimated => 0.4,
        }
    }

    /// Relative frequency of the source in the simulated stream.
    fn frequency(self) -> f64 {
        match self {
            Source::RadarVisual => 0.18,
            Source::Visual => 0.30,
            Source::Radar => 0.22,
            Source::SatLow => 0.08,
            Source::SatMed => 0.06,
            Source::SatHigh => 0.04,
            Source::Estimated => 0.12,
        }
    }

    const ALL: [Source; 7] = [
        Source::RadarVisual,
        Source::Visual,
        Source::Radar,
        Source::SatLow,
        Source::SatMed,
        Source::SatHigh,
        Source::Estimated,
    ];
}

/// One simulated sighting record.
#[derive(Clone, Copy, Debug)]
pub struct Sighting {
    /// Days the iceberg has drifted — the ranking score.
    pub drift_days: f64,
    /// Sighting source.
    pub source: Source,
    /// Existence probability (confidence level + noise).
    pub probability: f64,
}

/// Standard deviation of the Gaussian probability noise (the paper adds "a
/// very small Gaussian noise ... so that ties could be broken").
const PROB_NOISE_SIGMA: f64 = 0.01;

/// Draws one standard normal via Box–Muller.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates `n` simulated sightings with the given seed.
pub fn generate_sightings(n: usize, seed: u64) -> Vec<Sighting> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Source by frequency.
        let mut u: f64 = rng.gen();
        let mut source = Source::Estimated;
        for s in Source::ALL {
            if u < s.frequency() {
                source = s;
                break;
            }
            u -= s.frequency();
        }
        // Drift duration: mixture of short drifts (exp, mean 25 days) and a
        // long-drift tail (exp, mean 250 days, 8% of records), plus
        // fractional-day jitter so scores are effectively distinct.
        let base = if rng.gen_bool(0.08) {
            -250.0 * rng.gen_range(f64::EPSILON..1.0f64).ln()
        } else {
            -25.0 * rng.gen_range(f64::EPSILON..1.0f64).ln()
        };
        let drift_days = base + rng.gen::<f64>();
        // Probability: confidence level + clamped Gaussian noise.
        let probability = (source.base_probability()
            + PROB_NOISE_SIGMA * standard_normal(&mut rng))
        .clamp(0.01, 0.99);
        out.push(Sighting {
            drift_days,
            source,
            probability,
        });
    }
    out
}

/// The simulated IIP dataset as a tuple-independent relation
/// (`score = drift_days`).
pub fn iip_db(n: usize, seed: u64) -> IndependentDb {
    let tuples = generate_sightings(n, seed)
        .into_iter()
        .map(|s| (s.drift_days, s.probability));
    IndependentDb::from_pairs(tuples).expect("generator produces valid tuples")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = iip_db(500, 7);
        let b = iip_db(500, 7);
        for (x, y) in a.tuples().iter().zip(b.tuples()) {
            assert_eq!(x.score, y.score);
            assert_eq!(x.prob, y.prob);
        }
        let c = iip_db(500, 8);
        assert!(a
            .tuples()
            .iter()
            .zip(c.tuples())
            .any(|(x, y)| x.score != y.score));
    }

    #[test]
    fn probabilities_cluster_around_confidence_levels() {
        let sightings = generate_sightings(20_000, 1);
        for s in &sightings {
            assert!((0.01..=0.99).contains(&s.probability));
            assert!(
                (s.probability - s.source.base_probability()).abs() < 0.08,
                "noise should be small: {} vs {}",
                s.probability,
                s.source.base_probability()
            );
            assert!(s.drift_days >= 0.0);
        }
        // Source frequencies roughly as configured.
        let visual = sightings
            .iter()
            .filter(|s| s.source == Source::Visual)
            .count() as f64
            / sightings.len() as f64;
        assert!((visual - 0.30).abs() < 0.02, "visual frequency {visual}");
    }

    #[test]
    fn drift_has_heavy_tail() {
        let db = iip_db(20_000, 2);
        let scores = db.scores();
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        let max = scores.iter().cloned().fold(0.0, f64::max);
        assert!(max > 10.0 * mean, "tail: max {max} vs mean {mean}");
    }

    #[test]
    fn scores_effectively_distinct() {
        let db = iip_db(5_000, 3);
        let mut scores = db.scores();
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let dups = scores.windows(2).filter(|w| w[0] == w[1]).count();
        assert_eq!(dups, 0);
    }
}
