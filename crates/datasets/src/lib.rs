//! Seeded dataset generators for the `prf` workspace (Section 8 workloads).
//!
//! * [`iip`] — a simulated International Ice Patrol iceberg-sighting
//!   dataset reproducing the paper's preprocessing (drift days as score,
//!   confidence-level probabilities); the substitution for the original
//!   (non-redistributable) data is documented in DESIGN.md;
//! * [`synthetic`] — Syn-IND and the random and/xor tree family Syn-XOR /
//!   Syn-LOW / Syn-MED / Syn-HIGH, plus sampling utilities for the
//!   learning experiments.
//!
//! Every generator takes an explicit seed; runs are reproducible
//! bit-for-bit.

#![deny(missing_docs)]

pub mod iip;
pub mod synthetic;

pub use iip::{generate_sightings, iip_db, Sighting, Source};
pub use synthetic::{
    random_andxor_tree, subsample_independent, syn_high_tree, syn_ind, syn_low_tree, syn_med_tree,
    syn_xor_tree, TreeGenConfig,
};
