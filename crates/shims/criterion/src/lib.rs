//! Minimal, dependency-free stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! providing the API subset the `prf-bench` benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Two execution modes, chosen from the command line exactly like real
//! criterion benches behave under cargo:
//!
//! * **measure** (`--bench` present, i.e. `cargo bench`): each benchmark is
//!   warmed up once, then timed for `sample_size` samples; the per-iteration
//!   `min`, `p50` (median), `p95` and `max` are printed — enough spread to
//!   spot tail noise without keeping raw samples around.
//! * **smoke** (no `--bench`, i.e. `cargo test` building the bench target):
//!   each benchmark body runs exactly once so the target stays fast while
//!   still exercising every code path.
//!
//! No statistics beyond those order statistics, no plots, no baselines.
//! The `perf` CI job greps the `min/p50/p95/max` columns out of the
//! uploaded measure-mode output.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How benchmark bodies are executed (see the crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Measure,
    Smoke,
}

fn mode_from_args() -> Mode {
    if std::env::args().any(|a| a == "--bench") {
        Mode::Measure
    } else {
        Mode::Smoke
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: mode_from_args(),
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        if self.mode == Mode::Measure {
            println!("\n== group: {name}");
        }
        BenchmarkGroup {
            name,
            mode: self.mode,
            sample_size: self.default_sample_size,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self.mode, &format!("{id}"), self.default_sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    mode: Mode,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark (measure mode only).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(
            self.mode,
            &format!("{}/{id}", self.name),
            self.sample_size,
            f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input under `id` within this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            self.mode,
            &format!("{}/{id}", self.name),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op beyond matching real criterion's API).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, an optional parameter, or both.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Passed to benchmark bodies; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one timed sample per run in measure
    /// mode, or exactly once in smoke mode.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        match self.mode {
            Mode::Smoke => {
                black_box(f());
            }
            Mode::Measure => {
                black_box(f()); // warm-up
                for _ in 0..self.sample_size {
                    let start = Instant::now();
                    black_box(f());
                    self.samples.push(start.elapsed());
                }
            }
        }
    }
}

/// The sorted samples' `q`-quantile by the nearest-rank method — exact
/// order statistics, no interpolation (small sample counts).
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn run_one(mode: Mode, label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mode,
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if mode == Mode::Measure && !b.samples.is_empty() {
        b.samples.sort_unstable();
        println!(
            "{label:<50} min {:>12} p50 {:>12} p95 {:>12} max {:>12} ({} samples)",
            fmt_duration(b.samples[0]),
            fmt_duration(percentile(&b.samples, 0.50)),
            fmt_duration(percentile(&b.samples, 0.95)),
            fmt_duration(*b.samples.last().expect("non-empty")),
            b.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function that runs each target against a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut count = 0;
        run_one(Mode::Smoke, "t", 10, |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut count = 0u64;
        run_one(Mode::Measure, "t", 5, |b| b.iter(|| count += 1));
        assert_eq!(count, 6); // warm-up + 5 samples
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("fft", 1024).to_string(), "fft/1024");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn percentiles_are_exact_order_statistics() {
        let samples: Vec<Duration> = (1..=20).map(Duration::from_millis).collect();
        assert_eq!(percentile(&samples, 0.50), Duration::from_millis(10));
        assert_eq!(percentile(&samples, 0.95), Duration::from_millis(19));
        assert_eq!(percentile(&samples, 1.0), Duration::from_millis(20));
        // Degenerate sizes clamp sensibly.
        let one = [Duration::from_millis(5)];
        assert_eq!(percentile(&one, 0.50), one[0]);
        assert_eq!(percentile(&one, 0.95), one[0]);
        let three: Vec<Duration> = (1..=3).map(Duration::from_millis).collect();
        assert_eq!(percentile(&three, 0.50), Duration::from_millis(2));
        assert_eq!(percentile(&three, 0.95), Duration::from_millis(3));
    }
}
