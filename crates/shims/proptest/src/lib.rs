//! Minimal, dependency-free stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, providing the API
//! subset the `prf` workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * the [`strategy::Strategy`] trait with `prop_map` and `prop_shuffle`,
//! * range strategies (`0.0f64..1.0`, `0u32..40`, `0.0f64..=1.0`, …) and
//!   tuple strategies up to arity 4,
//! * [`collection::vec`] and [`sample::subsequence`],
//! * [`test_runner::ProptestConfig`] (only `cases` is honoured).
//!
//! Semantics: each test runs `cases` deterministic random cases (seeded from
//! the test name, so failures reproduce across runs). Rejected cases
//! ([`prop_assume!`]) are retried up to a bounded number of extra attempts.
//! **No shrinking** is performed — the failing assertion message is reported
//! as-is.

#![deny(missing_docs)]

pub mod strategy;

/// Strategies producing collections.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};
    use std::ops::Range;

    /// The admissible sizes of a generated collection.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// A strategy generating `Vec`s whose elements come from `element` and
    /// whose length is uniform over `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy generating vectors of values drawn from `element`,
    /// with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Strategies sampling from existing collections.
pub mod sample {
    use crate::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// A strategy generating order-preserving subsequences of a fixed vector.
    #[derive(Clone, Debug)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        len: usize,
    }

    /// Creates a strategy that picks a uniformly random subsequence of
    /// exactly `len` elements from `values`, preserving their order.
    ///
    /// # Panics
    /// Panics if `len > values.len()`.
    pub fn subsequence<T: Clone>(values: Vec<T>, len: usize) -> Subsequence<T> {
        assert!(
            len <= values.len(),
            "subsequence: requested {len} of {} elements",
            values.len()
        );
        Subsequence { values, len }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            // Floyd's algorithm would avoid the index vec, but n is tiny in
            // practice; partial Fisher–Yates then sort keeps it simple.
            let n = self.values.len();
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..self.len {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            let mut chosen = idx[..self.len].to_vec();
            chosen.sort_unstable();
            chosen.iter().map(|&i| self.values[i].clone()).collect()
        }
    }
}

/// Test-runner configuration and plumbing used by the [`proptest!`] macro.
pub mod test_runner {
    use rand::{rngs::StdRng, SeedableRng};

    /// Configuration for a `proptest!` block. Only `cases` is honoured by
    /// this shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A default configuration overriding the number of cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!` and should not be counted.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Stable 64-bit FNV-1a, used to derive a per-test seed from its name so
    /// failures reproduce deterministically across runs.
    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property test: runs `config.cases` cases (with a bounded
    /// retry budget for `prop_assume!` rejections) and panics on the first
    /// failing case.
    pub fn run(
        config: &ProptestConfig,
        test_name: &str,
        mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    ) {
        let base = fnv1a(test_name);
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let max_rejects = (config.cases as u64) * 16 + 256;
        let mut attempt: u64 = 0;
        while passed < config.cases {
            let mut rng = StdRng::seed_from_u64(base.wrapping_add(attempt));
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest '{test_name}': too many prop_assume! rejections \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{test_name}' failed at case #{passed} \
                         (seed {seed:#x}): {msg}",
                        seed = base.wrapping_add(attempt - 1)
                    );
                }
            }
        }
    }
}

/// Everything a property test normally imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
///
/// Expands to an early `return Err(..)` inside the case closure generated by
/// [`proptest!`]; an optional trailing format string customises the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right` ({})\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as in real
/// proptest) running many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                let ($($arg,)+) = ($($crate::strategy::Strategy::new_value(&($strat), __rng),)+);
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((x, y) in (0.0f64..1.0, 0u32..10), n in 1usize..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(y < 10);
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec(0.0f64..=1.0, 2..6).prop_map(|v| v.len())) {
            prop_assert!((2..6).contains(&v));
        }

        #[test]
        fn subsequence_shuffle(s in crate::sample::subsequence((0u32..30).collect::<Vec<_>>(), 6).prop_shuffle()) {
            prop_assert_eq!(s.len(), 6);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), 6, "duplicates in subsequence {:?}", s);
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        crate::test_runner::run(&ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
