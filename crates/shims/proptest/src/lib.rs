//! Minimal, dependency-free stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, providing the API
//! subset the `prf` workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * the [`strategy::Strategy`] trait with `prop_map` and `prop_shuffle`,
//! * range strategies (`0.0f64..1.0`, `0u32..40`, `0.0f64..=1.0`, …) and
//!   tuple strategies up to arity 4,
//! * [`collection::vec`] and [`sample::subsequence`],
//! * [`test_runner::ProptestConfig`] (only `cases` is honoured).
//!
//! Semantics: each test runs `cases` deterministic random cases (seeded from
//! the test name, so failures reproduce across runs). Rejected cases
//! ([`prop_assume!`]) are retried up to a bounded number of extra attempts.
//! Failing cases are **shrunk** through [`strategy::ValueTree`]s: every
//! generated value carries its shrink state (range minima, per-element
//! subtrees, mapping closures), and the runner greedily re-runs the simpler
//! candidate trees (halving towards the range minimum for numbers,
//! halving/removal plus element-wise shrinking for vectors, component-wise
//! for tuples) and reports the minimal case's assertion message, together
//! with the raw case's. Mapped strategies
//! ([`strategy::Strategy::prop_map`]) shrink too: the tree shrinks the
//! *pre-map* value and re-applies the mapping, so no inverse is needed.

#![deny(missing_docs)]

pub mod strategy;

/// Strategies producing collections.
pub mod collection {
    use crate::strategy::{Strategy, ValueTree};
    use rand::{rngs::StdRng, Rng};
    use std::ops::Range;

    /// The admissible sizes of a generated collection.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// A strategy generating `Vec`s whose elements come from `element` and
    /// whose length is uniform over `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy generating vectors of values drawn from `element`,
    /// with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        type Tree = VecTree<S::Tree>;

        fn new_tree(&self, rng: &mut StdRng) -> Self::Tree {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            VecTree {
                min_len: self.size.lo,
                elems: (0..len).map(|_| self.element.new_tree(rng)).collect(),
            }
        }
    }

    /// The tree of a [`VecStrategy`] value: one subtree per element plus
    /// the minimum admissible length, so structural shrinks never go below
    /// the strategy's size floor.
    #[derive(Clone, Debug)]
    pub struct VecTree<T> {
        min_len: usize,
        elems: Vec<T>,
    }

    impl<T: ValueTree> ValueTree for VecTree<T> {
        type Value = Vec<T::Value>;

        fn current(&self) -> Self::Value {
            self.elems.iter().map(ValueTree::current).collect()
        }

        fn shrink(&self) -> Vec<Self> {
            let n = self.elems.len();
            let min = self.min_len;
            let mut out: Vec<Self> = Vec::new();
            let with = |elems: Vec<T>| VecTree {
                min_len: min,
                elems,
            };
            // Structural shrinks first (smaller vectors), then element-wise.
            if n > min {
                let half = (n / 2).max(min);
                if half < n {
                    out.push(with(self.elems[..half].to_vec()));
                    out.push(with(self.elems[n - half..].to_vec()));
                }
                for i in 0..n {
                    let mut v = self.elems.clone();
                    v.remove(i);
                    out.push(with(v));
                }
            }
            for (i, elem) in self.elems.iter().enumerate() {
                for cand in elem.shrink() {
                    let mut v = self.elems.clone();
                    v[i] = cand;
                    out.push(with(v));
                }
            }
            out
        }
    }
}

/// Strategies sampling from existing collections.
pub mod sample {
    use crate::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// A strategy generating order-preserving subsequences of a fixed vector.
    #[derive(Clone, Debug)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        len: usize,
    }

    /// Creates a strategy that picks a uniformly random subsequence of
    /// exactly `len` elements from `values`, preserving their order.
    ///
    /// # Panics
    /// Panics if `len > values.len()`.
    pub fn subsequence<T: Clone>(values: Vec<T>, len: usize) -> Subsequence<T> {
        assert!(
            len <= values.len(),
            "subsequence: requested {len} of {} elements",
            values.len()
        );
        Subsequence { values, len }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        type Tree = crate::strategy::NoShrink<Vec<T>>;

        fn new_tree(&self, rng: &mut StdRng) -> Self::Tree {
            // Floyd's algorithm would avoid the index vec, but n is tiny in
            // practice; partial Fisher–Yates then sort keeps it simple.
            let n = self.values.len();
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..self.len {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            let mut chosen = idx[..self.len].to_vec();
            chosen.sort_unstable();
            crate::strategy::NoShrink(chosen.iter().map(|&i| self.values[i].clone()).collect())
        }
    }
}

/// Test-runner configuration and plumbing used by the [`proptest!`] macro.
pub mod test_runner {
    use rand::{rngs::StdRng, SeedableRng};

    /// Configuration for a `proptest!` block. Only `cases` is honoured by
    /// this shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A default configuration overriding the number of cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!` and should not be counted.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Stable 64-bit FNV-1a, used to derive a per-test seed from its name so
    /// failures reproduce deterministically across runs.
    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Upper bound on successful shrink steps per failure — a runaway
    /// backstop, far above what the halving strategies need.
    const MAX_SHRINK_STEPS: usize = 1024;

    /// A failing property case after shrinking.
    #[derive(Clone, Debug)]
    pub struct Failure {
        /// Seed of the originally failing case (re-seed [`StdRng`] with it
        /// to regenerate the raw value).
        pub seed: u64,
        /// 0-based index of the failing case within the run.
        pub case: u32,
        /// Number of successful shrink steps applied to the raw value.
        pub shrink_steps: usize,
        /// The assertion message of the raw (as-generated) failing value.
        pub raw_message: String,
        /// The assertion message of the minimal (shrunk) failing value —
        /// equal to `raw_message` when nothing shrank.
        pub message: String,
    }

    /// Drives one property test and returns the shrunk failure instead of
    /// panicking — the testable core of [`run`], also used by the shim's
    /// own shrinking self-tests.
    pub fn run_collect<S: crate::strategy::Strategy>(
        config: &ProptestConfig,
        test_name: &str,
        strategy: &S,
        case: &mut impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) -> Result<(), Failure> {
        use crate::strategy::ValueTree;
        let base = fnv1a(test_name);
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let max_rejects = (config.cases as u64) * 16 + 256;
        let mut attempt: u64 = 0;
        while passed < config.cases {
            let seed = base.wrapping_add(attempt);
            let mut rng = StdRng::seed_from_u64(seed);
            attempt += 1;
            let tree = strategy.new_tree(&mut rng);
            match case(tree.current()) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest '{test_name}': too many prop_assume! rejections \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
                Err(TestCaseError::Fail(raw_message)) => {
                    let (message, shrink_steps) = shrink_failure(tree, raw_message.clone(), case);
                    return Err(Failure {
                        seed,
                        case: passed,
                        shrink_steps,
                        raw_message,
                        message,
                    });
                }
            }
        }
        Ok(())
    }

    /// Greedy shrinking over [`crate::strategy::ValueTree`]s: repeatedly
    /// replace the failing tree by the first simpler candidate whose value
    /// still fails, until no candidate fails (a local minimum) or the step
    /// backstop is hit. `prop_assume!` rejections and passing candidates
    /// are skipped.
    fn shrink_failure<T: crate::strategy::ValueTree>(
        mut current: T,
        mut message: String,
        case: &mut impl FnMut(T::Value) -> Result<(), TestCaseError>,
    ) -> (String, usize) {
        let mut steps = 0usize;
        'outer: while steps < MAX_SHRINK_STEPS {
            for candidate in current.shrink() {
                if let Err(TestCaseError::Fail(msg)) = case(candidate.current()) {
                    current = candidate;
                    message = msg;
                    steps += 1;
                    continue 'outer;
                }
            }
            break; // no simpler candidate fails: minimal
        }
        (message, steps)
    }

    /// Drives one property test: runs `config.cases` cases (with a bounded
    /// retry budget for `prop_assume!` rejections), shrinks the first
    /// failing case to a minimal counterexample, and panics with both the
    /// minimal and the raw assertion messages.
    pub fn run<S: crate::strategy::Strategy>(
        config: &ProptestConfig,
        test_name: &str,
        strategy: &S,
        mut case: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) {
        if let Err(f) = run_collect(config, test_name, strategy, &mut case) {
            if f.shrink_steps == 0 {
                panic!(
                    "proptest '{test_name}' failed at case #{case} (seed {seed:#x}): {msg}",
                    case = f.case,
                    seed = f.seed,
                    msg = f.message
                );
            }
            panic!(
                "proptest '{test_name}' failed at case #{case} (seed {seed:#x}), \
                 shrunk {steps} steps: {msg}\n(raw case: {raw})",
                case = f.case,
                seed = f.seed,
                steps = f.shrink_steps,
                msg = f.message,
                raw = f.raw_message
            );
        }
    }
}

/// Everything a property test normally imports.
pub mod prelude {
    pub use crate::strategy::{Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
///
/// Expands to an early `return Err(..)` inside the case closure generated by
/// [`proptest!`]; an optional trailing format string customises the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right` ({})\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as in real
/// proptest) running many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            // The arguments' strategies combine into one tuple strategy, so
            // the runner can regenerate *and shrink* whole argument sets.
            let __strategy = ($($strat,)+);
            $crate::test_runner::run(&__config, stringify!($name), &__strategy, |__value| {
                let ($($arg,)+) = __value;
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((x, y) in (0.0f64..1.0, 0u32..10), n in 1usize..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(y < 10);
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec(0.0f64..=1.0, 2..6).prop_map(|v| v.len())) {
            prop_assert!((2..6).contains(&v));
        }

        #[test]
        fn subsequence_shuffle(s in crate::sample::subsequence((0u32..30).collect::<Vec<_>>(), 6).prop_shuffle()) {
            prop_assert_eq!(s.len(), 6);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), 6, "duplicates in subsequence {:?}", s);
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(8),
            "always_fails",
            &crate::strategy::Just(0u32),
            |_| Err::<(), _>(TestCaseError::fail("nope")),
        );
    }

    // -----------------------------------------------------------------
    // Shrinking self-tests: deliberately failing seeded properties must
    // report strictly smaller counterexamples than the raw generated case.
    // -----------------------------------------------------------------

    fn collect_failure<S: Strategy>(
        name: &str,
        strategy: &S,
        mut case: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) -> crate::test_runner::Failure
    where
        S::Value: Clone,
    {
        crate::test_runner::run_collect(&ProptestConfig::with_cases(64), name, strategy, &mut case)
            .expect_err("property is deliberately failing")
    }

    #[test]
    fn integer_failure_shrinks_to_exact_minimum() {
        // Fails iff n ≥ 1000; the raw case is a random value ≫ 1000, and
        // binary descent plus the predecessor candidate must land on the
        // *exact* smallest failing value.
        let strategy = (0u64..1_000_000,);
        let f = collect_failure("int_shrink", &strategy, |(n,)| {
            if n >= 1000 {
                Err(TestCaseError::fail(format!("n = {n}")))
            } else {
                Ok(())
            }
        });
        assert_eq!(f.message, "n = 1000", "raw case: {}", f.raw_message);
        assert!(f.shrink_steps > 0, "the raw case must actually shrink");
        assert_ne!(f.raw_message, f.message);
    }

    #[test]
    fn integer_shrinking_converges_logarithmically_to_distant_boundaries() {
        // The failure boundary sits ~half a million above the range start;
        // the power-of-two descent must still land on the exact minimum in
        // a logarithmic number of steps (a linear −1 walk would blow the
        // 1024-step backstop and report a barely-shrunk case).
        let strategy = (0u64..1_000_000,);
        let f = collect_failure("int_shrink_far", &strategy, |(n,)| {
            if n >= 500_000 {
                Err(TestCaseError::fail(format!("n = {n}")))
            } else {
                Ok(())
            }
        });
        assert_eq!(f.message, "n = 500000", "raw case: {}", f.raw_message);
        assert!(
            f.shrink_steps <= 64,
            "expected logarithmic convergence, took {} steps",
            f.shrink_steps
        );
    }

    #[test]
    fn vec_failure_shrinks_to_minimal_length() {
        let strategy = (crate::collection::vec(0u32..100, 0..30),);
        let f = collect_failure("vec_len_shrink", &strategy, |(v,)| {
            if v.len() >= 3 {
                Err(TestCaseError::fail(format!("len = {}", v.len())))
            } else {
                Ok(())
            }
        });
        assert_eq!(f.message, "len = 3", "raw case: {}", f.raw_message);
        assert!(f.shrink_steps > 0);
    }

    #[test]
    fn vec_elements_shrink_too() {
        // Fails iff any element ≥ 50: the minimal counterexample is the
        // one-element vector [50] — length shrinking *and* element
        // shrinking must both engage.
        let strategy = (crate::collection::vec(0u32..1000, 1..20),);
        let f = collect_failure("vec_elem_shrink", &strategy, |(v,)| {
            if v.iter().any(|&x| x >= 50) {
                Err(TestCaseError::fail(format!("{v:?}")))
            } else {
                Ok(())
            }
        });
        assert_eq!(f.message, "[50]", "raw case: {}", f.raw_message);
    }

    #[test]
    fn f64_failure_shrinks_towards_boundary() {
        // Fails iff x ≥ 0.5: the fraction-ladder bisection must close in
        // on the boundary (within a few percent), strictly below raw.
        let strategy = (0.0f64..1.0,);
        let f = collect_failure("f64_shrink", &strategy, |(x,)| {
            if x >= 0.5 {
                Err(TestCaseError::fail(format!("{x}")))
            } else {
                Ok(())
            }
        });
        let shrunk: f64 = f.message.parse().unwrap();
        let raw: f64 = f.raw_message.parse().unwrap();
        assert!((0.5..0.52).contains(&shrunk), "shrunk to {shrunk}");
        assert!(shrunk <= raw);
    }

    #[test]
    fn tuple_components_shrink_independently() {
        // Fails iff a + b ≥ 10 — both components must descend; the greedy
        // minimum pins one component at its range floor.
        let strategy = (0u32..100, 0u32..100);
        let f = collect_failure("tuple_shrink", &strategy, |(a, b)| {
            if a + b >= 10 {
                Err(TestCaseError::fail(format!("{a}+{b}")))
            } else {
                Ok(())
            }
        });
        let (a, b) = f.message.split_once('+').unwrap();
        let (a, b): (u32, u32) = (a.parse().unwrap(), b.parse().unwrap());
        assert_eq!(a + b, 10, "minimal failing sum; raw: {}", f.raw_message);
    }

    #[test]
    fn mapped_strategies_shrink_through_the_mapping() {
        // The mapping doubles the raw integer; shrinking must descend the
        // *pre-map* value and re-apply the map, landing on the exact
        // smallest failing output (2n ≥ 1000 ⇔ n ≥ 500 ⇒ minimal v = 1000)
        // — the old eager design reported the raw case unshrunk here.
        let strategy = ((0u64..1_000_000).prop_map(|n| n * 2),);
        let f = collect_failure("map_shrink", &strategy, |(v,)| {
            if v >= 1000 {
                Err(TestCaseError::fail(format!("v = {v}")))
            } else {
                Ok(())
            }
        });
        assert_eq!(f.message, "v = 1000", "raw case: {}", f.raw_message);
        assert!(f.shrink_steps > 0, "the mapped case must actually shrink");
    }

    #[test]
    fn mapped_collections_shrink_structurally_and_elementwise() {
        // A vec collapsed to its sum by prop_map: the tree must shrink the
        // underlying vector (length and elements) until the sum sits
        // exactly on the failure boundary.
        let strategy =
            (crate::collection::vec(0u32..1000, 1..20).prop_map(|v| v.iter().sum::<u32>()),);
        let f = collect_failure("map_vec_shrink", &strategy, |(sum,)| {
            if sum >= 50 {
                Err(TestCaseError::fail(format!("sum = {sum}")))
            } else {
                Ok(())
            }
        });
        assert_eq!(f.message, "sum = 50", "raw case: {}", f.raw_message);
    }

    #[test]
    fn chained_maps_shrink_through_both_layers() {
        let strategy = ((0u64..1_000_000).prop_map(|n| n + 3).prop_map(|n| n * 10),);
        let f = collect_failure("map_chain_shrink", &strategy, |(v,)| {
            if v >= 1000 {
                Err(TestCaseError::fail(format!("{v}")))
            } else {
                Ok(())
            }
        });
        // 10·(n+3) ≥ 1000 ⇔ n ≥ 97 ⇒ minimal output 1000.
        assert_eq!(f.message, "1000", "raw case: {}", f.raw_message);
    }

    #[test]
    fn passing_properties_do_not_shrink() {
        crate::test_runner::run_collect(
            &ProptestConfig::with_cases(16),
            "all_pass",
            &(0u32..10,),
            &mut |_| Ok(()),
        )
        .expect("no failure");
    }
}
