//! The [`Strategy`] trait, its combinators, and [`ValueTree`]-based
//! shrinking.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generated value plus everything needed to simplify it: the shrinking
/// state lives in the tree (range minima, per-element subtrees, the mapping
/// closure), so combinators like [`Strategy::prop_map`] shrink by shrinking
/// their *inner* tree and re-deriving the output — no inverse of the
/// mapping required.
pub trait ValueTree: Clone {
    /// The type of the value this tree represents.
    type Value;

    /// The value the tree currently represents.
    fn current(&self) -> Self::Value;

    /// Proposes strictly simpler candidate trees, simplest first. An empty
    /// vector means the value is fully shrunk (the default, for values that
    /// cannot be simplified).
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// A recipe for generating random values of an output type.
///
/// Unlike real proptest the tree is not lazy: a strategy deterministically
/// produces a [`ValueTree`] from an [`StdRng`] state, and the test runner
/// greedily re-runs the tree's shrink candidates, keeping the first one
/// that still fails, so reported counterexamples are (locally) minimal.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// The tree type carrying a generated value and its shrink state.
    type Tree: ValueTree<Value = Self::Value>;

    /// Generates one value together with its shrink state.
    fn new_tree(&self, rng: &mut StdRng) -> Self::Tree;

    /// Generates one bare value (no shrink state) — convenience for code
    /// that never shrinks.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        self.new_tree(rng).current()
    }

    /// Maps generated values through `f`. Mapped strategies shrink by
    /// shrinking the *inner* value and re-applying `f` ([`MapTree`]), so
    /// counterexamples stay minimal through arbitrary constructions.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Uniformly permutes generated collections (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    type Tree = MapTree<S::Tree, F>;

    fn new_tree(&self, rng: &mut StdRng) -> Self::Tree {
        MapTree {
            inner: self.inner.new_tree(rng),
            f: Rc::clone(&self.f),
        }
    }
}

/// The tree of a mapped strategy: the inner tree plus the (shared) mapping.
/// Shrinking shrinks the inner tree and re-derives the output — the fix for
/// the old eager design, where mapped counterexamples were reported raw.
#[derive(Debug)]
pub struct MapTree<T, F> {
    inner: T,
    f: Rc<F>,
}

impl<T: Clone, F> Clone for MapTree<T, F> {
    fn clone(&self) -> Self {
        MapTree {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<T, O, F> ValueTree for MapTree<T, F>
where
    T: ValueTree,
    F: Fn(T::Value) -> O,
{
    type Value = O;

    fn current(&self) -> O {
        (self.f)(self.inner.current())
    }

    fn shrink(&self) -> Vec<Self> {
        self.inner
            .shrink()
            .into_iter()
            .map(|t| MapTree {
                inner: t,
                f: Rc::clone(&self.f),
            })
            .collect()
    }
}

/// A collection whose elements can be permuted in place.
pub trait Shuffleable {
    /// Permutes `self` uniformly at random.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Clone, Debug)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;
    type Tree = ShuffleTree<S::Tree>;

    fn new_tree(&self, rng: &mut StdRng) -> Self::Tree {
        ShuffleTree {
            inner: self.inner.new_tree(rng),
            seed: rng.gen(),
        }
    }
}

/// The tree of a shuffled strategy: the inner tree plus the permutation's
/// seed, so the same permutation replays on every [`ValueTree::current`].
/// Shrink candidates keep the seed; if the inner shrink changes the
/// collection's *length* the replayed permutation differs — acceptable, as
/// order is re-randomised rather than corrupted, and the candidate only
/// survives if it still fails.
#[derive(Clone, Debug)]
pub struct ShuffleTree<T> {
    inner: T,
    seed: u64,
}

impl<T> ValueTree for ShuffleTree<T>
where
    T: ValueTree,
    T::Value: Shuffleable,
{
    type Value = T::Value;

    fn current(&self) -> T::Value {
        let mut v = self.inner.current();
        v.shuffle(&mut StdRng::seed_from_u64(self.seed));
        v
    }

    fn shrink(&self) -> Vec<Self> {
        self.inner
            .shrink()
            .into_iter()
            .map(|t| ShuffleTree {
                inner: t,
                seed: self.seed,
            })
            .collect()
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    type Tree = NoShrink<T>;

    fn new_tree(&self, _rng: &mut StdRng) -> NoShrink<T> {
        NoShrink(self.0.clone())
    }
}

/// A tree holding a value with no shrink state ([`Just`], fixed samples).
#[derive(Clone, Debug)]
pub struct NoShrink<T>(pub(crate) T);

impl<T: Clone> ValueTree for NoShrink<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }
}

/// The tree of a numeric range strategy: the range minimum (the shrink
/// target) plus the current value.
#[derive(Clone, Copy, Debug)]
pub struct NumTree<T> {
    lo: T,
    current: T,
}

impl ValueTree for NumTree<f64> {
    type Value = f64;

    fn current(&self) -> f64 {
        self.current
    }

    /// Candidates for a failing `f64`: the range minimum, then a ladder of
    /// fractions of the distance to it (1/2, 3/4, 7/8, 15/16, 31/32). The
    /// greedy runner keeps the first candidate that still fails, so
    /// repeated shrinking bisects towards the failure boundary.
    fn shrink(&self) -> Vec<Self> {
        let (lo, value) = (self.lo, self.current);
        // NaN (incomparable) and values at/below the minimum never shrink.
        if value.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return Vec::new();
        }
        let mut out = vec![NumTree { lo, current: lo }];
        for frac in [0.5, 0.75, 0.875, 0.9375, 0.96875] {
            let cand = lo + (value - lo) * frac;
            if cand > lo && cand < value {
                out.push(NumTree { lo, current: cand });
            }
        }
        out
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    type Tree = NumTree<f64>;

    fn new_tree(&self, rng: &mut StdRng) -> NumTree<f64> {
        NumTree {
            lo: self.start,
            current: rng.gen_range(self.clone()),
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    type Tree = NumTree<f64>;

    fn new_tree(&self, rng: &mut StdRng) -> NumTree<f64> {
        NumTree {
            lo: *self.start(),
            current: rng.gen_range(self.clone()),
        }
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl ValueTree for NumTree<$t> {
            type Value = $t;

            fn current(&self) -> $t {
                self.current
            }

            fn shrink(&self) -> Vec<Self> {
                let (lo, value) = (self.lo, self.current);
                let mut out: Vec<Self> = Vec::new();
                if value > lo {
                    // Simplest first: the minimum, then `value − 2^k` for
                    // descending k (ascending candidate values). The greedy
                    // runner keeps the smallest candidate that still fails,
                    // so the distance to the true failure boundary at least
                    // halves per step — logarithmic convergence onto the
                    // exact smallest failing value (the 2⁰ = 1 offset does
                    // the final step), from any distance.
                    out.push(NumTree { lo, current: lo });
                    let mut offsets: Vec<$t> = Vec::new();
                    let mut step: $t = 1;
                    loop {
                        match value.checked_sub(step) {
                            Some(c) if c > lo => offsets.push(c),
                            _ => break,
                        }
                        match step.checked_mul(2) {
                            Some(s) => step = s,
                            None => break,
                        }
                    }
                    out.extend(
                        offsets
                            .into_iter()
                            .rev()
                            .map(|current| NumTree { lo, current }),
                    );
                }
                out
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            type Tree = NumTree<$t>;

            fn new_tree(&self, rng: &mut StdRng) -> NumTree<$t> {
                NumTree {
                    lo: self.start,
                    current: rng.gen_range(self.clone()),
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            type Tree = NumTree<$t>;

            fn new_tree(&self, rng: &mut StdRng) -> NumTree<$t> {
                NumTree {
                    lo: *self.start(),
                    current: rng.gen_range(self.clone()),
                }
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            type Tree = ($($s::Tree,)+);

            fn new_tree(&self, rng: &mut StdRng) -> Self::Tree {
                ($(self.$idx.new_tree(rng),)+)
            }
        }

        impl<$($s: ValueTree),+> ValueTree for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn current(&self) -> Self::Value {
                ($(self.$idx.current(),)+)
            }

            fn shrink(&self) -> Vec<Self> {
                // Shrink one component at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink() {
                        let mut next = self.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
