//! The [`Strategy`] trait and its combinators, with greedy shrinking.

use rand::{rngs::StdRng, Rng};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of an output type.
///
/// Unlike real proptest there is no lazy value tree: a strategy is a
/// deterministic function of an [`StdRng`] state, plus an eager
/// [`Strategy::shrink`] that proposes *simpler* candidates for a failing
/// value. The test runner greedily re-runs candidates and keeps the first
/// one that still fails, so reported counterexamples are (locally) minimal.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes strictly simpler candidate values for a failing `value`,
    /// simplest first (greedy halving towards the strategy's minimum).
    /// An empty vector means the value is fully shrunk. The default — used
    /// by strategies whose values cannot be simplified generically, such as
    /// [`Map`] (the mapping is not invertible) — never shrinks.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`. Mapped strategies do not shrink
    /// (the inverse of `f` is unknown); put `prop_map` as late as possible.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Uniformly permutes generated collections (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A collection whose elements can be permuted in place.
pub trait Shuffleable {
    /// Permutes `self` uniformly at random.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Clone, Debug)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        let mut v = self.inner.new_value(rng);
        v.shuffle(rng);
        v
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        // A shuffled value is still a value of the inner strategy's type;
        // delegate (order is part of the failing case and is preserved).
        self.inner.shrink(value)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_f64_towards(self.start, *value)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_f64_towards(*self.start(), *value)
    }
}

/// Candidates for a failing `f64`: the range minimum, then a ladder of
/// fractions of the distance to it (1/2, 3/4, 7/8, 15/16, 31/32). The
/// greedy runner keeps the first candidate that still fails, so repeated
/// shrinking bisects towards the failure boundary.
fn shrink_f64_towards(lo: f64, value: f64) -> Vec<f64> {
    // NaN (incomparable) and values at/below the minimum never shrink.
    if value.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return Vec::new();
    }
    let mut out = vec![lo];
    for frac in [0.5, 0.75, 0.875, 0.9375, 0.96875] {
        let cand = lo + (value - lo) * frac;
        if cand > lo && cand < value {
            out.push(cand);
        }
    }
    out
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let mut out: Vec<$t> = Vec::new();
                if *value > lo {
                    // Simplest first: the minimum, then `value − 2^k` for
                    // descending k (ascending candidate values). The greedy
                    // runner keeps the smallest candidate that still fails,
                    // so the distance to the true failure boundary at least
                    // halves per step — logarithmic convergence onto the
                    // exact smallest failing value (the 2⁰ = 1 offset does
                    // the final step), from any distance.
                    out.push(lo);
                    let mut offsets: Vec<$t> = Vec::new();
                    let mut step: $t = 1;
                    loop {
                        match value.checked_sub(step) {
                            Some(c) if c > lo => offsets.push(c),
                            _ => break,
                        }
                        match step.checked_mul(2) {
                            Some(s) => step = s,
                            None => break,
                        }
                    }
                    out.extend(offsets.into_iter().rev());
                }
                out
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                (*self.start()..*self.end()).shrink(value)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Shrink one component at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
