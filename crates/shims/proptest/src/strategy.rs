//! The [`Strategy`] trait and its combinators (no shrinking).

use rand::{rngs::StdRng, Rng};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of an output type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of an [`StdRng`] state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Uniformly permutes generated collections (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A collection whose elements can be permuted in place.
pub trait Shuffleable {
    /// Permutes `self` uniformly at random.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Clone, Debug)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        let mut v = self.inner.new_value(rng);
        v.shuffle(rng);
        v
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
