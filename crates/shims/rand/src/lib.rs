//! Minimal, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, providing exactly the API subset the `prf` workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and fully deterministic per seed, which is all the workspace
//! requires (every dataset generator and experiment takes an explicit seed).
//! The stream is *not* identical to real `rand 0.8`'s `StdRng` (ChaCha12);
//! nothing in the workspace depends on the exact stream.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, integers uniform over their full range).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distributions for [`Rng::gen`] and range sampling.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform `[0, 1)` for floats, uniform over
    /// the whole domain for integers and `bool`.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform range sampling (the subset of `rand::distributions::uniform`
    /// that [`super::Rng::gen_range`] needs).
    pub mod uniform {
        use super::super::{Range, RangeInclusive, RngCore};

        fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A range that knows how to sample a single uniform value from
        /// itself.
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + unit_f64(rng) * (self.end - self.start)
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // 53-bit grid over [lo, hi]; both endpoints reachable.
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                lo + u * (hi - lo)
            }
        }

        impl SampleRange<f32> for Range<f32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + unit_f64(rng) as f32 * (self.end - self.start)
            }
        }

        macro_rules! impl_sample_range_int {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        // Modulo bias is < 2^-64 for the spans this
                        // workspace uses; acceptable for a test/datagen shim.
                        let off = (rng.next_u64() as u128) % span;
                        (self.start as i128 + off as i128) as $t
                    }
                }

                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let off = (rng.next_u64() as u128) % span;
                        (lo as i128 + off as i128) as $t
                    }
                }
            )*};
        }
        impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand's SeedableRng::seed_from_u64 does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean badly off");
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(0u32..=5);
            assert!(j <= 5);
            let x = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&x));
        }
        // Both endpoints of a tiny inclusive range are reachable.
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[rng.gen_range(0usize..=1)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }
}
