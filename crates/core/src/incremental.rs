//! The incremental generating-function engine for and/xor trees.
//!
//! Algorithm 2 of the paper evaluates one tree generating function *per
//! tuple*: walking the tuples in score order, tuple `i`'s function differs
//! from tuple `i−1`'s in exactly **two leaf labels** (the previous tuple's
//! leaf flips `y → x`, the current one flips `1 → y`), yet the literal
//! implementation re-folds the entire tree each time — `O(n²·h)` on general
//! trees, the wall the Figure 10(ii)/11(iii) experiments hit. This module
//! materializes the fold state once and then recombines **only the two
//! leaf-to-root paths** per step, the same observation that makes fast
//! x-relation ranking possible (Chang, Yu & Qin), generalised to arbitrary
//! and/xor trees and to *any* [`GfValue`] ring — truncated rank polynomials
//! for PRFω(h)/PT(h), scalars ([`prf_numeric::Complex`], log/scaled,
//! [`prf_numeric::Dual`]) wrapped in [`prf_numeric::YLin`] for PRFe and
//! expected ranks.
//!
//! # Division-free sibling products
//!
//! The classic incremental trick (Algorithm 3) updates an ∧-node product by
//! *dividing out* the stale child factor — fine for field scalars with
//! zero-count bookkeeping, impossible for truncated polynomials (division
//! is numerically unstable and undefined past the truncation cap). Instead,
//! [`EvalPlan`] compiles the tree into a **binarised combine plan**: every
//! ∧ node with `k` children becomes a balanced tournament of 2-child
//! product nodes, each caching its value. Updating one child recombines the
//! `O(log k)` tournament nodes on its path using the *cached sibling
//! product* at each step — the k-ary generalisation of prefix/suffix
//! sibling caches, with no division anywhere, so zero-probability edges,
//! `p = 1` leaves and ∨-slack stay exact. ∨ nodes update in `O(1)` ring
//! operations via the linear delta `F ← F + p·(new − old)`.
//!
//! Per-tuple cost drops from `O(tree size · h)` to
//! `O(depth · log fanout · h)` ring work; on the x-relation-shaped trees of
//! the experiments that is `O(h²·log(n/h))` per tuple instead of `O(n·h)` —
//! see `benches/trees.rs` for the measured ≥10× wall-clock gap.
//!
//! # Memory accounting
//!
//! The evaluator owns one ring value per plan node; [`IncrementalGf::stats`]
//! reports the resident and peak coefficient footprint (tracked exactly, at
//! every value replacement) so callers — the `RankQuery` engine's
//! [`crate::query::EvalReport`] — can surface evaluator memory alongside
//! timings.

use prf_numeric::GfValue;
use prf_pdb::{AndXorTree, NodeKind, TupleId};

/// Sentinel parent index of the plan root.
const NO_PARENT: u32 = u32::MAX;

/// How one plan node combines its children.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Combine {
    /// A tuple's leaf; holds whatever label the caller assigns.
    Leaf(TupleId),
    /// `slack + Σ pᵢ·childᵢ` — an original ∨ node (also represents
    /// childless inner nodes as the constant `slack`).
    Xor,
    /// `left · right` — one tournament node of a binarised ∧ node.
    And,
}

/// One node of the compiled combine plan.
#[derive(Clone, Debug)]
struct PlanNode {
    /// Parent plan index ([`NO_PARENT`] for the root).
    parent: u32,
    /// Probability the ∨ parent applies to this subtree (1.0 under ∧).
    edge_prob: f64,
    /// Combination rule.
    combine: Combine,
    /// `1 − Σ p` for ∨ nodes; 1.0 elsewhere.
    slack: f64,
    /// Children as a range into [`EvalPlan::children`].
    child_lo: u32,
    /// Exclusive end of the child range.
    child_hi: u32,
}

/// Where a subtree's folded value lives during compilation: the plan node
/// carrying it plus the affine transform `value = a·plan + b` accumulated by
/// collapsing unary spines (single-child ∨/∧ chains) without materializing
/// them.
#[derive(Clone, Copy, Debug)]
struct Folded {
    plan: u32,
    a: f64,
    b: f64,
    chain: LeafChain,
}

/// Tracks whether a folded subtree is a pure leaf spine, so the leaf's edge
/// probability can later be re-written in place ([`EvalPlan::reweight_leaf`]).
#[derive(Clone, Copy, Debug)]
enum LeafChain {
    /// Not a single-leaf spine (or the leaf's own edge is ∧-pinned).
    Opaque,
    /// The bare leaf of tuple `t`; its edge probability not yet consumed.
    Bare(TupleId),
    /// A spine over tuple `t`'s leaf whose folded edge is `scale · p(t)` and
    /// whose folded constant shifts by `scale·(p − p')` under a reweight.
    /// `bottom` is the tree index of the leaf's direct ∨ parent — the node
    /// future children of which can still be spliced in.
    Spine(TupleId, f64, u32),
}

/// A compiled, reusable evaluation plan for one [`AndXorTree`]: the
/// binarised combine structure shared by every [`IncrementalGf`] built over
/// the tree (parallel shards, PRFe mixture terms, repeated queries).
///
/// Plan indices are topological — every child precedes its parent — so a
/// single forward scan initialises an evaluator. (Leaf splices may orphan a
/// node: orphans keep valid child ranges and are skipped by updates.)
#[derive(Clone, Debug)]
pub struct EvalPlan {
    nodes: Vec<PlanNode>,
    children: Vec<u32>,
    /// Plan index of each tuple's leaf.
    leaf_node: Vec<u32>,
    /// Plan index of the root value.
    root: u32,
    /// Per tuple: `Some(scale)` when the leaf's edge probability can be
    /// patched in place (its plan edge is `scale·p` under a materialized ∨
    /// plan node whose slack absorbs `scale·(1−p)`).
    leaf_patch: Vec<Option<f64>>,
    /// Per tree node: `Some((plan, scale))` for ∨ nodes a new leaf can be
    /// spliced under — a child inserted there with edge probability `p`
    /// becomes a child of plan node `plan` with edge `scale·p` while its
    /// slack drops by `scale·p`. Covers materialized ∨ nodes (`scale = 1`)
    /// and the bottom of every compressed spine.
    xor_splice: Vec<Option<(u32, f64)>>,
    /// Nodes orphaned by splices — their storage is reclaimed only by a
    /// recompile, so callers bound splice counts (see [`EvalPlan::splices`]).
    splices: u32,
}

impl EvalPlan {
    /// Compiles the combine plan: ∨ nodes map 1:1, ∧ nodes with `k ≥ 2`
    /// children become balanced `k − 1`-node product tournaments,
    /// single-child ∧ nodes collapse onto their child, childless inner
    /// nodes become constants, and **unary spines compress**: a chain of
    /// single-child ∨ nodes folds into one affine transform `a·child + b`
    /// absorbed into the consuming edge (∨ parents) or one wrapper node (∧
    /// parents / the root), so a depth-`d` chain costs O(1) plan depth
    /// instead of O(d) per update.
    pub fn new(tree: &AndXorTree) -> EvalPlan {
        Self::compile(tree, true)
    }

    /// Compiles without unary-spine compression (every ∨ node materializes
    /// 1:1, the pre-compression behaviour). Kept as the ablation baseline
    /// for the path-compression benchmark; prefer [`EvalPlan::new`].
    pub fn new_uncompressed(tree: &AndXorTree) -> EvalPlan {
        Self::compile(tree, false)
    }

    fn compile(tree: &AndXorTree, compress: bool) -> EvalPlan {
        let nn = tree.node_count();
        let mut nodes: Vec<PlanNode> = Vec::with_capacity(2 * nn);
        let mut children: Vec<u32> = Vec::with_capacity(2 * nn);
        let mut folded: Vec<Folded> = vec![
            Folded {
                plan: 0,
                a: 1.0,
                b: 0.0,
                chain: LeafChain::Opaque,
            };
            nn
        ];
        let mut xor_splice: Vec<Option<(u32, f64)>> = vec![None; nn];
        let mut leaf_node = vec![0u32; tree.n_tuples()];
        let mut leaf_patch: Vec<Option<f64>> = vec![None; tree.n_tuples()];
        // Builder invariant: children have larger ids than parents, so a
        // reverse scan visits children first.
        for idx in (0..nn).rev() {
            let node = prf_pdb::NodeId(idx as u32);
            let f = match tree.kind(node) {
                NodeKind::Leaf(t) => {
                    let id = nodes.len() as u32;
                    nodes.push(PlanNode {
                        parent: NO_PARENT,
                        edge_prob: 1.0,
                        combine: Combine::Leaf(t),
                        slack: 1.0,
                        child_lo: 0,
                        child_hi: 0,
                    });
                    leaf_node[t.index()] = id;
                    Folded {
                        plan: id,
                        a: 1.0,
                        b: 0.0,
                        chain: LeafChain::Bare(t),
                    }
                }
                NodeKind::Xor => {
                    let kids = tree.children(node);
                    if compress && kids.len() == 1 {
                        // Unary spine step: fold the edge and slack into the
                        // child's affine instead of materializing a node.
                        let c = kids[0];
                        let cf = folded[c.index()];
                        let p = tree.edge_prob(c);
                        Folded {
                            plan: cf.plan,
                            a: p * cf.a,
                            b: tree.xor_slack(node) + p * cf.b,
                            chain: match cf.chain {
                                LeafChain::Bare(t) => LeafChain::Spine(t, 1.0, idx as u32),
                                LeafChain::Spine(t, s, bot) => LeafChain::Spine(t, p * s, bot),
                                LeafChain::Opaque => LeafChain::Opaque,
                            },
                        }
                    } else {
                        let lo = children.len() as u32;
                        for &c in kids {
                            children.push(folded[c.index()].plan);
                        }
                        let hi = children.len() as u32;
                        let id = nodes.len() as u32;
                        nodes.push(PlanNode {
                            parent: NO_PARENT,
                            edge_prob: 1.0,
                            combine: Combine::Xor,
                            slack: tree.xor_slack(node),
                            child_lo: lo,
                            child_hi: hi,
                        });
                        for &c in kids {
                            let cf = folded[c.index()];
                            let p = tree.edge_prob(c);
                            let cp = cf.plan as usize;
                            nodes[cp].parent = id;
                            nodes[cp].edge_prob = p * cf.a;
                            nodes[id as usize].slack += p * cf.b;
                            match cf.chain {
                                LeafChain::Bare(t) => leaf_patch[t.index()] = Some(1.0),
                                LeafChain::Spine(t, s, bot) => {
                                    leaf_patch[t.index()] = Some(p * s);
                                    xor_splice[bot as usize] = Some((id, p * s));
                                }
                                LeafChain::Opaque => {}
                            }
                        }
                        xor_splice[idx] = Some((id, 1.0));
                        Folded {
                            plan: id,
                            a: 1.0,
                            b: 0.0,
                            chain: LeafChain::Opaque,
                        }
                    }
                }
                NodeKind::And => match tree.children(node) {
                    [] => {
                        // Childless ∧ ≡ the constant 1 (empty product),
                        // encoded as a ∨ node with slack 1 and no children.
                        let id = nodes.len() as u32;
                        nodes.push(PlanNode {
                            parent: NO_PARENT,
                            edge_prob: 1.0,
                            combine: Combine::Xor,
                            slack: 1.0,
                            child_lo: 0,
                            child_hi: 0,
                        });
                        Folded {
                            plan: id,
                            a: 1.0,
                            b: 0.0,
                            chain: LeafChain::Opaque,
                        }
                    }
                    // Single-child ∧ ≡ the child itself (∧ edges carry no
                    // probability). A bare leaf loses patchability here: its
                    // own edge is ∧-pinned at 1.0, and any probability above
                    // belongs to this ∧ node.
                    [only] => {
                        let cf = folded[only.index()];
                        Folded {
                            chain: match cf.chain {
                                LeafChain::Bare(_) => LeafChain::Opaque,
                                other => other,
                            },
                            ..cf
                        }
                    }
                    kids => {
                        // Products need concrete values: materialize each
                        // child's affine (one wrapper regardless of spine
                        // depth), then pair adjacent survivors per round —
                        // an odd leftover is promoted unchanged.
                        let mut level: Vec<u32> = kids
                            .iter()
                            .map(|c| {
                                Self::wrap_affine(
                                    &mut nodes,
                                    &mut children,
                                    &mut leaf_patch,
                                    &mut xor_splice,
                                    folded[c.index()],
                                )
                            })
                            .collect();
                        while level.len() > 1 {
                            let mut next = Vec::with_capacity(level.len().div_ceil(2));
                            for pair in level.chunks(2) {
                                if let [l, r] = *pair {
                                    let lo = children.len() as u32;
                                    children.push(l);
                                    children.push(r);
                                    let id = nodes.len() as u32;
                                    nodes.push(PlanNode {
                                        parent: NO_PARENT,
                                        edge_prob: 1.0,
                                        combine: Combine::And,
                                        slack: 1.0,
                                        child_lo: lo,
                                        child_hi: lo + 2,
                                    });
                                    nodes[l as usize].parent = id;
                                    nodes[r as usize].parent = id;
                                    next.push(id);
                                } else {
                                    next.push(pair[0]);
                                }
                            }
                            level = next;
                        }
                        Folded {
                            plan: level[0],
                            a: 1.0,
                            b: 0.0,
                            chain: LeafChain::Opaque,
                        }
                    }
                },
            };
            folded[idx] = f;
        }
        // The root value must be concrete; a root-spanning spine gets one
        // wrapper node.
        let root = Self::wrap_affine(
            &mut nodes,
            &mut children,
            &mut leaf_patch,
            &mut xor_splice,
            folded[0],
        );
        EvalPlan {
            nodes,
            children,
            leaf_node,
            root,
            leaf_patch,
            xor_splice,
            splices: 0,
        }
    }

    /// Materializes a folded value as a plan node: identity affines pass
    /// through; anything else becomes one single-child ∨ wrapper
    /// (`slack = b`, edge `a`) — the whole spine in one node.
    fn wrap_affine(
        nodes: &mut Vec<PlanNode>,
        children: &mut Vec<u32>,
        leaf_patch: &mut [Option<f64>],
        xor_splice: &mut [Option<(u32, f64)>],
        cf: Folded,
    ) -> u32 {
        if cf.a == 1.0 && cf.b == 0.0 {
            return cf.plan;
        }
        let lo = children.len() as u32;
        children.push(cf.plan);
        let id = nodes.len() as u32;
        nodes.push(PlanNode {
            parent: NO_PARENT,
            edge_prob: 1.0,
            combine: Combine::Xor,
            slack: cf.b,
            child_lo: lo,
            child_hi: lo + 1,
        });
        nodes[cf.plan as usize].parent = id;
        nodes[cf.plan as usize].edge_prob = cf.a;
        if let LeafChain::Spine(t, s, bot) = cf.chain {
            leaf_patch[t.index()] = Some(s);
            xor_splice[bot as usize] = Some((id, s));
        }
        id
    }

    /// Patches the plan in place after tuple `t`'s edge probability changed
    /// from `old_prob` to `new_prob` (the tree must already be mutated, e.g.
    /// via `AndXorTree::reweight_leaf`): the leaf's plan edge becomes
    /// `scale·new_prob` and its ∨ parent's slack absorbs the linear delta —
    /// O(1), no recompilation, every evaluator built afterwards sees the new
    /// probabilities.
    ///
    /// Returns `false` when the leaf is not patchable (its edge is ∧-pinned
    /// or was folded non-linearly); the caller should recompile with
    /// [`EvalPlan::new`].
    pub fn reweight_leaf(&mut self, t: TupleId, old_prob: f64, new_prob: f64) -> bool {
        let Some(Some(scale)) = self.leaf_patch.get(t.index()).copied() else {
            return false;
        };
        let leaf = self.leaf_node[t.index()] as usize;
        let parent = self.nodes[leaf].parent;
        if parent == NO_PARENT {
            return false;
        }
        self.nodes[leaf].edge_prob = scale * new_prob;
        self.nodes[parent as usize].slack += scale * (old_prob - new_prob);
        true
    }

    /// Splices a freshly inserted leaf (tuple `t`, which must be the
    /// highest tuple id) into the compiled plan after the tree mutation,
    /// without recompiling. Two shapes are handled:
    ///
    /// * the leaf joined a **materialized ∨ node** — the ∨ plan node is
    ///   re-emitted with the extra child (the stale node is orphaned) and
    ///   its slack drops by the new edge probability;
    /// * the leaf is a **fresh singleton ∨ group under an ∧ root** (the
    ///   x-tuple / independent shape) — one wrapper and one product node
    ///   join it against the current root, rebalancing locally.
    ///
    /// Returns `false` for any other shape; the caller should recompile.
    /// Each splice orphans one leaf-to-root chain of stale nodes (or adds a
    /// root tournament level), so callers recompile once
    /// [`EvalPlan::splices`] grows past a small budget.
    pub fn splice_insert(&mut self, tree: &AndXorTree, t: TupleId) -> bool {
        if t.index() != self.leaf_node.len() || tree.n_tuples() != self.leaf_node.len() + 1 {
            return false;
        }
        let leaf_tree = tree.leaf_of(t);
        let p = tree.edge_prob(leaf_tree);
        let Some(parent_tree) = tree.parent(leaf_tree) else {
            return false;
        };
        self.xor_splice.resize(tree.node_count(), None);
        let pt = parent_tree.index();
        if let Some((pid, scale)) = self.xor_splice[pt] {
            // Re-emit the consuming ∨ node at the tail with the extra
            // child (edge = spine scale × p, slack sheds exactly what the
            // edge gains), then re-emit its whole ancestor chain too —
            // plan order must stay topological, so every node whose child
            // moved past it must itself move past that child. Stale
            // copies are orphaned in place.
            let old = self.nodes[pid as usize].clone();
            let leaf_id = self.nodes.len() as u32;
            let new_id = leaf_id + 1;
            self.nodes.push(PlanNode {
                parent: new_id,
                edge_prob: scale * p,
                combine: Combine::Leaf(t),
                slack: 1.0,
                child_lo: 0,
                child_hi: 0,
            });
            let lo = self.children.len() as u32;
            for i in old.child_lo..old.child_hi {
                let c = self.children[i as usize];
                self.children.push(c);
                self.nodes[c as usize].parent = new_id;
            }
            self.children.push(leaf_id);
            let hi = self.children.len() as u32;
            self.nodes.push(PlanNode {
                parent: old.parent,
                edge_prob: old.edge_prob,
                combine: Combine::Xor,
                slack: old.slack - scale * p,
                child_lo: lo,
                child_hi: hi,
            });
            self.nodes[pid as usize].parent = NO_PARENT;
            let mut remaps = vec![(pid, new_id)];
            let mut old_cur = pid;
            let mut new_cur = new_id;
            let mut parent = old.parent;
            while parent != NO_PARENT {
                let anc = self.nodes[parent as usize].clone();
                let anc_new = self.nodes.len() as u32;
                let lo = self.children.len() as u32;
                for i in anc.child_lo..anc.child_hi {
                    let c = self.children[i as usize];
                    let c = if c == old_cur { new_cur } else { c };
                    self.children.push(c);
                    self.nodes[c as usize].parent = anc_new;
                }
                let hi = self.children.len() as u32;
                self.nodes.push(PlanNode {
                    parent: anc.parent,
                    edge_prob: anc.edge_prob,
                    combine: anc.combine,
                    slack: anc.slack,
                    child_lo: lo,
                    child_hi: hi,
                });
                self.nodes[parent as usize].parent = NO_PARENT;
                remaps.push((parent, anc_new));
                old_cur = parent;
                new_cur = anc_new;
                parent = anc.parent;
            }
            if self.root == old_cur {
                self.root = new_cur;
            }
            for entry in self.xor_splice.iter_mut().flatten() {
                if let Some(&(_, n)) = remaps.iter().find(|(o, _)| *o == entry.0) {
                    entry.0 = n;
                }
            }
            self.leaf_node.push(leaf_id);
            self.leaf_patch.push(Some(scale));
            self.splices += 1;
            return true;
        }
        // Fresh singleton ∨ group directly under an ∧ root: multiply the
        // current root by the group's wrapper via one new product node.
        let is_fresh_group = tree.kind(parent_tree) == NodeKind::Xor
            && tree.children(parent_tree) == [leaf_tree]
            && tree.parent(parent_tree) == Some(tree.root())
            && tree.kind(tree.root()) == NodeKind::And
            && tree.children(tree.root()).len() > 1;
        if !is_fresh_group {
            return false;
        }
        let leaf_id = self.nodes.len() as u32;
        let wrapper_id = leaf_id + 1;
        let root_id = leaf_id + 2;
        self.nodes.push(PlanNode {
            parent: wrapper_id,
            edge_prob: p,
            combine: Combine::Leaf(t),
            slack: 1.0,
            child_lo: 0,
            child_hi: 0,
        });
        let lo = self.children.len() as u32;
        self.children.push(leaf_id);
        self.nodes.push(PlanNode {
            parent: root_id,
            edge_prob: 1.0,
            combine: Combine::Xor,
            slack: tree.xor_slack(parent_tree),
            child_lo: lo,
            child_hi: lo + 1,
        });
        let old_root = self.root;
        self.children.push(old_root);
        self.children.push(wrapper_id);
        self.nodes.push(PlanNode {
            parent: NO_PARENT,
            edge_prob: 1.0,
            combine: Combine::And,
            slack: 1.0,
            child_lo: lo + 1,
            child_hi: lo + 3,
        });
        self.nodes[old_root as usize].parent = root_id;
        self.root = root_id;
        self.xor_splice[pt] = Some((wrapper_id, 1.0));
        self.leaf_node.push(leaf_id);
        self.leaf_patch.push(Some(1.0));
        self.splices += 1;
        true
    }

    /// Number of leaf splices applied since compilation. Each one orphans
    /// a stale chain of nodes and may deepen the root locally; recompiling
    /// resets the plan to its balanced, garbage-free form.
    pub fn splices(&self) -> u32 {
        self.splices
    }

    /// Number of plan nodes (≤ 2× the tree's node count).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Builds an evaluator over this plan with every leaf labelled by
    /// `leaf_value` — the "fast-forward" constructor: parallel shards seed
    /// mid-walk states by labelling already-processed leaves directly.
    pub fn evaluator<T: GfValue>(
        &self,
        mut leaf_value: impl FnMut(TupleId) -> T,
    ) -> IncrementalGf<'_, T> {
        let mut values: Vec<T> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let v = match node.combine {
                Combine::Leaf(t) => leaf_value(t),
                Combine::Xor => {
                    let mut acc = T::from_scalar(node.slack);
                    for &c in &self.children[node.child_lo as usize..node.child_hi as usize] {
                        acc.add_scaled_assign(
                            &values[c as usize],
                            self.nodes[c as usize].edge_prob,
                        );
                    }
                    acc
                }
                Combine::And => {
                    let l = self.children[node.child_lo as usize] as usize;
                    let r = self.children[node.child_lo as usize + 1] as usize;
                    values[l].mul(&values[r])
                }
            };
            values.push(v);
        }
        let resident: usize = values.iter().map(GfValue::heap_coeffs).sum();
        IncrementalGf {
            plan: self,
            values,
            resident_coeffs: resident,
            peak_coeffs: resident,
        }
    }
}

/// Memory accounting of one evaluator run — surfaced through
/// [`crate::query::EvalReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GfStats {
    /// Cached ring values held by the evaluator (plan nodes).
    pub plan_nodes: usize,
    /// Heap-allocated scalar coefficients resident when the stats were
    /// taken.
    pub resident_coefficients: usize,
    /// Peak resident coefficient count over the evaluator's lifetime.
    pub peak_coefficients: usize,
    /// Estimated peak bytes: inline value storage plus peak coefficients at
    /// 8 bytes each.
    pub peak_bytes: usize,
}

impl GfStats {
    /// Combines the accounting of concurrently live evaluators (parallel
    /// shards): all fields sum, because the shards coexist in memory.
    pub fn merge(self, other: GfStats) -> GfStats {
        GfStats {
            plan_nodes: self.plan_nodes + other.plan_nodes,
            resident_coefficients: self.resident_coefficients + other.resident_coefficients,
            peak_coefficients: self.peak_coefficients + other.peak_coefficients,
            peak_bytes: self.peak_bytes + other.peak_bytes,
        }
    }
}

/// The incremental generating-function evaluator: cached fold state over an
/// [`EvalPlan`], generic over the [`GfValue`] ring.
///
/// [`IncrementalGf::set_leaf`] relabels one leaf and recombines its
/// leaf-to-root path; [`IncrementalGf::root`] reads the current generating
/// function. Ranking walks call `set_leaf` twice per tuple (previous leaf
/// `y → x`, current leaf `1 → y`) and read the root — see
/// [`crate::tree::prf_rank_tree`] and [`crate::tree::prfe_rank_tree`].
/// Cloning snapshots the full fold state (the plan is shared by
/// reference): the parallel shard walks clone one shared-prefix evaluator
/// per shard instead of re-folding the plan from scratch.
#[derive(Clone, Debug)]
pub struct IncrementalGf<'p, T: GfValue> {
    plan: &'p EvalPlan,
    values: Vec<T>,
    resident_coeffs: usize,
    peak_coeffs: usize,
}

impl<'p, T: GfValue> IncrementalGf<'p, T> {
    /// Replaces the value at `idx`, maintaining the coefficient accounting,
    /// and returns the previous value.
    fn replace(&mut self, idx: usize, v: T) -> T {
        self.resident_coeffs += v.heap_coeffs();
        let old = std::mem::replace(&mut self.values[idx], v);
        self.resident_coeffs -= old.heap_coeffs();
        self.peak_coeffs = self.peak_coeffs.max(self.resident_coeffs);
        old
    }

    /// Relabels the leaf of tuple `t` and recombines its leaf-to-root path:
    /// `O(1)` ring operations per ∨ ancestor (linear delta), one cached
    /// sibling product per ∧ tournament level — no division anywhere.
    pub fn set_leaf(&mut self, t: TupleId, value: T) {
        let plan = self.plan;
        let mut cur = plan.leaf_node[t.index()] as usize;
        let mut old = self.replace(cur, value);
        while plan.nodes[cur].parent != NO_PARENT {
            let p = plan.nodes[cur].parent as usize;
            let pnode = &plan.nodes[p];
            let new_parent = match pnode.combine {
                Combine::Xor => {
                    // F ← F + p·(new − old), fused in place on a clone so
                    // the pre-update value survives for the next level.
                    let mut pv = self.values[p].clone();
                    pv.add_scaled_diff_assign(&self.values[cur], &old, plan.nodes[cur].edge_prob);
                    pv
                }
                Combine::And => {
                    // Fresh sibling product — exact, no error accumulation.
                    let l = plan.children[pnode.child_lo as usize] as usize;
                    let r = plan.children[pnode.child_lo as usize + 1] as usize;
                    self.values[l].mul(&self.values[r])
                }
                Combine::Leaf(_) => unreachable!("leaves have no children"),
            };
            old = self.replace(p, new_parent);
            cur = p;
        }
    }

    /// Relabels many leaves at once and refolds **bottom-up in one sweep**:
    /// `leaf_value` returns `Some(new label)` for the leaves to change,
    /// `None` to keep the rest. Plan order is topological (children before
    /// parents), so a single forward scan recomputes exactly the dirty
    /// ancestors — ring work proportional to the changed subtree, not to
    /// `changed leaves × depth` as repeated [`IncrementalGf::set_leaf`]
    /// calls would cost, and never the full plan unless everything moved.
    ///
    /// This is the shared-prefix primitive of the parallel walks: advance
    /// one evaluator chunk by chunk, [`Clone`] a snapshot per shard.
    pub fn set_leaves_bulk(&mut self, mut leaf_value: impl FnMut(TupleId) -> Option<T>) {
        let plan = self.plan;
        let mut dirty = vec![false; plan.nodes.len()];
        for idx in 0..plan.nodes.len() {
            let node = &plan.nodes[idx];
            match node.combine {
                Combine::Leaf(t) => {
                    if let Some(v) = leaf_value(t) {
                        self.replace(idx, v);
                        dirty[idx] = true;
                    }
                }
                Combine::Xor => {
                    let kids = &plan.children[node.child_lo as usize..node.child_hi as usize];
                    if kids.iter().any(|&c| dirty[c as usize]) {
                        let mut acc = T::from_scalar(node.slack);
                        for &c in kids {
                            acc.add_scaled_assign(
                                &self.values[c as usize],
                                plan.nodes[c as usize].edge_prob,
                            );
                        }
                        self.replace(idx, acc);
                        dirty[idx] = true;
                    }
                }
                Combine::And => {
                    let l = plan.children[node.child_lo as usize] as usize;
                    let r = plan.children[node.child_lo as usize + 1] as usize;
                    if dirty[l] || dirty[r] {
                        let v = self.values[l].mul(&self.values[r]);
                        self.replace(idx, v);
                        dirty[idx] = true;
                    }
                }
            }
        }
    }

    /// The current root generating function.
    pub fn root(&self) -> &T {
        &self.values[self.plan.root as usize]
    }

    /// The current label of tuple `t`'s leaf.
    pub fn leaf(&self, t: TupleId) -> &T {
        &self.values[self.plan.leaf_node[t.index()] as usize]
    }

    /// The plan this evaluator runs over.
    pub fn plan(&self) -> &'p EvalPlan {
        self.plan
    }

    /// Memory accounting so far (peak tracked across every update).
    pub fn stats(&self) -> GfStats {
        GfStats {
            plan_nodes: self.plan.node_count(),
            resident_coefficients: self.resident_coeffs,
            peak_coefficients: self.peak_coeffs,
            peak_bytes: self.plan.node_count() * std::mem::size_of::<T>()
                + self.peak_coeffs * std::mem::size_of::<f64>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_numeric::{Complex, RankPoly, YLin};
    use prf_pdb::TreeBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The Figure 1 tree (see `prf-pdb` tests).
    fn figure1_tree() -> AndXorTree {
        let mut b = TreeBuilder::new(NodeKind::And);
        let root = b.root();
        let x1 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x1, 0.4, 120.0).unwrap();
        let x2 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x2, 0.7, 130.0).unwrap();
        b.add_leaf(x2, 0.3, 80.0).unwrap();
        let x3 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x3, 0.4, 95.0).unwrap();
        b.add_leaf(x3, 0.6, 110.0).unwrap();
        let x4 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x4, 1.0, 105.0).unwrap();
        b.build().unwrap()
    }

    fn random_tree(seed: u64, target_leaves: usize, max_depth: usize) -> AndXorTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let root_kind = if rng.gen_bool(0.5) {
            NodeKind::And
        } else {
            NodeKind::Xor
        };
        let mut b = TreeBuilder::new(root_kind);
        let mut frontier = vec![(b.root(), root_kind, 0usize, 1.0f64)];
        let mut leaves = 0usize;
        while leaves < target_leaves {
            let idx = rng.gen_range(0..frontier.len());
            let (node, kind, depth, budget) = frontier[idx];
            let is_xor = matches!(kind, NodeKind::Xor);
            let p = if is_xor {
                let p = rng.gen_range(0.0..budget.min(0.6));
                frontier[idx].3 -= p;
                p
            } else {
                1.0
            };
            let make_leaf = depth >= max_depth || rng.gen_bool(0.65);
            if make_leaf {
                let score = rng.gen_range(0.0..100.0);
                b.add_leaf(node, p, score).unwrap();
                leaves += 1;
            } else {
                let child_kind = if rng.gen_bool(0.5) {
                    NodeKind::And
                } else {
                    NodeKind::Xor
                };
                let child = b.add_inner(node, child_kind, p).unwrap();
                frontier.push((child, child_kind, depth + 1, 1.0));
            }
        }
        b.build().unwrap()
    }

    /// Full-refold oracle with per-tuple labels, matching the evaluator's
    /// current labelling.
    fn refold<T: GfValue>(tree: &AndXorTree, labels: &[T]) -> T {
        tree.generating_function(|t| labels[t.index()].clone())
    }

    #[test]
    fn initial_fold_matches_generating_function() {
        for seed in 0..10u64 {
            let tree = random_tree(seed, 9, 3);
            let plan = EvalPlan::new(&tree);
            let n = tree.n_tuples();
            let labels: Vec<f64> = (0..n).map(|i| 0.25 + 0.1 * i as f64).collect();
            let inc = plan.evaluator(|t| labels[t.index()]);
            let direct: f64 = refold(&tree, &labels);
            assert!(
                (inc.root() - direct).abs() < 1e-12,
                "seed {seed}: {} vs {direct}",
                inc.root()
            );
        }
    }

    #[test]
    fn set_leaf_matches_refold_under_random_relabelings() {
        for seed in 0..10u64 {
            let tree = random_tree(seed, 10, 3);
            let plan = EvalPlan::new(&tree);
            let n = tree.n_tuples();
            let mut labels: Vec<f64> = vec![1.0; n];
            let mut inc = plan.evaluator(|t| labels[t.index()]);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            for _ in 0..50 {
                let t = rng.gen_range(0..n);
                let v: f64 = rng.gen_range(0.0..2.0);
                labels[t] = v;
                inc.set_leaf(TupleId(t as u32), v);
                let direct: f64 = refold(&tree, &labels);
                assert!(
                    (inc.root() - direct).abs() < 1e-10,
                    "seed {seed}: {} vs {direct}",
                    inc.root()
                );
            }
        }
    }

    #[test]
    fn rankpoly_walk_matches_refold() {
        let tree = figure1_tree();
        let plan = EvalPlan::new(&tree);
        let n = tree.n_tuples();
        let cap = n;
        let order = crate::tree::score_order(&tree).0;
        let mut inc = plan.evaluator(|_| RankPoly::one().with_cap(cap));
        for (i, &t) in order.iter().enumerate() {
            if i > 0 {
                inc.set_leaf(order[i - 1], RankPoly::x().with_cap(cap));
            }
            inc.set_leaf(t, RankPoly::y().with_cap(cap));
            let direct = tree.generating_function(|u| {
                if u == t {
                    RankPoly::y().with_cap(cap)
                } else if order[..i].contains(&u) {
                    RankPoly::x().with_cap(cap)
                } else {
                    RankPoly::one().with_cap(cap)
                }
            });
            for j in 1..=n {
                assert!(
                    (inc.root().rank_probability(j) - direct.rank_probability(j)).abs() < 1e-12,
                    "tuple {t:?} rank {j}"
                );
            }
        }
    }

    #[test]
    fn zero_probability_edges_and_slack_are_exact() {
        // A ∨ node with a p = 0 edge and slack: the delta update multiplies
        // by 0 — division would have needed special-casing.
        let mut b = TreeBuilder::new(NodeKind::And);
        let root = b.root();
        let x = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x, 0.0, 9.0).unwrap();
        b.add_leaf(x, 0.3, 8.0).unwrap();
        b.add_leaf(root, 1.0, 7.0).unwrap();
        let tree = b.build().unwrap();
        let plan = EvalPlan::new(&tree);
        let mut inc = plan.evaluator(|_| YLin::<Complex>::one());
        inc.set_leaf(TupleId(0), YLin::y());
        let direct: YLin<Complex> = tree.generating_function(|u| {
            if u == TupleId(0) {
                YLin::y()
            } else {
                YLin::one()
            }
        });
        assert!(inc.root().a.approx_eq(direct.a, 1e-12));
        assert!(inc.root().b.approx_eq(direct.b, 1e-12));
    }

    #[test]
    fn stats_track_peak_coefficients() {
        let tree = figure1_tree();
        let plan = EvalPlan::new(&tree);
        let cap = tree.n_tuples();
        let mut inc = plan.evaluator(|_| RankPoly::one().with_cap(cap));
        let at_build = inc.stats();
        assert_eq!(at_build.plan_nodes, plan.node_count());
        assert!(at_build.peak_coefficients > 0);
        // Relabelling to x grows the cached polynomials.
        for t in 0..tree.n_tuples() {
            inc.set_leaf(TupleId(t as u32), RankPoly::x().with_cap(cap));
        }
        let after = inc.stats();
        assert!(after.peak_coefficients >= after.resident_coefficients);
        assert!(after.peak_coefficients > at_build.peak_coefficients);
        assert!(after.peak_bytes > 0);
        let merged = at_build.merge(after);
        assert_eq!(
            merged.peak_coefficients,
            at_build.peak_coefficients + after.peak_coefficients
        );
    }

    #[test]
    fn bulk_relabel_matches_fresh_fold_and_refold() {
        for seed in 0..10u64 {
            let tree = random_tree(seed, 12, 3);
            let plan = EvalPlan::new(&tree);
            let n = tree.n_tuples();
            let mut labels: Vec<f64> = vec![1.0; n];
            let mut inc = plan.evaluator(|t| labels[t.index()]);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
            for round in 0..8 {
                // Random subset relabelled in one sweep (sometimes empty).
                let changed: Vec<Option<f64>> = (0..n)
                    .map(|_| rng.gen_bool(0.4).then(|| rng.gen_range(0.0..2.0)))
                    .collect();
                for (t, c) in changed.iter().enumerate() {
                    if let Some(v) = c {
                        labels[t] = *v;
                    }
                }
                inc.set_leaves_bulk(|t| changed[t.index()]);
                let direct: f64 = refold(&tree, &labels);
                assert!(
                    (inc.root() - direct).abs() < 1e-10,
                    "seed {seed} round {round}: {} vs {direct}",
                    inc.root()
                );
                // Bit-identical to a from-scratch fold of the same
                // labelling: the sweep recomputes dirty nodes with the
                // exact accumulation order of `evaluator`, which is what
                // lets the parallel shards share a prefix without any
                // cross-shard numeric drift.
                let fresh = plan.evaluator(|t| labels[t.index()]);
                assert_eq!(inc.root(), fresh.root(), "seed {seed} round {round}");
            }
            // A cloned snapshot diverges independently of its source.
            let mut snap = inc.clone();
            snap.set_leaves_bulk(|t| (t.index() == 0).then_some(0.0));
            labels[0] = 0.0;
            let direct: f64 = refold(&tree, &labels);
            assert!((snap.root() - direct).abs() < 1e-10);
        }
    }

    /// root ∧ → (∨ chain of depth `d`) → leaf, plus one direct leaf.
    fn chain_tree(depth: usize) -> AndXorTree {
        let mut b = TreeBuilder::new(NodeKind::And);
        let root = b.root();
        let mut cur = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        for _ in 1..depth {
            cur = b.add_inner(cur, NodeKind::Xor, 0.9).unwrap();
        }
        b.add_leaf(cur, 0.8, 5.0).unwrap();
        b.add_leaf(root, 1.0, 3.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn unary_spines_compress_to_constant_size() {
        for depth in [1usize, 2, 8, 64] {
            let tree = chain_tree(depth);
            let plan = EvalPlan::new(&tree);
            // 2 leaves + 1 spine wrapper + 1 ∧ pair, regardless of depth.
            assert_eq!(plan.node_count(), 4, "depth {depth}");
            let flat = EvalPlan::new_uncompressed(&tree);
            assert_eq!(flat.node_count(), 3 + depth, "depth {depth}");
            // Both agree with the refold oracle under relabelings.
            let mut labels = vec![1.0f64, 1.0];
            let mut inc = plan.evaluator(|t| labels[t.index()]);
            let mut unc = flat.evaluator(|t| labels[t.index()]);
            for (t, v) in [(0usize, 0.25), (1, 0.5), (0, 2.0)] {
                labels[t] = v;
                inc.set_leaf(TupleId(t as u32), v);
                unc.set_leaf(TupleId(t as u32), v);
                let direct: f64 = refold(&tree, &labels);
                assert!((inc.root() - direct).abs() < 1e-12, "depth {depth}");
                assert!((unc.root() - direct).abs() < 1e-12, "depth {depth}");
            }
        }
    }

    #[test]
    fn reweight_leaf_patch_matches_recompile() {
        // Direct ∨ child (figure 1) and a spine-folded leaf (chain tree).
        let mut tree = figure1_tree();
        let mut plan = EvalPlan::new(&tree);
        let old = tree.reweight_leaf(TupleId(3), 0.15).unwrap();
        assert!(plan.reweight_leaf(TupleId(3), old, 0.15));
        let fresh = EvalPlan::new(&tree);
        let labels: Vec<f64> = (0..6).map(|i| 0.3 + 0.1 * i as f64).collect();
        let patched = plan.evaluator(|t| labels[t.index()]);
        let direct = fresh.evaluator(|t| labels[t.index()]);
        assert!((patched.root() - direct.root()).abs() < 1e-12);

        let mut chain = chain_tree(5);
        let mut cplan = EvalPlan::new(&chain);
        let old = chain.reweight_leaf(TupleId(0), 0.1).unwrap();
        assert!(cplan.reweight_leaf(TupleId(0), old, 0.1));
        let cfresh = EvalPlan::new(&chain);
        let patched = cplan.evaluator(|t| labels[t.index()]);
        let direct = cfresh.evaluator(|t| labels[t.index()]);
        assert!((patched.root() - direct.root()).abs() < 1e-12);

        // A leaf whose edge is ∧-pinned is not patchable.
        let mut b = TreeBuilder::new(NodeKind::And);
        let root = b.root();
        b.add_leaf(root, 1.0, 2.0).unwrap();
        b.add_leaf(root, 1.0, 1.0).unwrap();
        let pinned = b.build().unwrap();
        let mut pplan = EvalPlan::new(&pinned);
        assert!(!pplan.reweight_leaf(TupleId(0), 1.0, 1.0));
    }

    #[test]
    fn splice_insert_matches_recompile() {
        let mut tree = figure1_tree();
        let mut plan = EvalPlan::new(&tree);
        // Case 1: join an existing materialized ∨ group (t1's, slack .6).
        let x1 = tree.parent(tree.leaf_of(TupleId(0))).unwrap();
        let t6 = tree.insert_leaf(x1, 0.5, 99.0).unwrap();
        assert!(plan.splice_insert(&tree, t6));
        // Case 2: fresh singleton group under the ∧ root.
        let g = tree.insert_inner(tree.root(), NodeKind::Xor, 1.0).unwrap();
        let t7 = tree.insert_leaf(g, 0.25, 50.0).unwrap();
        assert!(plan.splice_insert(&tree, t7));
        assert_eq!(plan.splices(), 2);
        // Spliced plan ≡ recompiled plan under arbitrary relabelings,
        // including updates through the spliced leaves.
        let fresh = EvalPlan::new(&tree);
        let n = tree.n_tuples();
        let mut labels: Vec<f64> = (0..n).map(|i| 0.2 + 0.09 * i as f64).collect();
        let mut spliced = plan.evaluator(|t| labels[t.index()]);
        let mut direct = fresh.evaluator(|t| labels[t.index()]);
        assert!((spliced.root() - direct.root()).abs() < 1e-12);
        for (t, v) in [(t6, 0.0), (t7, 2.0), (TupleId(0), 0.7), (t6, 1.3)] {
            labels[t.index()] = v;
            spliced.set_leaf(t, v);
            direct.set_leaf(t, v);
            let oracle: f64 = refold(&tree, &labels);
            assert!((spliced.root() - oracle).abs() < 1e-12);
            assert!((direct.root() - oracle).abs() < 1e-12);
        }
        // Reweighting a spliced leaf patches in place too.
        let old = tree.reweight_leaf(t6, 0.2).unwrap();
        assert!(plan.reweight_leaf(t6, old, 0.2));
        let refreshed = EvalPlan::new(&tree);
        let a = plan.evaluator(|t| labels[t.index()]);
        let b = refreshed.evaluator(|t| labels[t.index()]);
        assert!((a.root() - b.root()).abs() < 1e-12);
        // Only the newest tuple can splice.
        assert!(!plan.splice_insert(&tree, TupleId(0)));
    }

    #[test]
    fn single_child_and_nodes_collapse() {
        // root ∧ → ∨(p=.5) → ∧ → ∧ → leaf : nested single-child ∧ chains.
        let mut b = TreeBuilder::new(NodeKind::And);
        let root = b.root();
        let x = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        let a1 = b.add_inner(x, NodeKind::And, 0.5).unwrap();
        let a2 = b.add_inner(a1, NodeKind::And, 1.0).unwrap();
        b.add_leaf(a2, 1.0, 5.0).unwrap();
        b.add_leaf(root, 1.0, 3.0).unwrap();
        let tree = b.build().unwrap();
        let plan = EvalPlan::new(&tree);
        // Collapsed: leaf + leaf + ∨ + ∧-pair = 4 plan nodes (no nodes for
        // the single-child ∧ chain).
        assert_eq!(plan.node_count(), 4);
        let mut inc = plan.evaluator(|_| 1.0f64);
        assert!((inc.root() - 1.0).abs() < 1e-12);
        inc.set_leaf(TupleId(0), 0.0);
        // F = (0.5·0 + 0.5)·1 = 0.5.
        assert!((inc.root() - 0.5).abs() < 1e-12);
    }
}
