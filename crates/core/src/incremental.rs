//! The incremental generating-function engine for and/xor trees.
//!
//! Algorithm 2 of the paper evaluates one tree generating function *per
//! tuple*: walking the tuples in score order, tuple `i`'s function differs
//! from tuple `i−1`'s in exactly **two leaf labels** (the previous tuple's
//! leaf flips `y → x`, the current one flips `1 → y`), yet the literal
//! implementation re-folds the entire tree each time — `O(n²·h)` on general
//! trees, the wall the Figure 10(ii)/11(iii) experiments hit. This module
//! materializes the fold state once and then recombines **only the two
//! leaf-to-root paths** per step, the same observation that makes fast
//! x-relation ranking possible (Chang, Yu & Qin), generalised to arbitrary
//! and/xor trees and to *any* [`GfValue`] ring — truncated rank polynomials
//! for PRFω(h)/PT(h), scalars ([`prf_numeric::Complex`], log/scaled,
//! [`prf_numeric::Dual`]) wrapped in [`prf_numeric::YLin`] for PRFe and
//! expected ranks.
//!
//! # Division-free sibling products
//!
//! The classic incremental trick (Algorithm 3) updates an ∧-node product by
//! *dividing out* the stale child factor — fine for field scalars with
//! zero-count bookkeeping, impossible for truncated polynomials (division
//! is numerically unstable and undefined past the truncation cap). Instead,
//! [`EvalPlan`] compiles the tree into a **binarised combine plan**: every
//! ∧ node with `k` children becomes a balanced tournament of 2-child
//! product nodes, each caching its value. Updating one child recombines the
//! `O(log k)` tournament nodes on its path using the *cached sibling
//! product* at each step — the k-ary generalisation of prefix/suffix
//! sibling caches, with no division anywhere, so zero-probability edges,
//! `p = 1` leaves and ∨-slack stay exact. ∨ nodes update in `O(1)` ring
//! operations via the linear delta `F ← F + p·(new − old)`.
//!
//! Per-tuple cost drops from `O(tree size · h)` to
//! `O(depth · log fanout · h)` ring work; on the x-relation-shaped trees of
//! the experiments that is `O(h²·log(n/h))` per tuple instead of `O(n·h)` —
//! see `benches/trees.rs` for the measured ≥10× wall-clock gap.
//!
//! # Memory accounting
//!
//! The evaluator owns one ring value per plan node; [`IncrementalGf::stats`]
//! reports the resident and peak coefficient footprint (tracked exactly, at
//! every value replacement) so callers — the `RankQuery` engine's
//! [`crate::query::EvalReport`] — can surface evaluator memory alongside
//! timings.

use prf_numeric::GfValue;
use prf_pdb::{AndXorTree, NodeKind, TupleId};

/// Sentinel parent index of the plan root.
const NO_PARENT: u32 = u32::MAX;

/// How one plan node combines its children.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Combine {
    /// A tuple's leaf; holds whatever label the caller assigns.
    Leaf(TupleId),
    /// `slack + Σ pᵢ·childᵢ` — an original ∨ node (also represents
    /// childless inner nodes as the constant `slack`).
    Xor,
    /// `left · right` — one tournament node of a binarised ∧ node.
    And,
}

/// One node of the compiled combine plan.
#[derive(Clone, Debug)]
struct PlanNode {
    /// Parent plan index ([`NO_PARENT`] for the root).
    parent: u32,
    /// Probability the ∨ parent applies to this subtree (1.0 under ∧).
    edge_prob: f64,
    /// Combination rule.
    combine: Combine,
    /// `1 − Σ p` for ∨ nodes; 1.0 elsewhere.
    slack: f64,
    /// Children as a range into [`EvalPlan::children`].
    child_lo: u32,
    /// Exclusive end of the child range.
    child_hi: u32,
}

/// A compiled, reusable evaluation plan for one [`AndXorTree`]: the
/// binarised combine structure shared by every [`IncrementalGf`] built over
/// the tree (parallel shards, PRFe mixture terms, repeated queries).
///
/// Plan indices are topological — every child precedes its parent — so a
/// single forward scan initialises an evaluator.
#[derive(Clone, Debug)]
pub struct EvalPlan {
    nodes: Vec<PlanNode>,
    children: Vec<u32>,
    /// Plan index of each tuple's leaf.
    leaf_node: Vec<u32>,
    /// Plan index of the root value.
    root: u32,
}

impl EvalPlan {
    /// Compiles the combine plan: ∨ nodes map 1:1, ∧ nodes with `k ≥ 2`
    /// children become balanced `k − 1`-node product tournaments,
    /// single-child ∧ nodes collapse onto their child, and childless inner
    /// nodes become constants.
    pub fn new(tree: &AndXorTree) -> EvalPlan {
        let nn = tree.node_count();
        let mut nodes: Vec<PlanNode> = Vec::with_capacity(2 * nn);
        let mut children: Vec<u32> = Vec::with_capacity(2 * nn);
        let mut plan_of: Vec<u32> = vec![0; nn];
        let mut leaf_node = vec![0u32; tree.n_tuples()];
        // Builder invariant: children have larger ids than parents, so a
        // reverse scan visits children first.
        for idx in (0..nn).rev() {
            let node = prf_pdb::NodeId(idx as u32);
            let plan_id = match tree.kind(node) {
                NodeKind::Leaf(t) => {
                    let id = nodes.len() as u32;
                    nodes.push(PlanNode {
                        parent: NO_PARENT,
                        edge_prob: 1.0,
                        combine: Combine::Leaf(t),
                        slack: 1.0,
                        child_lo: 0,
                        child_hi: 0,
                    });
                    leaf_node[t.index()] = id;
                    id
                }
                NodeKind::Xor => {
                    let lo = children.len() as u32;
                    for &c in tree.children(node) {
                        children.push(plan_of[c.index()]);
                    }
                    let hi = children.len() as u32;
                    let id = nodes.len() as u32;
                    nodes.push(PlanNode {
                        parent: NO_PARENT,
                        edge_prob: 1.0,
                        combine: Combine::Xor,
                        slack: tree.xor_slack(node),
                        child_lo: lo,
                        child_hi: hi,
                    });
                    for &c in tree.children(node) {
                        let cp = plan_of[c.index()] as usize;
                        nodes[cp].parent = id;
                        nodes[cp].edge_prob = tree.edge_prob(c);
                    }
                    id
                }
                NodeKind::And => match tree.children(node) {
                    [] => {
                        // Childless ∧ ≡ the constant 1 (empty product),
                        // encoded as a ∨ node with slack 1 and no children.
                        let id = nodes.len() as u32;
                        nodes.push(PlanNode {
                            parent: NO_PARENT,
                            edge_prob: 1.0,
                            combine: Combine::Xor,
                            slack: 1.0,
                            child_lo: 0,
                            child_hi: 0,
                        });
                        id
                    }
                    // Single-child ∧ ≡ the child itself (∧ edges carry no
                    // probability); the parent wires the collapsed node
                    // with the ∧'s own edge probability.
                    [only] => plan_of[only.index()],
                    kids => {
                        // Balanced tournament: pair adjacent survivors per
                        // round; an odd leftover is promoted unchanged.
                        let mut level: Vec<u32> = kids.iter().map(|c| plan_of[c.index()]).collect();
                        while level.len() > 1 {
                            let mut next = Vec::with_capacity(level.len().div_ceil(2));
                            for pair in level.chunks(2) {
                                if let [l, r] = *pair {
                                    let lo = children.len() as u32;
                                    children.push(l);
                                    children.push(r);
                                    let id = nodes.len() as u32;
                                    nodes.push(PlanNode {
                                        parent: NO_PARENT,
                                        edge_prob: 1.0,
                                        combine: Combine::And,
                                        slack: 1.0,
                                        child_lo: lo,
                                        child_hi: lo + 2,
                                    });
                                    nodes[l as usize].parent = id;
                                    nodes[r as usize].parent = id;
                                    next.push(id);
                                } else {
                                    next.push(pair[0]);
                                }
                            }
                            level = next;
                        }
                        level[0]
                    }
                },
            };
            plan_of[idx] = plan_id;
        }
        let root = plan_of[0];
        EvalPlan {
            nodes,
            children,
            leaf_node,
            root,
        }
    }

    /// Number of plan nodes (≤ 2× the tree's node count).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Builds an evaluator over this plan with every leaf labelled by
    /// `leaf_value` — the "fast-forward" constructor: parallel shards seed
    /// mid-walk states by labelling already-processed leaves directly.
    pub fn evaluator<T: GfValue>(
        &self,
        mut leaf_value: impl FnMut(TupleId) -> T,
    ) -> IncrementalGf<'_, T> {
        let mut values: Vec<T> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let v = match node.combine {
                Combine::Leaf(t) => leaf_value(t),
                Combine::Xor => {
                    let mut acc = T::from_scalar(node.slack);
                    for &c in &self.children[node.child_lo as usize..node.child_hi as usize] {
                        acc.add_scaled_assign(
                            &values[c as usize],
                            self.nodes[c as usize].edge_prob,
                        );
                    }
                    acc
                }
                Combine::And => {
                    let l = self.children[node.child_lo as usize] as usize;
                    let r = self.children[node.child_lo as usize + 1] as usize;
                    values[l].mul(&values[r])
                }
            };
            values.push(v);
        }
        let resident: usize = values.iter().map(GfValue::heap_coeffs).sum();
        IncrementalGf {
            plan: self,
            values,
            resident_coeffs: resident,
            peak_coeffs: resident,
        }
    }
}

/// Memory accounting of one evaluator run — surfaced through
/// [`crate::query::EvalReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GfStats {
    /// Cached ring values held by the evaluator (plan nodes).
    pub plan_nodes: usize,
    /// Heap-allocated scalar coefficients resident when the stats were
    /// taken.
    pub resident_coefficients: usize,
    /// Peak resident coefficient count over the evaluator's lifetime.
    pub peak_coefficients: usize,
    /// Estimated peak bytes: inline value storage plus peak coefficients at
    /// 8 bytes each.
    pub peak_bytes: usize,
}

impl GfStats {
    /// Combines the accounting of concurrently live evaluators (parallel
    /// shards): all fields sum, because the shards coexist in memory.
    pub fn merge(self, other: GfStats) -> GfStats {
        GfStats {
            plan_nodes: self.plan_nodes + other.plan_nodes,
            resident_coefficients: self.resident_coefficients + other.resident_coefficients,
            peak_coefficients: self.peak_coefficients + other.peak_coefficients,
            peak_bytes: self.peak_bytes + other.peak_bytes,
        }
    }
}

/// The incremental generating-function evaluator: cached fold state over an
/// [`EvalPlan`], generic over the [`GfValue`] ring.
///
/// [`IncrementalGf::set_leaf`] relabels one leaf and recombines its
/// leaf-to-root path; [`IncrementalGf::root`] reads the current generating
/// function. Ranking walks call `set_leaf` twice per tuple (previous leaf
/// `y → x`, current leaf `1 → y`) and read the root — see
/// [`crate::tree::prf_rank_tree`] and [`crate::tree::prfe_rank_tree`].
#[derive(Debug)]
pub struct IncrementalGf<'p, T: GfValue> {
    plan: &'p EvalPlan,
    values: Vec<T>,
    resident_coeffs: usize,
    peak_coeffs: usize,
}

impl<'p, T: GfValue> IncrementalGf<'p, T> {
    /// Replaces the value at `idx`, maintaining the coefficient accounting,
    /// and returns the previous value.
    fn replace(&mut self, idx: usize, v: T) -> T {
        self.resident_coeffs += v.heap_coeffs();
        let old = std::mem::replace(&mut self.values[idx], v);
        self.resident_coeffs -= old.heap_coeffs();
        self.peak_coeffs = self.peak_coeffs.max(self.resident_coeffs);
        old
    }

    /// Relabels the leaf of tuple `t` and recombines its leaf-to-root path:
    /// `O(1)` ring operations per ∨ ancestor (linear delta), one cached
    /// sibling product per ∧ tournament level — no division anywhere.
    pub fn set_leaf(&mut self, t: TupleId, value: T) {
        let plan = self.plan;
        let mut cur = plan.leaf_node[t.index()] as usize;
        let mut old = self.replace(cur, value);
        while plan.nodes[cur].parent != NO_PARENT {
            let p = plan.nodes[cur].parent as usize;
            let pnode = &plan.nodes[p];
            let new_parent = match pnode.combine {
                Combine::Xor => {
                    // F ← F + p·(new − old), fused in place on a clone so
                    // the pre-update value survives for the next level.
                    let mut pv = self.values[p].clone();
                    pv.add_scaled_diff_assign(&self.values[cur], &old, plan.nodes[cur].edge_prob);
                    pv
                }
                Combine::And => {
                    // Fresh sibling product — exact, no error accumulation.
                    let l = plan.children[pnode.child_lo as usize] as usize;
                    let r = plan.children[pnode.child_lo as usize + 1] as usize;
                    self.values[l].mul(&self.values[r])
                }
                Combine::Leaf(_) => unreachable!("leaves have no children"),
            };
            old = self.replace(p, new_parent);
            cur = p;
        }
    }

    /// The current root generating function.
    pub fn root(&self) -> &T {
        &self.values[self.plan.root as usize]
    }

    /// The current label of tuple `t`'s leaf.
    pub fn leaf(&self, t: TupleId) -> &T {
        &self.values[self.plan.leaf_node[t.index()] as usize]
    }

    /// The plan this evaluator runs over.
    pub fn plan(&self) -> &'p EvalPlan {
        self.plan
    }

    /// Memory accounting so far (peak tracked across every update).
    pub fn stats(&self) -> GfStats {
        GfStats {
            plan_nodes: self.plan.node_count(),
            resident_coefficients: self.resident_coeffs,
            peak_coefficients: self.peak_coeffs,
            peak_bytes: self.plan.node_count() * std::mem::size_of::<T>()
                + self.peak_coeffs * std::mem::size_of::<f64>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_numeric::{Complex, RankPoly, YLin};
    use prf_pdb::TreeBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The Figure 1 tree (see `prf-pdb` tests).
    fn figure1_tree() -> AndXorTree {
        let mut b = TreeBuilder::new(NodeKind::And);
        let root = b.root();
        let x1 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x1, 0.4, 120.0).unwrap();
        let x2 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x2, 0.7, 130.0).unwrap();
        b.add_leaf(x2, 0.3, 80.0).unwrap();
        let x3 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x3, 0.4, 95.0).unwrap();
        b.add_leaf(x3, 0.6, 110.0).unwrap();
        let x4 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x4, 1.0, 105.0).unwrap();
        b.build().unwrap()
    }

    fn random_tree(seed: u64, target_leaves: usize, max_depth: usize) -> AndXorTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let root_kind = if rng.gen_bool(0.5) {
            NodeKind::And
        } else {
            NodeKind::Xor
        };
        let mut b = TreeBuilder::new(root_kind);
        let mut frontier = vec![(b.root(), root_kind, 0usize, 1.0f64)];
        let mut leaves = 0usize;
        while leaves < target_leaves {
            let idx = rng.gen_range(0..frontier.len());
            let (node, kind, depth, budget) = frontier[idx];
            let is_xor = matches!(kind, NodeKind::Xor);
            let p = if is_xor {
                let p = rng.gen_range(0.0..budget.min(0.6));
                frontier[idx].3 -= p;
                p
            } else {
                1.0
            };
            let make_leaf = depth >= max_depth || rng.gen_bool(0.65);
            if make_leaf {
                let score = rng.gen_range(0.0..100.0);
                b.add_leaf(node, p, score).unwrap();
                leaves += 1;
            } else {
                let child_kind = if rng.gen_bool(0.5) {
                    NodeKind::And
                } else {
                    NodeKind::Xor
                };
                let child = b.add_inner(node, child_kind, p).unwrap();
                frontier.push((child, child_kind, depth + 1, 1.0));
            }
        }
        b.build().unwrap()
    }

    /// Full-refold oracle with per-tuple labels, matching the evaluator's
    /// current labelling.
    fn refold<T: GfValue>(tree: &AndXorTree, labels: &[T]) -> T {
        tree.generating_function(|t| labels[t.index()].clone())
    }

    #[test]
    fn initial_fold_matches_generating_function() {
        for seed in 0..10u64 {
            let tree = random_tree(seed, 9, 3);
            let plan = EvalPlan::new(&tree);
            let n = tree.n_tuples();
            let labels: Vec<f64> = (0..n).map(|i| 0.25 + 0.1 * i as f64).collect();
            let inc = plan.evaluator(|t| labels[t.index()]);
            let direct: f64 = refold(&tree, &labels);
            assert!(
                (inc.root() - direct).abs() < 1e-12,
                "seed {seed}: {} vs {direct}",
                inc.root()
            );
        }
    }

    #[test]
    fn set_leaf_matches_refold_under_random_relabelings() {
        for seed in 0..10u64 {
            let tree = random_tree(seed, 10, 3);
            let plan = EvalPlan::new(&tree);
            let n = tree.n_tuples();
            let mut labels: Vec<f64> = vec![1.0; n];
            let mut inc = plan.evaluator(|t| labels[t.index()]);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            for _ in 0..50 {
                let t = rng.gen_range(0..n);
                let v: f64 = rng.gen_range(0.0..2.0);
                labels[t] = v;
                inc.set_leaf(TupleId(t as u32), v);
                let direct: f64 = refold(&tree, &labels);
                assert!(
                    (inc.root() - direct).abs() < 1e-10,
                    "seed {seed}: {} vs {direct}",
                    inc.root()
                );
            }
        }
    }

    #[test]
    fn rankpoly_walk_matches_refold() {
        let tree = figure1_tree();
        let plan = EvalPlan::new(&tree);
        let n = tree.n_tuples();
        let cap = n;
        let order = crate::tree::score_order(&tree).0;
        let mut inc = plan.evaluator(|_| RankPoly::one().with_cap(cap));
        for (i, &t) in order.iter().enumerate() {
            if i > 0 {
                inc.set_leaf(order[i - 1], RankPoly::x().with_cap(cap));
            }
            inc.set_leaf(t, RankPoly::y().with_cap(cap));
            let direct = tree.generating_function(|u| {
                if u == t {
                    RankPoly::y().with_cap(cap)
                } else if order[..i].contains(&u) {
                    RankPoly::x().with_cap(cap)
                } else {
                    RankPoly::one().with_cap(cap)
                }
            });
            for j in 1..=n {
                assert!(
                    (inc.root().rank_probability(j) - direct.rank_probability(j)).abs() < 1e-12,
                    "tuple {t:?} rank {j}"
                );
            }
        }
    }

    #[test]
    fn zero_probability_edges_and_slack_are_exact() {
        // A ∨ node with a p = 0 edge and slack: the delta update multiplies
        // by 0 — division would have needed special-casing.
        let mut b = TreeBuilder::new(NodeKind::And);
        let root = b.root();
        let x = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x, 0.0, 9.0).unwrap();
        b.add_leaf(x, 0.3, 8.0).unwrap();
        b.add_leaf(root, 1.0, 7.0).unwrap();
        let tree = b.build().unwrap();
        let plan = EvalPlan::new(&tree);
        let mut inc = plan.evaluator(|_| YLin::<Complex>::one());
        inc.set_leaf(TupleId(0), YLin::y());
        let direct: YLin<Complex> = tree.generating_function(|u| {
            if u == TupleId(0) {
                YLin::y()
            } else {
                YLin::one()
            }
        });
        assert!(inc.root().a.approx_eq(direct.a, 1e-12));
        assert!(inc.root().b.approx_eq(direct.b, 1e-12));
    }

    #[test]
    fn stats_track_peak_coefficients() {
        let tree = figure1_tree();
        let plan = EvalPlan::new(&tree);
        let cap = tree.n_tuples();
        let mut inc = plan.evaluator(|_| RankPoly::one().with_cap(cap));
        let at_build = inc.stats();
        assert_eq!(at_build.plan_nodes, plan.node_count());
        assert!(at_build.peak_coefficients > 0);
        // Relabelling to x grows the cached polynomials.
        for t in 0..tree.n_tuples() {
            inc.set_leaf(TupleId(t as u32), RankPoly::x().with_cap(cap));
        }
        let after = inc.stats();
        assert!(after.peak_coefficients >= after.resident_coefficients);
        assert!(after.peak_coefficients > at_build.peak_coefficients);
        assert!(after.peak_bytes > 0);
        let merged = at_build.merge(after);
        assert_eq!(
            merged.peak_coefficients,
            at_build.peak_coefficients + after.peak_coefficients
        );
    }

    #[test]
    fn single_child_and_nodes_collapse() {
        // root ∧ → ∨(p=.5) → ∧ → ∧ → leaf : nested single-child ∧ chains.
        let mut b = TreeBuilder::new(NodeKind::And);
        let root = b.root();
        let x = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        let a1 = b.add_inner(x, NodeKind::And, 0.5).unwrap();
        let a2 = b.add_inner(a1, NodeKind::And, 1.0).unwrap();
        b.add_leaf(a2, 1.0, 5.0).unwrap();
        b.add_leaf(root, 1.0, 3.0).unwrap();
        let tree = b.build().unwrap();
        let plan = EvalPlan::new(&tree);
        // Collapsed: leaf + leaf + ∨ + ∧-pair = 4 plan nodes (no nodes for
        // the single-child ∧ chain).
        assert_eq!(plan.node_count(), 4);
        let mut inc = plan.evaluator(|_| 1.0f64);
        assert!((inc.root() - 1.0).abs() < 1e-12);
        inc.set_leaf(TupleId(0), 0.0);
        // F = (0.5·0 + 0.5)·1 = 0.5.
        assert!((inc.root() - 0.5).abs() < 1e-12);
    }
}
