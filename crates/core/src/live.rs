//! Live relations: in-place mutations with incremental re-ranking.
//!
//! Every backend in this crate is frozen at construction — the right choice
//! for one-shot analytics, but a serving layer watching a feed of updates
//! cannot afford to rebuild the relation, re-sort the tuples, and recompile
//! the evaluation plan for every changed probability. The machinery to avoid
//! that already exists: the incremental generating-function engine
//! ([`crate::incremental`]) recombines only two leaf-to-root paths per
//! relabel during a walk, and the same plan admits *data* changes — a ∨ edge
//! update is a linear delta (edge probability and parent slack), and a new
//! leaf splices into its consuming ∨ group by re-emitting one leaf-to-root
//! chain at the plan tail. This module packages those patches behind a
//! mutation API:
//!
//! * [`Mutation`] / [`MutationEffect`] — the update vocabulary: insert a
//!   tuple, delete a tuple, reweight a tuple's existence probability;
//! * [`MutableRelation`] — a [`ProbabilisticRelation`] that can apply
//!   mutations to itself and (best effort) patch a cached
//!   [`PreparedState`] instead of forcing a rebuild; implemented for
//!   [`IndependentDb`] and [`AndXorTree`];
//! * [`LiveRelation`] — a concurrency-safe wrapper owning the backend plus
//!   its prepared state: [`LiveRelation::apply`] mutates, patches the cache
//!   (score order, marginals, compiled plan, log-domain PRFe keys) and bumps
//!   a generation counter so any outer [`crate::query::PreparedRelation`] re-prepares
//!   instead of serving stale answers;
//! * [`LiveApply`] — the object-safe slice of the above that `prf-serve`
//!   uses to drive mutations through `dyn` relation handles.
//!
//! The correctness bar is *differential*: mutate-then-query must equal
//! rebuild-then-query to 1e-9 across backends, semantics, and numeric modes
//! (`tests/live_equivalence.rs` pins this; the in-module tests cover the
//! patch plumbing).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use prf_numeric::{Complex, Scaled};
use prf_pdb::{AndXorTree, IndependentDb, NodeKind, PdbError, TupleId};

use crate::incremental::GfStats;
use crate::query::batch::{SharedAnswer, SharedRequest, SharedWalkOut, SharedWalkSpec};
use crate::query::kernels;
use crate::query::{CorrelationClass, PreparedState, ProbabilisticRelation, QueryError};
use crate::weights::WeightFunction;

/// Splice budget: after this many tail splices the compiled plan's stale
/// orphaned chains outweigh the patch savings and the next insert triggers
/// a fresh compile (resetting the count) instead of another splice.
const SPLICE_BUDGET: u32 = 64;

// ---------------------------------------------------------------------
// The mutation vocabulary
// ---------------------------------------------------------------------

/// One in-place change to a live relation.
#[derive(Clone, Debug, PartialEq)]
pub enum Mutation {
    /// Add a new tuple with the next dense id. On an [`IndependentDb`] the
    /// tuple is independent; on an [`AndXorTree`] it joins the root's
    /// exclusive group when the root is ∨, and forms a fresh independent
    /// singleton ∨ group when the root is ∧.
    Insert {
        /// Score of the new tuple.
        score: f64,
        /// Existence probability of the new tuple.
        prob: f64,
    },
    /// Remove a tuple; larger ids shift down by one so ids stay dense.
    Delete(TupleId),
    /// Replace a tuple's existence probability (its ∨ edge probability on a
    /// tree backend), keeping scores and topology fixed.
    Reweight(TupleId, f64),
}

/// What a successfully applied [`Mutation`] did, with enough detail to
/// patch caches (the old probability for reweights, the assigned id for
/// inserts).
#[derive(Clone, Debug, PartialEq)]
pub enum MutationEffect {
    /// A tuple was inserted and got this id (`n_tuples() - 1` post-insert).
    Inserted(TupleId),
    /// This tuple was deleted; survivors with larger ids shifted down.
    Deleted(TupleId),
    /// A tuple's probability changed.
    Reweighted {
        /// The reweighted tuple.
        tuple: TupleId,
        /// Probability before the mutation.
        old_prob: f64,
        /// Probability after the mutation.
        new_prob: f64,
    },
}

// ---------------------------------------------------------------------
// MutableRelation: backends that can absorb mutations
// ---------------------------------------------------------------------

/// A [`ProbabilisticRelation`] that supports in-place mutations and can
/// (best effort) patch a cached [`PreparedState`] built from its pre-mutation
/// self.
pub trait MutableRelation: ProbabilisticRelation {
    /// Applies `m` to the relation. On error the relation is unchanged.
    fn apply_mutation(&mut self, m: &Mutation) -> Result<MutationEffect, PdbError>;

    /// Patches `state` (built by [`ProbabilisticRelation::prepare`] *before*
    /// the mutation) to describe the post-mutation relation, returning
    /// `false` when the state must instead be rebuilt from scratch. Called
    /// with `self` already mutated. The default never patches.
    fn patch_prepared(&self, state: &mut PreparedState, effect: &MutationEffect) -> bool {
        let _ = (state, effect);
        false
    }
}

/// Insertion index into a `(score desc, id asc)` order for a tuple whose id
/// is larger than every existing one: after every tuple with a `>=` score.
fn insert_position(order: &[TupleId], scores: impl Fn(TupleId) -> f64, new_score: f64) -> usize {
    order.partition_point(|&o| scores(o) >= new_score)
}

/// Removes old id `t` from a cached score order and renumbers larger ids
/// down by one — the cache-side mirror of the backends' dense-id delete.
fn patch_order_delete(order: &mut Vec<TupleId>, t: TupleId) {
    order.retain(|&o| o != t);
    for o in order.iter_mut() {
        if o.0 > t.0 {
            *o = TupleId(o.0 - 1);
        }
    }
}

impl MutableRelation for IndependentDb {
    fn apply_mutation(&mut self, m: &Mutation) -> Result<MutationEffect, PdbError> {
        match *m {
            Mutation::Insert { score, prob } => {
                Ok(MutationEffect::Inserted(self.push_tuple(score, prob)?))
            }
            Mutation::Delete(t) => {
                self.remove_tuple(t)?;
                Ok(MutationEffect::Deleted(t))
            }
            Mutation::Reweight(t, prob) => {
                let old = self.set_prob(t, prob)?;
                Ok(MutationEffect::Reweighted {
                    tuple: t,
                    old_prob: old,
                    new_prob: prob,
                })
            }
        }
    }

    fn patch_prepared(&self, state: &mut PreparedState, effect: &MutationEffect) -> bool {
        let Some(order) = state.independent_order_mut() else {
            return false;
        };
        match *effect {
            // Scores are untouched, so the cached order is still exact.
            MutationEffect::Reweighted { .. } => order.len() == self.len(),
            MutationEffect::Inserted(t) => {
                if order.len() + 1 != self.len() || t.index() != order.len() {
                    return false;
                }
                let score = self.tuple(t).score;
                let at = insert_position(order, |o| self.tuple(o).score, score);
                order.insert(at, t);
                true
            }
            MutationEffect::Deleted(t) => {
                if order.len() != self.len() + 1 {
                    return false;
                }
                patch_order_delete(order, t);
                order.len() == self.len()
            }
        }
    }
}

impl MutableRelation for AndXorTree {
    fn apply_mutation(&mut self, m: &Mutation) -> Result<MutationEffect, PdbError> {
        match *m {
            Mutation::Insert { score, prob } => {
                // Validate up front so a rejected insert cannot leave a
                // freshly spliced (empty) ∨ group behind.
                if !(0.0..=1.0).contains(&prob) {
                    return Err(PdbError::Structure(format!(
                        "insert probability {prob} outside [0, 1]"
                    )));
                }
                if score.is_nan() {
                    return Err(PdbError::Structure("insert score is NaN".to_string()));
                }
                let root = self.root();
                let group = match self.kind(root) {
                    NodeKind::Xor => root,
                    NodeKind::And => self.insert_inner(root, NodeKind::Xor, 1.0)?,
                    NodeKind::Leaf(_) => {
                        return Err(PdbError::Structure(
                            "cannot insert into a single-leaf tree".to_string(),
                        ))
                    }
                };
                Ok(MutationEffect::Inserted(
                    self.insert_leaf(group, prob, score)?,
                ))
            }
            Mutation::Delete(t) => {
                self.delete_leaf(t)?;
                Ok(MutationEffect::Deleted(t))
            }
            Mutation::Reweight(t, prob) => {
                let old = self.reweight_leaf(t, prob)?;
                Ok(MutationEffect::Reweighted {
                    tuple: t,
                    old_prob: old,
                    new_prob: prob,
                })
            }
        }
    }

    fn patch_prepared(&self, state: &mut PreparedState, effect: &MutationEffect) -> bool {
        let n = AndXorTree::n_tuples(self);
        let Some(tp) = state.tree_prepared_mut() else {
            return false;
        };
        match *effect {
            MutationEffect::Reweighted {
                tuple,
                old_prob,
                new_prob,
            } => {
                if tp.order.len() != n || !tp.plan.reweight_leaf(tuple, old_prob, new_prob) {
                    return false;
                }
                tp.marginals[tuple.index()] = self.marginal(tuple);
                true
            }
            MutationEffect::Inserted(t) => {
                if tp.order.len() + 1 != n
                    || t.index() != tp.order.len()
                    || tp.plan.splices() >= SPLICE_BUDGET
                    || !tp.plan.splice_insert(self, t)
                {
                    return false;
                }
                let score = self.score(t);
                let at = insert_position(&tp.order, |o| self.score(o), score);
                tp.order.insert(at, t);
                tp.pos = vec![0; tp.order.len()];
                for (i, o) in tp.order.iter().enumerate() {
                    tp.pos[o.index()] = i;
                }
                tp.marginals.push(self.marginal(t));
                true
            }
            // Plan nodes cannot be unspliced cheaply; rebuild.
            MutationEffect::Deleted(_) => false,
        }
    }
}

// ---------------------------------------------------------------------
// Log-domain PRFe key cache
// ---------------------------------------------------------------------

/// Cached log-domain PRFe ranking keys for one `α`, patched in O(n) float
/// adds on every mutation kind instead of recomputed.
///
/// For independent tuples in score order, `key(t_k) = ln α + ln p_k +
/// Σ_{i<k} ln f_i` with `f = 1 − p + p·α`. All three mutations are local
/// in this form:
///
/// * **reweight** of the tuple at sorted position `k` shifts its own key
///   by `ln p_new − ln p_old` and every *later* key by `ln f_new − ln
///   f_old`; keys at `−∞` (zero-probability tuples) stay `−∞` under the
///   unconditional add;
/// * **insert** at sorted position `k` recovers the prefix sum `Σ_{i<k}
///   ln f_i` from the predecessor's key, forms the new key from it, and
///   shifts every later key by `+ln f_new`;
/// * **delete** from sorted position `k` shifts every later key by
///   `−ln f_old` and drops the tuple's own entry.
///
/// Coverage is guarded (`α > 0`, the probabilities a recovery divides by
/// strictly positive, shapes consistent); outside it the cache drops and
/// the next query recomputes — never patches with garbage.
struct PrfeLogCache {
    alpha: f64,
    keys: Vec<f64>,
    /// The ranking the keys induce (best first, ties by tuple id — the
    /// order [`Ranking::from_keys`] would produce), built lazily on the
    /// first [`ProbabilisticRelation::prfe_log_ranked`] call and then
    /// *merged* back into shape on each reweight instead of re-sorted.
    ranked: Option<Vec<TupleId>>,
}

impl PrfeLogCache {
    /// Patches the cache for a reweight of `t` (probability `old_p → new_p`)
    /// against the descending score order, or returns `false` when the
    /// closed form does not cover the case (zero probabilities or `α = 0`,
    /// where keys jump between finite and `−∞`) and the cache must drop.
    fn patch_reweight(&mut self, order: &[TupleId], t: TupleId, old_p: f64, new_p: f64) -> bool {
        // NaN-rejecting: any non-finite or non-positive input drops the
        // cache rather than patching with garbage.
        let covered = self.alpha > 0.0 && old_p > 0.0 && new_p > 0.0;
        if !covered {
            return false;
        }
        let Some(k) = order.iter().position(|&o| o == t) else {
            return false;
        };
        self.keys[t.index()] += new_p.ln() - old_p.ln();
        let df = (1.0 - new_p + new_p * self.alpha).ln() - (1.0 - old_p + old_p * self.alpha).ln();
        if df != 0.0 {
            for &o in &order[k + 1..] {
                self.keys[o.index()] += df;
            }
        }
        self.remerge(order, k, t);
        true
    }

    /// Patches the cache for an insert of `t` (the relation's new largest
    /// id) into the post-insert descending score order `order`, with
    /// `probs` the post-insert probabilities by id. The closed form
    /// extends one prefix product: the prefix sum `Σ_{i<k} ln f_i` is
    /// recovered from the predecessor's key (`key_v − ln α − ln p_v +
    /// ln f_v`), the new key is `ln α + ln p_t` plus that prefix, and
    /// every later key shifts by the shared constant `+ln f_t`. Returns
    /// `false` (cache must drop) when the recovery is not covered:
    /// `α = 0`, a zero-probability or `−∞`-keyed predecessor, or a shape
    /// mismatch.
    fn patch_insert(&mut self, order: &[TupleId], t: TupleId, probs: &[f64]) -> bool {
        if self.alpha <= 0.0
            || t.index() != self.keys.len()
            || order.len() != self.keys.len() + 1
            || probs.len() != order.len()
        {
            return false;
        }
        let Some(k) = order.iter().position(|&o| o == t) else {
            return false;
        };
        let p_new = probs[t.index()];
        if !(0.0..=1.0).contains(&p_new) {
            return false;
        }
        let prefix = if k == 0 {
            0.0
        } else {
            let v = order[k - 1];
            let (p_v, key_v) = (probs[v.index()], self.keys[v.index()]);
            if p_v <= 0.0 || p_v.is_nan() || !key_v.is_finite() {
                return false;
            }
            key_v - self.alpha.ln() - p_v.ln() + (1.0 - p_v + p_v * self.alpha).ln()
        };
        let df = (1.0 - p_new + p_new * self.alpha).ln();
        if df != 0.0 {
            for &o in &order[k + 1..] {
                self.keys[o.index()] += df;
            }
        }
        self.keys.push(self.alpha.ln() + p_new.ln() + prefix);
        self.remerge(order, k, t);
        true
    }

    /// Patches the cache for a delete of old id `t` from sorted position
    /// `k_old` in the *pre-delete* order, with pre-delete probability
    /// `p_old`; `order` is the post-delete score order over renumbered
    /// ids. Every key after the vacated position shifts back by
    /// `−ln f_old`, the merged ranking drops `t` and renumbers, and the
    /// tuple's own key entry is removed. Covered only for `α > 0` (where
    /// `f_old > 0`) and a consistent shape.
    fn patch_delete(&mut self, order: &[TupleId], t: TupleId, k_old: usize, p_old: f64) -> bool {
        if self.alpha <= 0.0
            || !(0.0..=1.0).contains(&p_old)
            || order.len() + 1 != self.keys.len()
            || t.index() >= self.keys.len()
            || k_old > order.len()
        {
            return false;
        }
        let df = (1.0 - p_old + p_old * self.alpha).ln();
        if df != 0.0 {
            // `order` carries post-delete ids; keys are still indexed by
            // pre-delete ids, so map across the dense-id renumbering.
            for &o in &order[k_old..] {
                self.keys[o.index() + (o.index() >= t.index()) as usize] -= df;
            }
        }
        self.remerge_delete(order, k_old, t);
        self.keys.remove(t.index());
        true
    }

    /// Re-ranks after a mutation touching score position `k` in O(n), no
    /// sort: keys before `k` are untouched and keys after `k` all moved by
    /// the *same* constant, so the old ranked order restricted to either
    /// side is still sorted. The new order is the merge of the two sides
    /// plus one binary-search insert of `t` itself — which also covers
    /// inserts, where `t` is simply absent from the old ranking. (A
    /// uniform float shift can collapse a strict inequality into a tie,
    /// flipping an id-tiebreak relative to a fresh sort — the same sub-ulp
    /// ambiguity the patched keys already carry versus recomputed ones.)
    fn remerge(&mut self, order: &[TupleId], k: usize, t: TupleId) {
        let Some(old) = self.ranked.take() else {
            return;
        };
        let mut suffix = vec![false; old.len()];
        for &o in &order[k + 1..] {
            if o != t {
                suffix[o.index()] = true;
            }
        }
        let mut merged = merge_ranked(&old, &self.keys, &suffix, t);
        let pos = merged.partition_point(|&o| ranks_before(&self.keys, o, t));
        merged.insert(pos, t);
        self.ranked = Some(merged);
    }

    /// Delete-side counterpart of [`PrfeLogCache::remerge`]: merges the
    /// prefix and (uniformly shifted) suffix sides of the old ranking,
    /// leaves the deleted tuple out, and renumbers surviving ids down
    /// across the vacated one. Runs against pre-delete keys — call before
    /// removing `t`'s key entry.
    fn remerge_delete(&mut self, order: &[TupleId], k_old: usize, t: TupleId) {
        let Some(old) = self.ranked.take() else {
            return;
        };
        let mut suffix = vec![false; old.len()];
        for &o in &order[k_old..] {
            suffix[o.index() + (o.index() >= t.index()) as usize] = true;
        }
        let mut merged = merge_ranked(&old, &self.keys, &suffix, t);
        for o in merged.iter_mut() {
            if o.0 > t.0 {
                *o = TupleId(o.0 - 1);
            }
        }
        self.ranked = Some(merged);
    }
}

/// `true` when `a` ranks strictly before `b` under `keys` (higher key
/// first, ties by tuple id) — the comparator [`crate::topk::Ranking::from_keys`]
/// uses, so merged orders match fresh sorts exactly.
fn ranks_before(keys: &[f64], a: TupleId, b: TupleId) -> bool {
    let (ka, kb) = (keys[a.index()], keys[b.index()]);
    ka > kb || (ka == kb && a < b)
}

/// Merges an old best-first ranking whose `suffix`-marked tuples all moved
/// by one shared key constant: both restrictions of `old` are still
/// sorted, so a single linear merge (on the already-patched `keys`)
/// rebuilds the order. `skip` is left out entirely — the mutated tuple,
/// re-inserted or dropped by the caller.
fn merge_ranked(old: &[TupleId], keys: &[f64], suffix: &[bool], skip: TupleId) -> Vec<TupleId> {
    let mut merged = Vec::with_capacity(old.len());
    let mut hi = old
        .iter()
        .copied()
        .filter(|&o| o != skip && !suffix[o.index()])
        .peekable();
    let mut lo = old
        .iter()
        .copied()
        .filter(|&o| o != skip && suffix[o.index()])
        .peekable();
    loop {
        match (hi.peek(), lo.peek()) {
            (Some(&x), Some(&y)) => {
                if ranks_before(keys, x, y) {
                    merged.push(x);
                    hi.next();
                } else {
                    merged.push(y);
                    lo.next();
                }
            }
            (Some(_), None) => {
                merged.extend(hi);
                break;
            }
            (None, Some(_)) => {
                merged.extend(lo);
                break;
            }
            (None, None) => break,
        }
    }
    merged
}

// ---------------------------------------------------------------------
// LiveRelation
// ---------------------------------------------------------------------

struct LiveInner<B> {
    backend: B,
    prepared: PreparedState,
    log_cache: Option<PrfeLogCache>,
}

impl<B: MutableRelation> LiveInner<B> {
    fn walk(&self, spec: &SharedWalkSpec) -> Option<SharedWalkOut> {
        if let Some(out) = self.cached_walk(spec) {
            return Some(out);
        }
        self.backend.run_shared_walk_prepared(spec, &self.prepared)
    }

    /// Serves a walk entirely from the log-key cache when every request is
    /// `PrfeLog` at the cached `α` — the post-mutation fast path of a
    /// standing log-domain query.
    fn cached_walk(&self, spec: &SharedWalkSpec) -> Option<SharedWalkOut> {
        let cache = self.log_cache.as_ref()?;
        if spec.requests.is_empty()
            || !spec
                .requests
                .iter()
                .all(|r| matches!(r, SharedRequest::PrfeLog(a) if *a == cache.alpha))
        {
            return None;
        }
        let start = Instant::now();
        let answers = spec
            .requests
            .iter()
            .map(|_| SharedAnswer::Log(cache.keys.clone()))
            .collect();
        Some(SharedWalkOut {
            answers,
            stats: None,
            walk_seconds: start.elapsed().as_secs_f64(),
        })
    }

    fn one_request(&self, req: SharedRequest) -> Option<(SharedAnswer, Option<GfStats>)> {
        let spec = SharedWalkSpec {
            requests: vec![req],
            threads: None,
            cancel: None,
        };
        let mut out = self.walk(&spec)?;
        debug_assert_eq!(out.answers.len(), 1);
        Some((out.answers.pop()?, out.stats))
    }
}

/// A mutable, concurrency-safe [`ProbabilisticRelation`]: a backend plus its
/// prepared state (score order, marginals, compiled plan) kept current under
/// [`Mutation`]s by incremental patching, with a full rebuild as the
/// fallback. Every query entry point —
/// [`RankQuery::run`](crate::query::RankQuery::run),
/// [`QueryBatch`](crate::query::QueryBatch), `prf-serve` registration —
/// accepts a `&LiveRelation<_>` or `Arc<LiveRelation<_>>` like any other
/// relation.
///
/// ```
/// use prf_core::live::{LiveRelation, Mutation};
/// use prf_core::query::RankQuery;
/// use prf_pdb::{IndependentDb, TupleId};
///
/// let db = IndependentDb::from_pairs([(10.0, 0.9), (5.0, 0.6)]).unwrap();
/// let live = LiveRelation::new(db);
/// let before = RankQuery::prfe(0.8).run(&live).unwrap();
/// assert_eq!(before.ranking.order()[0], TupleId(0));
///
/// // Tank tuple 0's probability; the ranking flips without a rebuild.
/// live.apply(&Mutation::Reweight(TupleId(0), 0.05)).unwrap();
/// let after = RankQuery::prfe(0.8).run(&live).unwrap();
/// assert_eq!(after.ranking.order()[0], TupleId(1));
/// ```
///
/// # Staleness and generations
///
/// Each applied mutation bumps [`ProbabilisticRelation::generation`], so an
/// outer [`crate::query::PreparedRelation`] (e.g. one created by `prf-serve`'s
/// registration) detects the change and re-prepares. `LiveRelation` itself
/// threads its *own* prepared state into every walk, so wrapping it is never
/// required for freshness — the generation counter exists for callers that
/// cache around it.
pub struct LiveRelation<B> {
    inner: RwLock<LiveInner<B>>,
    generation: AtomicU64,
    /// Chaos/test hook fired inside [`LiveRelation::apply`] between the
    /// prepared-plan patch and the log-key cache patch; see
    /// [`LiveRelation::arm_mutation_probe`].
    #[cfg(any(test, feature = "chaos"))]
    mutation_probe: std::sync::Mutex<Option<std::sync::Arc<dyn Fn() + Send + Sync>>>,
}

impl<B: MutableRelation> LiveRelation<B> {
    /// Wraps `backend`, building its prepared state once.
    pub fn new(backend: B) -> Self {
        let prepared = backend.prepare();
        LiveRelation {
            inner: RwLock::new(LiveInner {
                backend,
                prepared,
                log_cache: None,
            }),
            generation: AtomicU64::new(0),
            #[cfg(any(test, feature = "chaos"))]
            mutation_probe: std::sync::Mutex::new(None),
        }
    }

    /// Arms a probe invoked inside every subsequent [`LiveRelation::apply`],
    /// between the prepared-plan patch and the log-key cache patch. A
    /// panicking probe models a crash mid-apply: the backend has mutated
    /// and the plan is patched, but the key cache and the generation
    /// counter still describe the pre-mutation relation — exactly the
    /// half-applied state [`LiveRelation::repair`] (driven by the serving
    /// layer's panic recovery) must fix before anything is served.
    /// Compiled only under `cfg(any(test, feature = "chaos"))`.
    #[cfg(any(test, feature = "chaos"))]
    pub fn arm_mutation_probe(&self, probe: impl Fn() + Send + Sync + 'static) {
        *self
            .mutation_probe
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(std::sync::Arc::new(probe));
    }

    #[cfg(any(test, feature = "chaos"))]
    fn fire_mutation_probe(&self) {
        let probe = self
            .mutation_probe
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        if let Some(p) = probe {
            p();
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, LiveInner<B>> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, LiveInner<B>> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Applies one mutation: mutates the backend, patches (or rebuilds) the
    /// prepared state and the log-key cache, and bumps the generation.
    /// On error nothing changes.
    pub fn apply(&self, m: &Mutation) -> Result<MutationEffect, PdbError> {
        let mut inner = self.write();
        // A delete's key patch needs the tuple's sorted position and
        // probability from the *pre-mutation* relation — both are gone
        // once the backend applies the delete — so capture them up front
        // (only when there is a cache to patch).
        let del_ctx = match (m, &inner.log_cache) {
            (Mutation::Delete(t), Some(_)) => inner
                .prepared
                .independent_order()
                .and_then(|o| o.iter().position(|&x| x == *t))
                .zip(inner.backend.tuple_marginals().get(t.index()).copied()),
            _ => None,
        };
        let effect = inner.backend.apply_mutation(m)?;
        let LiveInner {
            backend,
            prepared,
            log_cache,
        } = &mut *inner;
        if !backend.patch_prepared(prepared, &effect) {
            *prepared = backend.prepare();
        }
        // Chaos hook: a panic here models a crash between the plan patch
        // and the key-cache patch — the half-applied state `repair` fixes.
        #[cfg(any(test, feature = "chaos"))]
        self.fire_mutation_probe();
        // The log-key closed form covers all three mutations over an
        // independent score order (away from the α = 0 / zero-probability
        // edge cases each patch guards); anything else invalidates the
        // cache rather than patching with garbage.
        let patched = match (&effect, &mut *log_cache) {
            (
                MutationEffect::Reweighted {
                    tuple,
                    old_prob,
                    new_prob,
                },
                Some(cache),
            ) => match prepared.independent_order() {
                Some(order) if cache.keys.len() == order.len() => {
                    cache.patch_reweight(order, *tuple, *old_prob, *new_prob)
                }
                _ => false,
            },
            (MutationEffect::Inserted(t), Some(cache)) => match prepared.independent_order() {
                Some(order) => cache.patch_insert(order, *t, &backend.tuple_marginals()),
                _ => false,
            },
            (MutationEffect::Deleted(t), Some(cache)) => {
                match (prepared.independent_order(), del_ctx) {
                    (Some(order), Some((k_old, p_old))) => {
                        cache.patch_delete(order, *t, k_old, p_old)
                    }
                    _ => false,
                }
            }
            (_, None) => true,
        };
        if !patched {
            *log_cache = None;
        }
        self.generation.fetch_add(1, Ordering::Release);
        Ok(effect)
    }

    /// Discards every piece of derived state — prepared walk artifacts and
    /// the log-key cache — and rebuilds the prepared state from the backend.
    ///
    /// This is the serving layer's recovery hook after a panic escaped from
    /// a flush that was applying mutations: [`MutableRelation::apply_mutation`]
    /// guarantees the *backend* is unchanged on error, but a panic between
    /// the backend mutation and the cache patches could leave `prepared` /
    /// `log_cache` describing a relation that no longer exists. Repairing
    /// re-derives both from the (always-consistent) backend, so a recovered
    /// relation can never serve a half-patched ranking — pinned by the
    /// chaos differential suite (`tests/serve_chaos.rs`).
    pub fn repair(&self) {
        let mut inner = self.write();
        let LiveInner {
            backend,
            prepared,
            log_cache,
        } = &mut *inner;
        *prepared = backend.prepare();
        *log_cache = None;
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// A clone of the current backend — the "rebuild from scratch" side of
    /// the differential tests, and a consistent snapshot for offline use.
    pub fn snapshot_backend(&self) -> B
    where
        B: Clone,
    {
        self.read().backend.clone()
    }

    /// The number of mutations applied so far (the generation counter).
    pub fn mutations_applied(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

impl<B: MutableRelation> std::fmt::Debug for LiveRelation<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.read();
        f.debug_struct("LiveRelation")
            .field("n_tuples", &inner.backend.n_tuples())
            .field("class", &inner.backend.correlation_class())
            .field("generation", &self.generation.load(Ordering::Acquire))
            .field("log_cache", &inner.log_cache.is_some())
            .finish()
    }
}

impl<B: MutableRelation> ProbabilisticRelation for LiveRelation<B> {
    fn n_tuples(&self) -> usize {
        self.read().backend.n_tuples()
    }

    fn tuple_scores(&self) -> Vec<f64> {
        self.read().backend.tuple_scores()
    }

    fn tuple_marginals(&self) -> Vec<f64> {
        self.read().backend.tuple_marginals()
    }

    fn correlation_class(&self) -> CorrelationClass {
        self.read().backend.correlation_class()
    }

    fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    fn prf_values(
        &self,
        omega: &(dyn WeightFunction + Sync),
        threads: Option<usize>,
    ) -> Vec<Complex> {
        self.prf_values_with_stats(omega, threads).0
    }

    fn prf_values_with_stats(
        &self,
        omega: &(dyn WeightFunction + Sync),
        threads: Option<usize>,
    ) -> (Vec<Complex>, Option<GfStats>) {
        let inner = self.read();
        inner
            .backend
            .prf_values_prepared(omega, threads, &inner.prepared)
    }

    fn prfe_values(&self, alpha: Complex) -> Vec<Complex> {
        self.prfe_values_with_stats(alpha).0
    }

    fn prfe_values_with_stats(&self, alpha: Complex) -> (Vec<Complex>, Option<GfStats>) {
        let inner = self.read();
        match inner.one_request(SharedRequest::PrfeComplex(alpha)) {
            Some((SharedAnswer::Complex(v), stats)) => (v, stats),
            _ => inner.backend.prfe_values_with_stats(alpha),
        }
    }

    fn prfe_values_scaled(&self, alpha: Complex) -> Vec<Scaled<Complex>> {
        self.prfe_values_scaled_with_stats(alpha).0
    }

    fn prfe_values_scaled_with_stats(
        &self,
        alpha: Complex,
    ) -> (Vec<Scaled<Complex>>, Option<GfStats>) {
        let inner = self.read();
        match inner.one_request(SharedRequest::PrfeScaled(alpha)) {
            Some((SharedAnswer::Scaled(v), stats)) => (v, stats),
            _ => inner.backend.prfe_values_scaled_with_stats(alpha),
        }
    }

    fn prfe_log_keys(&self, alpha: f64) -> Vec<f64> {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "log-domain PRFe requires α ∈ [0, 1], got {alpha}"
        );
        {
            let inner = self.read();
            if let Some(c) = &inner.log_cache {
                if c.alpha == alpha {
                    return c.keys.clone();
                }
            }
        }
        // Miss: compute and memoize under the write lock, so a mutation
        // cannot slip between the compute and the store.
        let mut inner = self.write();
        if !matches!(&inner.log_cache, Some(c) if c.alpha == alpha) {
            let keys = match inner.one_request(SharedRequest::PrfeLog(alpha)) {
                Some((SharedAnswer::Log(v), _)) => v,
                _ => inner.backend.prfe_log_keys(alpha),
            };
            inner.log_cache = Some(PrfeLogCache {
                alpha,
                keys,
                ranked: None,
            });
        }
        inner
            .log_cache
            .as_ref()
            .expect("just populated")
            .keys
            .clone()
    }

    /// Keys plus their ranking, without a per-query sort: the order lives
    /// in the log-key cache, merged (not re-sorted) across reweights. This
    /// is the hook that makes requery-after-mutation O(n) end to end.
    fn prfe_log_ranked(&self, alpha: f64) -> Option<(Vec<f64>, Vec<TupleId>)> {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "log-domain PRFe requires α ∈ [0, 1], got {alpha}"
        );
        {
            let inner = self.read();
            if let Some(c) = &inner.log_cache {
                if c.alpha == alpha {
                    if let Some(r) = &c.ranked {
                        return Some((c.keys.clone(), r.clone()));
                    }
                }
            }
        }
        // Miss (no cache, other α, or order not yet built): fill both
        // under the write lock so a mutation cannot interleave.
        let mut inner = self.write();
        if !matches!(&inner.log_cache, Some(c) if c.alpha == alpha) {
            let keys = match inner.one_request(SharedRequest::PrfeLog(alpha)) {
                Some((SharedAnswer::Log(v), _)) => v,
                _ => inner.backend.prfe_log_keys(alpha),
            };
            inner.log_cache = Some(PrfeLogCache {
                alpha,
                keys,
                ranked: None,
            });
        }
        let cache = inner.log_cache.as_mut().expect("just populated");
        if cache.ranked.is_none() {
            cache.ranked = Some(
                crate::topk::Ranking::from_keys(&cache.keys)
                    .order()
                    .to_vec(),
            );
        }
        Some((
            cache.keys.clone(),
            cache.ranked.clone().expect("just populated"),
        ))
    }

    fn expected_ranks(&self) -> Option<Vec<f64>> {
        let inner = self.read();
        match inner.one_request(SharedRequest::ExpectedRanks) {
            Some((SharedAnswer::Ranks(v), _)) => Some(v),
            _ => inner.backend.expected_ranks(),
        }
    }

    fn most_probable_topk(&self, k: usize) -> Result<(Vec<TupleId>, f64), QueryError> {
        self.read().backend.most_probable_topk(k)
    }

    fn positional_candidates(&self, k: usize) -> kernels::PositionalCandidates {
        self.read().backend.positional_candidates(k)
    }

    fn run_shared_walk(&self, spec: &SharedWalkSpec) -> Option<SharedWalkOut> {
        self.read().walk(spec)
    }

    fn run_shared_walk_prepared(
        &self,
        spec: &SharedWalkSpec,
        _prep: &PreparedState,
    ) -> Option<SharedWalkOut> {
        // Own state always wins: foreign state describes some past version.
        self.read().walk(spec)
    }

    fn prepare(&self) -> PreparedState {
        // Self-preparing: every walk above threads the internal state, so
        // an outer PreparedRelation has nothing further to cache.
        PreparedState::empty()
    }

    fn presence_gf_coeffs(&self, cap: usize) -> Option<Vec<f64>> {
        // Forwarded so a live relation can serve as a shard of a
        // [`crate::shard::ShardedRelation`]. Mutations must then preserve
        // the shard's score band; the sharded walk itself is not atomic
        // with respect to concurrent mutations across shards.
        self.read().backend.presence_gf_coeffs(cap)
    }

    fn presence_gf_point(&self, alpha: Complex) -> Option<Scaled<Complex>> {
        self.read().backend.presence_gf_point(alpha)
    }

    fn prf_values_prepared(
        &self,
        omega: &(dyn WeightFunction + Sync),
        threads: Option<usize>,
        _prep: &PreparedState,
    ) -> (Vec<Complex>, Option<GfStats>) {
        self.prf_values_with_stats(omega, threads)
    }
}

// ---------------------------------------------------------------------
// LiveApply: the object-safe mutation surface for servers
// ---------------------------------------------------------------------

/// The `dyn`-friendly mutation interface `prf-serve` drives: a relation
/// that is both queryable and mutable through shared references.
pub trait LiveApply: ProbabilisticRelation + Send + Sync {
    /// Applies one mutation (see [`LiveRelation::apply`]), mapping backend
    /// validation failures into [`QueryError::InvalidParameter`].
    fn apply_dyn(&self, m: &Mutation) -> Result<MutationEffect, QueryError>;

    /// Rebuilds all derived state from the backend (see
    /// [`LiveRelation::repair`]) — the serving layer's recovery hook after
    /// a panic escaped from a mutation-applying flush.
    fn repair_dyn(&self);
}

impl<B: MutableRelation + Send + Sync> LiveApply for LiveRelation<B> {
    fn apply_dyn(&self, m: &Mutation) -> Result<MutationEffect, QueryError> {
        self.apply(m)
            .map_err(|e| QueryError::InvalidParameter(e.to_string()))
    }

    fn repair_dyn(&self) {
        self.repair();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Algorithm, PreparedRelation, QueryBatch, RankQuery, Semantics};

    fn db5() -> IndependentDb {
        IndependentDb::from_pairs([
            (50.0, 0.9),
            (40.0, 0.2),
            (30.0, 0.7),
            (20.0, 0.45),
            (10.0, 0.85),
        ])
        .unwrap()
    }

    fn tree3() -> AndXorTree {
        AndXorTree::from_x_tuples(&[
            vec![(50.0, 0.4), (30.0, 0.3)],
            vec![(40.0, 0.8)],
            vec![(20.0, 0.5), (10.0, 0.25)],
        ])
        .unwrap()
    }

    fn assert_live_matches_rebuild<B: MutableRelation + Clone>(live: &LiveRelation<B>, ctx: &str) {
        let rebuilt = LiveRelation::new(live.snapshot_backend());
        for (a, b) in live
            .prfe_values(Complex::real(0.8))
            .iter()
            .zip(rebuilt.prfe_values(Complex::real(0.8)))
        {
            assert!(a.approx_eq(b, 1e-9), "{ctx}: prfe {a} vs {b}");
        }
        let (wa, wb) = (
            live.prf_values(&crate::weights::StepWeight { h: 3 }, None),
            rebuilt.prf_values(&crate::weights::StepWeight { h: 3 }, None),
        );
        for (a, b) in wa.iter().zip(wb) {
            assert!(a.approx_eq(b, 1e-9), "{ctx}: prf {a} vs {b}");
        }
        for (a, b) in live
            .prfe_log_keys(0.8)
            .iter()
            .zip(rebuilt.prfe_log_keys(0.8))
        {
            assert!(
                (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
                "{ctx}: log {a} vs {b}"
            );
        }
    }

    #[test]
    fn independent_mutations_match_rebuild() {
        let live = LiveRelation::new(db5());
        live.apply(&Mutation::Reweight(TupleId(1), 0.95)).unwrap();
        assert_live_matches_rebuild(&live, "reweight");
        live.apply(&Mutation::Insert {
            score: 35.0,
            prob: 0.6,
        })
        .unwrap();
        assert_live_matches_rebuild(&live, "insert");
        live.apply(&Mutation::Delete(TupleId(2))).unwrap();
        assert_live_matches_rebuild(&live, "delete");
        assert_eq!(live.mutations_applied(), 3);
    }

    #[test]
    fn tree_mutations_match_rebuild() {
        let live = LiveRelation::new(tree3());
        live.apply(&Mutation::Reweight(TupleId(2), 0.15)).unwrap();
        assert_live_matches_rebuild(&live, "reweight");
        live.apply(&Mutation::Insert {
            score: 45.0,
            prob: 0.35,
        })
        .unwrap();
        assert_live_matches_rebuild(&live, "insert");
        live.apply(&Mutation::Delete(TupleId(0))).unwrap();
        assert_live_matches_rebuild(&live, "delete");
    }

    #[test]
    fn failed_mutations_change_nothing() {
        let live = LiveRelation::new(db5());
        let before = live.prfe_values(Complex::real(0.9));
        assert!(live.apply(&Mutation::Reweight(TupleId(0), 1.5)).is_err());
        assert!(live.apply(&Mutation::Delete(TupleId(99))).is_err());
        assert!(live
            .apply(&Mutation::Insert {
                score: f64::NAN,
                prob: 0.5
            })
            .is_err());
        assert_eq!(live.mutations_applied(), 0);
        assert_eq!(live.prfe_values(Complex::real(0.9)), before);
    }

    #[test]
    fn log_cache_patched_across_reweights() {
        let live = LiveRelation::new(db5());
        let _ = live.prfe_log_keys(0.7); // populate
        for (t, p) in [(0u32, 0.11), (4, 0.99), (2, 0.33)] {
            live.apply(&Mutation::Reweight(TupleId(t), p)).unwrap();
            assert!(live.read().log_cache.is_some(), "cache survives reweight");
            let fresh = LiveRelation::new(live.snapshot_backend()).prfe_log_keys(0.7);
            for (a, b) in live.prfe_log_keys(0.7).iter().zip(fresh) {
                assert!((a - b).abs() < 1e-9, "patched {a} vs fresh {b}");
            }
        }
        // Inserts and deletes are covered by the closed-form patch too.
        live.apply(&Mutation::Insert {
            score: 35.0,
            prob: 0.5,
        })
        .unwrap();
        assert!(live.read().log_cache.is_some(), "cache survives insert");
        let fresh = LiveRelation::new(live.snapshot_backend()).prfe_log_keys(0.7);
        for (a, b) in live.prfe_log_keys(0.7).iter().zip(fresh) {
            assert!((a - b).abs() < 1e-9, "insert-patched {a} vs fresh {b}");
        }
        live.apply(&Mutation::Delete(TupleId(1))).unwrap();
        assert!(live.read().log_cache.is_some(), "cache survives delete");
        let fresh = LiveRelation::new(live.snapshot_backend()).prfe_log_keys(0.7);
        for (a, b) in live.prfe_log_keys(0.7).iter().zip(fresh) {
            assert!((a - b).abs() < 1e-9, "delete-patched {a} vs fresh {b}");
        }
    }

    #[test]
    fn log_cache_drops_on_zero_probability_reweight() {
        let live = LiveRelation::new(db5());
        let _ = live.prfe_log_keys(0.7);
        live.apply(&Mutation::Reweight(TupleId(3), 0.0)).unwrap();
        assert!(live.read().log_cache.is_none(), "p→0 cannot be patched");
        let fresh = LiveRelation::new(live.snapshot_backend()).prfe_log_keys(0.7);
        for (a, b) in live.prfe_log_keys(0.7).iter().zip(fresh) {
            assert!(
                (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn queries_route_through_engine_unchanged() {
        let live = LiveRelation::new(db5());
        live.apply(&Mutation::Reweight(TupleId(0), 0.05)).unwrap();
        let direct = RankQuery::pt(3).run(&live.snapshot_backend()).unwrap();
        let via_live = RankQuery::pt(3).run(&live).unwrap();
        assert_eq!(direct.ranking.order(), via_live.ranking.order());
        let batch = QueryBatch::new()
            .add(Semantics::Pt(2))
            .add(Semantics::ERank)
            .run(&live)
            .unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn wrapped_prepared_relation_tracks_generation() {
        use std::sync::Arc;
        let live = Arc::new(LiveRelation::new(db5()));
        let prepared = PreparedRelation::new(live.clone());
        let before = prepared.prfe_values(Complex::real(0.8));
        live.apply(&Mutation::Reweight(TupleId(0), 0.01)).unwrap();
        assert_eq!(ProbabilisticRelation::generation(&prepared), 1);
        let after = prepared.prfe_values(Complex::real(0.8));
        assert_ne!(before, after, "wrapper must not serve stale answers");
        let fresh = live.snapshot_backend().prfe_values(Complex::real(0.8));
        assert_eq!(after, fresh);
    }

    #[test]
    fn explicit_algorithms_stay_consistent_after_mutation() {
        let live = LiveRelation::new(db5());
        live.apply(&Mutation::Reweight(TupleId(2), 0.02)).unwrap();
        live.apply(&Mutation::Insert {
            score: 25.0,
            prob: 0.4,
        })
        .unwrap();
        let orders: Vec<_> = [Algorithm::ExactGf, Algorithm::LogDomain, Algorithm::Scaled]
            .into_iter()
            .map(|alg| {
                RankQuery::prfe(0.8)
                    .algorithm(alg)
                    .run(&live)
                    .unwrap()
                    .ranking
                    .order()
                    .to_vec()
            })
            .collect();
        assert_eq!(orders[0], orders[1]);
        assert_eq!(orders[0], orders[2]);
    }

    #[test]
    fn splice_budget_triggers_recompile() {
        let live = LiveRelation::new(tree3());
        for i in 0..(SPLICE_BUDGET + 8) {
            live.apply(&Mutation::Insert {
                score: 60.0 + i as f64,
                prob: 0.002,
            })
            .unwrap();
        }
        // After the budget the plan recompiled at least once, and answers
        // still match a rebuild.
        let inner = live.read();
        let tp_splices = inner
            .prepared
            .tree_prepared()
            .map(|tp| tp.plan.splices())
            .unwrap_or(0);
        assert!(tp_splices < SPLICE_BUDGET + 8, "budget must bound splices");
        drop(inner);
        assert_live_matches_rebuild(&live, "post-budget");
    }

    /// The merged-in-place ranking must equal a fresh sort of the same
    /// keys after every reweight — across shifts up, down, to the top,
    /// and near-ties — and keys must track a rebuilt backend to 1e-9.
    #[test]
    fn ranked_cache_merge_matches_fresh_sort() {
        let n = 64;
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                (
                    1000.0 - i as f64,
                    0.05 + 0.9 * ((i * 7919) % 997) as f64 / 997.0,
                )
            })
            .collect();
        let live = LiveRelation::new(IndependentDb::from_pairs(pairs).unwrap());
        let alpha = 0.8;
        let (_, order0) = live.prfe_log_ranked(alpha).expect("live serves ranked");
        assert_eq!(
            order0,
            crate::topk::Ranking::from_keys(&live.prfe_log_keys(alpha)).order(),
            "initial ranked cache must be the sorted order"
        );
        for step in 0..200usize {
            let t = TupleId(((step * 31) % n) as u32);
            let p = 0.02 + 0.95 * ((step * 131) % 89) as f64 / 89.0;
            live.apply(&Mutation::Reweight(t, p)).unwrap();
            let (keys, order) = live
                .prfe_log_ranked(alpha)
                .expect("cache survives reweight");
            let fresh = crate::topk::Ranking::from_keys(&keys);
            assert_eq!(
                order,
                fresh.order(),
                "step {step}: merged order must equal a fresh sort of the patched keys"
            );
            let rebuilt = live.snapshot_backend().prfe_log_keys(alpha);
            for (a, b) in keys.iter().zip(rebuilt) {
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "step {step}: patched key {a} drifted from rebuilt {b}"
                );
            }
        }
    }

    /// The key cache (keys *and* merged ranking) must survive a mixed
    /// insert/delete/reweight churn: after every step the merged order
    /// equals a fresh sort of the patched keys, and the keys track a
    /// rebuilt backend to 1e-9 relative.
    #[test]
    fn ranked_cache_survives_insert_delete_churn() {
        let pairs: Vec<(f64, f64)> = (0..48)
            .map(|i| {
                (
                    1000.0 - 3.0 * i as f64,
                    0.05 + 0.9 * ((i * 7919) % 997) as f64 / 997.0,
                )
            })
            .collect();
        let live = LiveRelation::new(IndependentDb::from_pairs(pairs).unwrap());
        let alpha = 0.8;
        let _ = live.prfe_log_ranked(alpha).expect("live serves ranked");
        for step in 0..150usize {
            let n = live.n_tuples();
            match step % 3 {
                // Interior scores so inserts land at every sorted position.
                0 => {
                    live.apply(&Mutation::Insert {
                        score: 1000.0 - ((step * 41) % 160) as f64,
                        prob: 0.03 + 0.9 * ((step * 131) % 89) as f64 / 89.0,
                    })
                    .unwrap();
                }
                1 => {
                    live.apply(&Mutation::Delete(TupleId(((step * 13) % n) as u32)))
                        .unwrap();
                }
                _ => {
                    live.apply(&Mutation::Reweight(
                        TupleId(((step * 31) % n) as u32),
                        0.02 + 0.95 * ((step * 71) % 53) as f64 / 53.0,
                    ))
                    .unwrap();
                }
            }
            assert!(
                live.read().log_cache.is_some(),
                "step {step}: cache must survive covered mutations"
            );
            let (keys, order) = live.prfe_log_ranked(alpha).expect("cache present");
            let fresh = crate::topk::Ranking::from_keys(&keys);
            assert_eq!(
                order,
                fresh.order(),
                "step {step}: merged order must equal a fresh sort of the patched keys"
            );
            let rebuilt = live.snapshot_backend().prfe_log_keys(alpha);
            assert_eq!(keys.len(), rebuilt.len(), "step {step}");
            for (a, b) in keys.iter().zip(rebuilt) {
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "step {step}: patched key {a} drifted from rebuilt {b}"
                );
            }
        }
    }

    /// A panic between the plan patch and the key-cache patch (the armed
    /// mutation probe) leaves the backend mutated but the generation and
    /// key cache stale; [`LiveRelation::repair`] must restore full
    /// consistency with a rebuild.
    #[test]
    fn mid_apply_panic_repairs_to_rebuild() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let live = Arc::new(LiveRelation::new(db5()));
        let _ = live.prfe_log_keys(0.7); // populate the key cache
        let armed = Arc::new(AtomicBool::new(true));
        let once = armed.clone();
        live.arm_mutation_probe(move || {
            if once.swap(false, Ordering::SeqCst) {
                panic!("injected mid-apply fault");
            }
        });
        let gen_before = live.mutations_applied();
        let hit = catch_unwind(AssertUnwindSafe(|| {
            live.apply(&Mutation::Reweight(TupleId(0), 0.02))
        }));
        assert!(hit.is_err(), "the armed probe must escape apply");
        // Half-applied: the backend holds the new probability, but the
        // generation never bumped, so wrappers would serve stale state.
        assert_eq!(live.mutations_applied(), gen_before);
        live.repair();
        assert!(
            live.read().log_cache.is_none(),
            "repair discards derived state"
        );
        assert!(
            live.mutations_applied() > gen_before,
            "repair must advance the generation so wrappers re-prepare"
        );
        assert_live_matches_rebuild(&live, "post-repair");
        // The disarmed probe lets later mutations through unharmed.
        live.apply(&Mutation::Reweight(TupleId(1), 0.9)).unwrap();
        assert_live_matches_rebuild(&live, "after-repair mutation");
    }
}
