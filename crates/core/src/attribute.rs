//! Ranking tuples with uncertain scores (Section 4.4).
//!
//! Attribute-level uncertainty is compiled into an and/xor tree — each
//! `(tuple, score)` alternative becomes a leaf, alternatives of one tuple
//! are xor'ed — and the tree algorithms run unchanged. The Υ value of an
//! original tuple is the sum over its alternatives:
//! `Υ(tᵢ) = Σⱼ Υ(tᵢⱼ)`.

use prf_numeric::{Complex, GfValue};
use prf_pdb::{AttributeUncertainDb, PdbError};

use crate::tree::{prf_rank_tree, prfe_rank_tree};
use crate::weights::WeightFunction;

/// Υ values per original tuple under an arbitrary PRF weight function.
///
/// Complexity is that of the underlying tree algorithm in the *total number
/// of alternatives*: `O(m²)` for general ω, `O(m·h·log m)` when truncated (the
/// compiled tree is in x-tuple form, so the fast path of
/// [`crate::xtuple`] applies when a truncation is available).
pub fn prf_rank_uncertain(
    db: &AttributeUncertainDb,
    omega: &dyn WeightFunction,
) -> Result<Vec<Complex>, PdbError> {
    let compiled = db.compile()?;
    // Prefer the x-tuple fast path for truncated weights.
    let per_alt = match crate::xtuple::prf_omega_rank_xtuple(&compiled.tree, omega) {
        Some(v) => v,
        None => prf_rank_tree(&compiled.tree, omega),
    };
    Ok(compiled.aggregate(&per_alt))
}

/// PRFe(α) per original tuple, via the incremental tree algorithm —
/// `O(m log m)` in the total number of alternatives `m`. Division-free, so
/// any [`GfValue`] scalar works (plain, scaled, dual).
pub fn prfe_rank_uncertain<T: GfValue>(
    db: &AttributeUncertainDb,
    alpha: T,
) -> Result<Vec<T>, PdbError> {
    let compiled = db.compile()?;
    let per_alt = prfe_rank_tree(&compiled.tree, alpha);
    Ok(compiled.aggregate(&per_alt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{ExponentialWeight, StepWeight};
    use prf_pdb::{TupleId, UncertainTuple};

    fn db() -> AttributeUncertainDb {
        AttributeUncertainDb::new(vec![
            UncertainTuple::new(vec![(10.0, 0.5), (5.0, 0.3)]).unwrap(),
            UncertainTuple::new(vec![(8.0, 1.0)]).unwrap(),
            UncertainTuple::new(vec![(12.0, 0.2), (7.0, 0.4), (3.0, 0.4)]).unwrap(),
        ])
    }

    /// Brute-force Υ for original tuple `i`: sum over compiled-tree worlds of
    /// ω(rank of whichever alternative of i is present).
    fn brute_upsilon(db: &AttributeUncertainDb, omega: &dyn WeightFunction) -> Vec<f64> {
        let compiled = db.compile().unwrap();
        let worlds = compiled.tree.enumerate_worlds(1 << 20).unwrap();
        let scores = compiled.tree.scores();
        let mut out = vec![0.0; db.len()];
        for (w, p) in &worlds.worlds {
            for &alt in w.tuples() {
                let orig = compiled.owner[alt.index()];
                let r = w.rank_of(alt, scores).expect("present");
                let tv = prf_pdb::Tuple {
                    id: alt,
                    score: scores[alt.index()],
                    prob: 0.0,
                };
                out[orig] += p * omega.weight(&tv, r).re;
            }
        }
        out
    }

    #[test]
    fn pt_h_on_uncertain_scores_matches_brute_force() {
        let db = db();
        let w = StepWeight { h: 2 };
        let got = prf_rank_uncertain(&db, &w).unwrap();
        let want = brute_upsilon(&db, &w);
        for i in 0..db.len() {
            assert!(
                (got[i].re - want[i]).abs() < 1e-10,
                "tuple {i}: {} vs {}",
                got[i].re,
                want[i]
            );
        }
    }

    #[test]
    fn prfe_on_uncertain_scores_matches_brute_force() {
        let db = db();
        let alpha = 0.7;
        let got = prfe_rank_uncertain(&db, Complex::real(alpha)).unwrap();
        let want = brute_upsilon(&db, &ExponentialWeight::real(alpha));
        for i in 0..db.len() {
            assert!(
                (got[i].re - want[i]).abs() < 1e-10,
                "tuple {i}: {} vs {}",
                got[i].re,
                want[i]
            );
        }
    }

    #[test]
    fn certain_scores_reduce_to_independent_tuples() {
        // One alternative per tuple ≡ independent tuples with those scores.
        let a = AttributeUncertainDb::new(vec![
            UncertainTuple::new(vec![(10.0, 0.5)]).unwrap(),
            UncertainTuple::new(vec![(8.0, 0.9)]).unwrap(),
        ]);
        let ind = prf_pdb::IndependentDb::from_pairs([(10.0, 0.5), (8.0, 0.9)]).unwrap();
        let w = StepWeight { h: 1 };
        let got = prf_rank_uncertain(&a, &w).unwrap();
        let want = crate::independent::prf_rank(&ind, &w);
        for i in 0..2 {
            assert!(got[i].approx_eq(want[i], 1e-12));
        }
        let _ = TupleId(0);
    }
}
