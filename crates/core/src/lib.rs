//! Parameterized ranking functions for probabilistic databases —
//! the core contribution of Li, Saha & Deshpande,
//! *“A Unified Approach to Ranking in Probabilistic Databases”* (VLDB 2009).
//!
//! # The PRF framework
//!
//! Ranking uncertain data is a multi-criteria problem: score and probability
//! trade off, and no single fixed ranking function fits every dataset or
//! user. The paper's answer is a *parameterized* family,
//!
//! ```text
//! Υ_ω(t) = Σ_{i>0} ω(t, i) · Pr(r(t) = i)
//! ```
//!
//! over the positional-probability features `Pr(r(t) = i)`, with a top-k
//! query returning the `k` tuples with the largest `|Υ_ω|`. Choosing `ω`
//! recovers ranking by probability, expected score, PT(h)/Global-top-k,
//! U-Rank, expected-rank-style functions and k-selection
//! ([`weights`]); two sub-families get special treatment:
//!
//! * **PRFω(h)** — arbitrary weights on ranks `≤ h`, evaluated in `O(n·h)`
//!   for independent tuples and `O(n·h·log n)` for x-tuples ([`xtuple`]);
//! * **PRFe(α)** — `ω(i) = αⁱ`, evaluated in `O(n log n)` even on
//!   correlated data modelled by probabilistic and/xor trees ([`tree`]),
//!   because `Υ = Fⁱ(α)` needs only the generating function's *value*.
//!
//! # The unified query engine
//!
//! All of the above is reachable through **one entry point**: the
//! [`query`] module's [`query::RankQuery`] builder pairs a
//! [`query::Semantics`] (PRFω, PRFe, PT(h), U-Top, U-Rank, E-Rank,
//! E-Score, Consensus) with an [`query::Algorithm`] (exact
//! generating functions, log-domain, scaled arithmetic, or the DFT
//! mixture approximation — or `Auto`) and runs against any
//! [`query::ProbabilisticRelation`] backend. Many queries against one
//! relation batch into **one shared score-order walk** via
//! [`query::QueryBatch`]. The per-algorithm free functions below remain
//! available as the engine's kernels.
//!
//! # Module map
//!
//! * [`query`] — the unified `RankQuery` engine: one entry point for every
//!   semantics, backend, and numeric mode;
//! * [`weights`] — the `ω` families and the [`weights::WeightFunction`]
//!   trait;
//! * [`independent`] — Algorithm 1 (IND-PRF-RANK) and the PRFe/PRFω fast
//!   paths for tuple-independent data;
//! * [`incremental`] — the incremental generating-function engine: cached
//!   fold state over a binarised combine plan, two leaf-to-root path
//!   recombinations per tuple, division-free, generic over the ring;
//! * [`live`] — live relations: insert/delete/reweight mutations patched
//!   into the cached score order, marginals, compiled plan, and log-domain
//!   keys, with generation counters for stale-cache invalidation;
//! * [`tree`] — Algorithms 2 and 3 on and/xor trees as walks of the
//!   incremental engine (full-refold oracles retained); expected ranks via
//!   dual numbers;
//! * [`xtuple`] — `O(n·h·log n)` PRFω(h) on x-tuples by a division-free
//!   divide-and-conquer over the score sweep;
//! * [`shard`] — sharded relations: score-contiguous shards walked by a
//!   persistent worker pool and merged via the presence-GF monoid;
//! * [`attribute`] — ranking with uncertain scores (Section 4.4);
//! * [`mixture`] — DFT-based approximation of PRFω by PRFe mixtures
//!   (Section 5.1);
//! * [`spectrum`] — Theorem 4: the single-crossing structure of PRFe
//!   rankings as `α` sweeps 0→1;
//! * [`topk`] — turning Υ values into ranked answers.

#![deny(missing_docs)]

pub mod attribute;
pub mod incremental;
pub mod independent;
pub mod live;
pub mod mixture;
pub mod parallel;
pub mod query;
pub mod shard;
pub mod spectrum;
pub mod topk;
pub mod tree;
pub mod weights;
pub mod xtuple;

pub use attribute::{prf_rank_uncertain, prfe_rank_uncertain};
pub use incremental::{EvalPlan, GfStats, IncrementalGf};
pub use independent::{
    prf_rank, prf_rank_full, prf_rank_truncated, prfe_rank, prfe_rank_log, prfe_rank_scaled,
    rank_distributions,
};
pub use live::{LiveApply, LiveRelation, MutableRelation, Mutation, MutationEffect};
pub use mixture::{approximate_weights, DftApproxConfig, ExpMixture};
pub use parallel::{
    effective_walk_threads, prf_rank_tree_parallel, prf_rank_tree_parallel_stats,
    PARALLEL_MIN_SHARD_TUPLES,
};
pub use prf_pdb::TupleId;
pub use query::{
    Algorithm, BatchCost, BatchPlan, BatchRoute, CancelToken, CorrelationClass, EvalReport,
    NumericMode, PreparedRelation, PreparedState, ProbabilisticRelation, QueryBatch, QueryError,
    RankQuery, RankedResult, Semantics, TopSet, Values,
};
pub use shard::{ShardError, ShardHandle, ShardPool, ShardedRelation};
pub use spectrum::{crossing_point, prfe_spectrum, spectrum_endpoints, Crossing};
pub use topk::{Ranking, ValueOrder};
pub use tree::{
    expected_ranks_tree, prf_rank_tree, prf_rank_tree_interp, prf_rank_tree_refold,
    prf_rank_tree_stats, prfe_rank_tree, prfe_rank_tree_recompute, prfe_rank_tree_scaled,
    prfe_rank_tree_scaled_stats, prfe_rank_tree_stats, rank_distributions_tree,
};
pub use weights::{
    ConstantWeight, DcgWeight, ExponentialWeight, LinearWeight, PositionWeight, ScoreWeight,
    StepWeight, TabulatedWeight, TopScoreWeight, WeightFunction,
};
pub use xtuple::prf_omega_rank_xtuple;
