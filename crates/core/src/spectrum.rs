//! The PRFe spectrum: how the ranking evolves as `α` sweeps `0 → 1`
//! (Section 7, Theorem 4).
//!
//! For independent tuples, the ratio
//! `ρ_{j,i}(α) = Υ_α(t_j)/Υ_α(t_i) = (p_j/p_i)·Π_{l=i..j−1}(1 − p_l + p_l·α)`
//! (positions `i < j` in score order) is monotone in `α`, so any two tuples
//! swap relative order **at most once**: PRFe(α) interpolates between
//! `τ₀` (ranking by `Pr(r(t) = 1)`) at `α → 0` and `τ₁` (ranking by
//! probability) at `α = 1`, executing a bubble-sort-like sequence of
//! adjacent swaps. This module computes the crossing points and enumerates
//! the distinct rankings in the spectrum.

use prf_pdb::{IndependentDb, TupleId};

use crate::independent::prfe_rank_log;
use crate::topk::Ranking;

/// Relationship between two tuples across the PRFe spectrum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Crossing {
    /// The first tuple ranks above the second for every `α ∈ (0, 1]`.
    FirstAlways,
    /// The second tuple ranks above the first for every `α ∈ (0, 1]`.
    SecondAlways,
    /// They swap exactly once, at the given `β ∈ (0, 1)` (first above
    /// second for `α < β`, below for `α > β`).
    SwapAt(f64),
}

/// Where tuples `a` and `b` cross as `α` sweeps `(0, 1]` (Theorem 4).
///
/// Uses the closed-form monotone ratio and bisection to locate the crossing
/// to absolute precision `1e-12`. Tuples with zero probability never rank
/// above anything and are reported accordingly.
pub fn crossing_point(db: &IndependentDb, a: TupleId, b: TupleId) -> Crossing {
    assert_ne!(a, b, "crossing_point requires distinct tuples");
    let order = db.ids_by_score_desc();
    let pos_a = order.iter().position(|&t| t == a).expect("tuple a");
    let pos_b = order.iter().position(|&t| t == b).expect("tuple b");
    // Normalise so `hi` is the higher-scored tuple.
    let (hi, lo, hi_is_a) = if pos_a < pos_b {
        (pos_a, pos_b, true)
    } else {
        (pos_b, pos_a, false)
    };
    let p_hi = db.tuple(order[hi]).prob;
    let p_lo = db.tuple(order[lo]).prob;

    let verdict = |hi_above: bool| -> Crossing {
        match (hi_above, hi_is_a) {
            (true, true) | (false, false) => Crossing::FirstAlways,
            (true, false) | (false, true) => Crossing::SecondAlways,
        }
    };

    if p_lo == 0.0 {
        return verdict(true);
    }
    if p_hi == 0.0 {
        return verdict(false);
    }

    // log ρ(α) = ln p_lo − ln p_hi + Σ_{l=hi..lo−1} ln(1 − p_l + p_l α);
    // ρ is increasing in α. hi ranks above lo iff ρ < 1 (log ρ < 0).
    let middle: Vec<f64> = order[hi..lo].iter().map(|&t| db.tuple(t).prob).collect();
    let log_rho = |alpha: f64| -> f64 {
        let mut lr = p_lo.ln() - p_hi.ln();
        for &p in &middle {
            lr += (1.0 - p + p * alpha).ln();
        }
        lr
    };

    let at0 = log_rho(0.0);
    let at1 = log_rho(1.0);
    if at1 <= 0.0 {
        // ρ stays below 1: hi above lo everywhere (ties resolve to the
        // higher-scored/lower-id tuple, matching Ranking's tie-break).
        return verdict(true);
    }
    if at0 >= 0.0 {
        return verdict(false);
    }
    // Bisection on the monotone log-ratio.
    let (mut lo_a, mut hi_a) = (0.0f64, 1.0f64);
    for _ in 0..100 {
        let mid = 0.5 * (lo_a + hi_a);
        if log_rho(mid) < 0.0 {
            lo_a = mid;
        } else {
            hi_a = mid;
        }
        if hi_a - lo_a < 1e-13 {
            break;
        }
    }
    let beta = 0.5 * (lo_a + hi_a);
    if hi_is_a {
        Crossing::SwapAt(beta)
    } else {
        // From b's (the higher tuple's) perspective a is below before β;
        // as the *first* argument, a is below b for α < β and above after.
        Crossing::SwapAt(beta)
    }
}

/// One segment of the PRFe spectrum: a maximal interval of `α` values that
/// produce the same full ranking.
#[derive(Clone, Debug)]
pub struct SpectrumSegment {
    /// Left endpoint of the interval (exclusive at 0).
    pub alpha_lo: f64,
    /// Right endpoint.
    pub alpha_hi: f64,
    /// The ranking on this interval (best first).
    pub ranking: Vec<TupleId>,
}

/// Enumerates every distinct PRFe ranking as `α` sweeps `(0, 1]`, by
/// computing all pairwise crossing points (`O(n²)` pairs, each `O(n)`) and
/// sampling the ranking at interval midpoints.
///
/// Intended for analysis and tests at small `n`; the number of segments is
/// at most `1 + (number of crossings) ≤ 1 + n(n−1)/2` — the `O(n²)`
/// richness that Section 7 contrasts with PT(h)'s `n` rankings.
pub fn prfe_spectrum(db: &IndependentDb) -> Vec<SpectrumSegment> {
    let n = db.len();
    let mut cuts = vec![0.0, 1.0];
    for i in 0..n {
        for j in (i + 1)..n {
            if let Crossing::SwapAt(beta) = crossing_point(db, TupleId(i as u32), TupleId(j as u32))
            {
                cuts.push(beta);
            }
        }
    }
    cuts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-10);

    let mut segments: Vec<SpectrumSegment> = Vec::new();
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mid = 0.5 * (lo + hi);
        let ranking = Ranking::from_keys(&prfe_rank_log(db, mid)).order().to_vec();
        match segments.last_mut() {
            Some(last) if last.ranking == ranking => last.alpha_hi = hi,
            _ => segments.push(SpectrumSegment {
                alpha_lo: lo,
                alpha_hi: hi,
                ranking,
            }),
        }
    }
    segments
}

/// The two endpoint rankings of the spectrum: `τ₀` (by `Pr(r(t) = 1)`) and
/// `τ₁` (by existence probability). PRFe(α) converges to these as `α → 0`
/// and `α = 1` respectively.
pub fn spectrum_endpoints(db: &IndependentDb) -> (Vec<TupleId>, Vec<TupleId>) {
    // τ₀: Pr(r(t)=1) = p_t · Π_{higher} (1 − p).
    let order = db.ids_by_score_desc();
    let mut keys0 = vec![f64::NEG_INFINITY; db.len()];
    let mut log_none_above = 0.0f64;
    for &t in &order {
        let p = db.tuple(t).prob;
        if p > 0.0 {
            keys0[t.index()] = log_none_above + p.ln();
        }
        log_none_above += (1.0 - p).ln();
    }
    let tau0 = Ranking::from_keys(&keys0).order().to_vec();
    let keys1: Vec<f64> = db.tuples().iter().map(|t| t.prob).collect();
    let tau1 = Ranking::from_keys(&keys1).order().to_vec();
    (tau0, tau1)
}

/// Convenience: the PRFe ranking at a given real `α`, computed in log space
/// (underflow-free).
pub fn prfe_ranking_at(db: &IndependentDb, alpha: f64) -> Vec<TupleId> {
    if alpha <= 0.0 {
        return spectrum_endpoints(db).0;
    }
    Ranking::from_keys(&prfe_rank_log(db, alpha))
        .order()
        .to_vec()
}

/// Checks empirically that two tuples swap at most once over a grid of `α`
/// values — the statement of Theorem 4. Returns the number of order flips
/// observed. Exposed for tests and the examples.
pub fn count_order_flips(db: &IndependentDb, a: TupleId, b: TupleId, grid: usize) -> usize {
    let mut flips = 0;
    let mut last: Option<bool> = None;
    for g in 1..=grid {
        let alpha = g as f64 / grid as f64;
        let keys = prfe_rank_log(db, alpha);
        let a_above = keys[a.index()] > keys[b.index()];
        if let Some(prev) = last {
            if prev != a_above {
                flips += 1;
            }
        }
        last = Some(a_above);
    }
    flips
}

/// The PRFe values of Example 7 (four tuples), exposed for the
/// documentation example and tests.
pub fn example7_db() -> IndependentDb {
    IndependentDb::from_pairs([(100.0, 0.4), (80.0, 0.6), (50.0, 0.5), (30.0, 0.9)])
        .expect("valid example database")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independent::prfe_rank;
    use prf_numeric::Complex;

    #[test]
    fn example_7_upsilon_formulas() {
        // Υα(t1) = .4α, Υα(t2) = (.6+.4α)·.6α, …
        let db = example7_db();
        for &alpha in &[0.2, 0.5, 0.8] {
            let u = prfe_rank(&db, Complex::real(alpha));
            assert!((u[0].re - 0.4 * alpha).abs() < 1e-12);
            assert!((u[1].re - (0.6 + 0.4 * alpha) * 0.6 * alpha).abs() < 1e-12);
            assert!(
                (u[2].re - (0.6 + 0.4 * alpha) * (0.4 + 0.6 * alpha) * 0.5 * alpha).abs() < 1e-12
            );
            assert!(
                (u[3].re
                    - (0.6 + 0.4 * alpha)
                        * (0.4 + 0.6 * alpha)
                        * (0.5 + 0.5 * alpha)
                        * 0.9
                        * alpha)
                    .abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn example_7_swap_around_t1_t4_intersection() {
        // Figure 6: ranking is {t2, t1, t4, t3} just before the f1/f4
        // intersection and {t2, t4, t1, t3} just after.
        let db = example7_db();
        let c = crossing_point(&db, TupleId(0), TupleId(3));
        let beta = match c {
            Crossing::SwapAt(b) => b,
            other => panic!("expected a swap, got {other:?}"),
        };
        let before = prfe_ranking_at(&db, beta - 1e-4);
        let after = prfe_ranking_at(&db, beta + 1e-4);
        assert_eq!(
            before,
            vec![TupleId(1), TupleId(0), TupleId(3), TupleId(2)],
            "before crossing"
        );
        assert_eq!(
            after,
            vec![TupleId(1), TupleId(3), TupleId(0), TupleId(2)],
            "after crossing"
        );
    }

    #[test]
    fn crossings_match_grid_flips() {
        let db = example7_db();
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                let c = crossing_point(&db, TupleId(i), TupleId(j));
                let flips = count_order_flips(&db, TupleId(i), TupleId(j), 4000);
                match c {
                    Crossing::SwapAt(_) => assert_eq!(flips, 1, "pair ({i},{j})"),
                    _ => assert_eq!(flips, 0, "pair ({i},{j})"),
                }
            }
        }
    }

    #[test]
    fn theorem_4_no_double_swaps_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let db = IndependentDb::from_pairs(
                (0..8).map(|i| (100.0 - i as f64, rng.gen_range(0.05..1.0))),
            )
            .unwrap();
            for i in 0..8u32 {
                for j in (i + 1)..8 {
                    assert!(
                        count_order_flips(&db, TupleId(i), TupleId(j), 500) <= 1,
                        "pair ({i},{j}) swapped more than once"
                    );
                }
            }
        }
    }

    #[test]
    fn dominance_implies_fixed_order() {
        // t0 dominates t1 (higher score and probability) ⇒ always above.
        let db = IndependentDb::from_pairs([(10.0, 0.9), (5.0, 0.3)]).unwrap();
        assert_eq!(
            crossing_point(&db, TupleId(0), TupleId(1)),
            Crossing::FirstAlways
        );
        assert_eq!(
            crossing_point(&db, TupleId(1), TupleId(0)),
            Crossing::SecondAlways
        );
    }

    #[test]
    fn spectrum_connects_tau0_to_tau1() {
        let db = example7_db();
        let segments = prfe_spectrum(&db);
        assert!(!segments.is_empty());
        let (tau0, tau1) = spectrum_endpoints(&db);
        assert_eq!(segments.first().unwrap().ranking, tau0);
        assert_eq!(segments.last().unwrap().ranking, tau1);
        // Consecutive segments differ by exactly one adjacent transposition
        // (the bubble-sort picture of Section 7) — at least for this
        // example's non-degenerate crossing points.
        for w in segments.windows(2) {
            let a = &w[0].ranking;
            let b = &w[1].ranking;
            let diffs: Vec<usize> = (0..a.len()).filter(|&i| a[i] != b[i]).collect();
            assert_eq!(diffs.len(), 2, "one swap between segments");
            assert_eq!(diffs[1], diffs[0] + 1, "swap is adjacent");
        }
    }

    #[test]
    fn zero_probability_tuples() {
        let db = IndependentDb::from_pairs([(10.0, 0.0), (5.0, 0.5)]).unwrap();
        assert_eq!(
            crossing_point(&db, TupleId(0), TupleId(1)),
            Crossing::SecondAlways
        );
    }
}
