//! Thread-parallel variants of the embarrassingly parallel algorithms.
//!
//! The per-tuple expansions of Algorithm 2 (`O(n·h)` *per tuple* on general
//! and/xor trees) are independent of one another, so PRFω(h) on correlated
//! data parallelises perfectly across tuples. This module shards the tuple
//! range over `std::thread::scope` workers — no extra dependencies, no
//! unsafe — and is the practical answer to the `O(n²·h)` wall the exact
//! tree algorithms hit (see EXPERIMENTS.md, Figure 10(ii)/11(iii) notes).

use prf_numeric::{Complex, RankPoly};
use prf_pdb::{AndXorTree, Tuple, TupleId};

use crate::tree::score_order;
use crate::weights::WeightFunction;

/// Parallel ANDXOR-PRF-RANK: identical output to
/// [`crate::tree::prf_rank_tree`], computed with `threads` workers.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn prf_rank_tree_parallel(
    tree: &AndXorTree,
    omega: &(dyn WeightFunction + Sync),
    threads: usize,
) -> Vec<Complex> {
    assert!(threads > 0, "need at least one thread");
    let n = tree.n_tuples();
    if n == 0 {
        return Vec::new();
    }
    let cap = omega.truncation().unwrap_or(n).min(n);
    if cap == 0 {
        return vec![Complex::ZERO; n];
    }
    let (order, pos) = score_order(tree);
    let marginals = tree.marginals();

    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    let mut results: Vec<Vec<(TupleId, Complex)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            let order = &order;
            let pos = &pos;
            let marginals = &marginals;
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(hi.saturating_sub(lo));
                for (i, &t) in order.iter().enumerate().take(hi).skip(lo) {
                    let gf = tree.generating_function(|u| {
                        if u == t {
                            RankPoly::y().with_cap(cap)
                        } else if pos[u.index()] < i {
                            RankPoly::x().with_cap(cap)
                        } else {
                            RankPoly::one().with_cap(cap)
                        }
                    });
                    let tv = Tuple {
                        id: t,
                        score: tree.score(t),
                        prob: marginals[t.index()],
                    };
                    let mut ups = Complex::ZERO;
                    for j in 1..=cap {
                        let c = gf.rank_probability(j);
                        if c != 0.0 {
                            ups += omega.weight(&tv, j) * c;
                        }
                    }
                    out.push((t, ups));
                }
                out
            }));
        }
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    });

    let mut out = vec![Complex::ZERO; n];
    for shard in results {
        for (t, v) in shard {
            out[t.index()] = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::prf_rank_tree;
    use crate::weights::StepWeight;
    use prf_pdb::AndXorTree;

    #[test]
    fn parallel_matches_serial() {
        let tree = AndXorTree::from_x_tuples(&[
            vec![(10.0, 0.4), (9.0, 0.3)],
            vec![(8.0, 0.9)],
            vec![(7.0, 0.5), (6.0, 0.2), (5.0, 0.1)],
            vec![(4.0, 1.0)],
        ])
        .unwrap();
        let w = StepWeight { h: 4 };
        let serial = prf_rank_tree(&tree, &w);
        for threads in [1usize, 2, 4, 16] {
            let par = prf_rank_tree_parallel(&tree, &w, threads);
            for t in 0..tree.n_tuples() {
                assert!(
                    par[t].approx_eq(serial[t], 1e-12),
                    "threads={threads} t={t}"
                );
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let tree = AndXorTree::from_x_tuples(&[vec![(1.0, 0.5)]]).unwrap();
        let w = StepWeight { h: 1 };
        let par = prf_rank_tree_parallel(&tree, &w, 8);
        assert_eq!(par.len(), 1);
        assert!((par[0].re - 0.5).abs() < 1e-12);
    }
}
