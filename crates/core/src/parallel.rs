//! Thread-parallel variants of the tree ranking algorithms.
//!
//! The score-order walk of the incremental engine looks inherently serial —
//! every step depends on the previous labelling — but the fold state at any
//! position `i` is a pure function of the *labels* (tuples before `i` carry
//! `x`, the rest `1`), so a worker can **fast-forward**: build its evaluator
//! directly in the shard-start labelling with one `O(tree)` fold, then walk
//! only its shard. All workers share one compiled [`EvalPlan`]; total work
//! is one extra fold per worker on top of the serial incremental cost.

use prf_numeric::{Complex, RankPoly};
use prf_pdb::{AndXorTree, TupleId};

use crate::incremental::{EvalPlan, GfStats};
use crate::tree::score_order;
use crate::weights::WeightFunction;

/// Parallel ANDXOR-PRF-RANK: identical output to
/// [`crate::tree::prf_rank_tree`], computed with `threads` workers over
/// shard-local incremental evaluators.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn prf_rank_tree_parallel(
    tree: &AndXorTree,
    omega: &(dyn WeightFunction + Sync),
    threads: usize,
) -> Vec<Complex> {
    prf_rank_tree_parallel_stats(tree, omega, threads).0
}

/// [`prf_rank_tree_parallel`] plus the merged memory accounting of the
/// shard evaluators (they are live concurrently, so peaks sum).
pub fn prf_rank_tree_parallel_stats(
    tree: &AndXorTree,
    omega: &(dyn WeightFunction + Sync),
    threads: usize,
) -> (Vec<Complex>, GfStats) {
    assert!(threads > 0, "need at least one thread");
    let n = tree.n_tuples();
    if n == 0 {
        return (Vec::new(), GfStats::default());
    }
    let cap = omega.truncation().unwrap_or(n).min(n);
    if cap == 0 {
        return (vec![Complex::ZERO; n], GfStats::default());
    }
    let (order, pos) = score_order(tree);
    let marginals = tree.marginals();
    let plan = EvalPlan::new(tree);

    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    let mut results: Vec<(Vec<(TupleId, Complex)>, GfStats)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            if lo >= hi {
                continue; // rounding can leave trailing shards empty
            }
            let order = &order;
            let pos = &pos;
            let marginals = &marginals;
            let plan = &plan;
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(hi - lo);
                // Fast-forward: tuples before the shard already carry x.
                let mut inc = plan.evaluator(|u| {
                    if pos[u.index()] < lo {
                        RankPoly::x().with_cap(cap)
                    } else {
                        RankPoly::one().with_cap(cap)
                    }
                });
                for (i, &t) in order.iter().enumerate().take(hi).skip(lo) {
                    if i > lo {
                        inc.set_leaf(order[i - 1], RankPoly::x().with_cap(cap));
                    }
                    inc.set_leaf(t, RankPoly::y().with_cap(cap));
                    let tv = crate::tree::tuple_view(tree, marginals, t);
                    out.push((t, crate::tree::upsilon_from_gf(inc.root(), &tv, omega, cap)));
                }
                let stats = inc.stats();
                (out, stats)
            }));
        }
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    });

    let mut out = vec![Complex::ZERO; n];
    let mut stats = GfStats::default();
    for (shard, shard_stats) in results {
        for (t, v) in shard {
            out[t.index()] = v;
        }
        stats = stats.merge(shard_stats);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::prf_rank_tree;
    use crate::weights::StepWeight;
    use prf_pdb::AndXorTree;

    #[test]
    fn parallel_matches_serial() {
        let tree = AndXorTree::from_x_tuples(&[
            vec![(10.0, 0.4), (9.0, 0.3)],
            vec![(8.0, 0.9)],
            vec![(7.0, 0.5), (6.0, 0.2), (5.0, 0.1)],
            vec![(4.0, 1.0)],
        ])
        .unwrap();
        let w = StepWeight { h: 4 };
        let serial = prf_rank_tree(&tree, &w);
        for threads in [1usize, 2, 4, 16] {
            let par = prf_rank_tree_parallel(&tree, &w, threads);
            for t in 0..tree.n_tuples() {
                assert!(
                    par[t].approx_eq(serial[t], 1e-12),
                    "threads={threads} t={t}"
                );
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let tree = AndXorTree::from_x_tuples(&[vec![(1.0, 0.5)]]).unwrap();
        let w = StepWeight { h: 1 };
        let par = prf_rank_tree_parallel(&tree, &w, 8);
        assert_eq!(par.len(), 1);
        assert!((par[0].re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_stats_merge_shards() {
        let tree = AndXorTree::from_x_tuples(&[
            vec![(10.0, 0.4), (9.0, 0.3)],
            vec![(8.0, 0.9)],
            vec![(7.0, 0.5), (6.0, 0.2)],
        ])
        .unwrap();
        let w = StepWeight { h: 3 };
        let (_, s1) = prf_rank_tree_parallel_stats(&tree, &w, 1);
        let (_, s2) = prf_rank_tree_parallel_stats(&tree, &w, 2);
        assert!(s1.plan_nodes > 0);
        // Two concurrent shards hold two evaluators.
        assert_eq!(s2.plan_nodes, 2 * s1.plan_nodes);
    }
}
