//! Thread-parallel variants of the tree ranking algorithms.
//!
//! The score-order walk of the incremental engine looks inherently serial —
//! every step depends on the previous labelling — but the fold state at any
//! position `i` is a pure function of the *labels* (tuples before `i` carry
//! `x`, the rest `1`), so a worker can **fast-forward**: build its evaluator
//! directly in the shard-start labelling with one `O(tree)` fold, then walk
//! only its shard. All workers share one compiled
//! [`EvalPlan`](crate::incremental::EvalPlan); total work is one extra fold
//! per worker on top of the serial incremental cost.

use std::time::Instant;

use prf_numeric::{Complex, RankPoly};
use prf_pdb::{AndXorTree, TupleId};

use crate::incremental::GfStats;
use crate::query::batch::{SharedAnswer, SharedWalkOut, SharedWalkSpec};
use crate::tree::{BatchConsumers, BatchWalkers, TreePrepared};
use crate::weights::WeightFunction;

/// Minimum tuples **per shard** for the sharded batch walk to beat the
/// serial incremental walk.
///
/// Shard setup used to cost one full `O(tree)` fast-forward fold per
/// worker per evaluator — 1.5–2.5× *slower* than serial at `n = 10⁴`
/// on Syn-MED trees, which put the original floor at `2¹⁵`. The workers
/// now share the fold prefix (one all-ones fold, bulk-advanced one chunk
/// per shard boundary and cloned — see
/// [`crate::incremental::IncrementalGf::set_leaves_bulk`]), leaving only
/// the serial sweep, one snapshot copy per worker, and the merge:
/// measured 8–19% total-work overhead at 2–4 threads for shards of
/// 2¹¹–2¹⁴ tuples (Syn-MED, PT(50)), i.e. an expected ≥ 3.4× four-way
/// speedup once cores are available. The floor drops 8× accordingly;
/// below 2¹² the per-shard walk no longer amortizes the snapshot copy
/// and scheduling granularity. An under-sharded walk merely runs serial
/// (correct, and still the faster choice on tiny batches).
pub const PARALLEL_MIN_SHARD_TUPLES: usize = 1 << 12;

/// The worker count a shared walk **actually** runs with once sharding is
/// gated on `n/threads` versus the fast-forward cost: the requested count
/// when every shard clears [`PARALLEL_MIN_SHARD_TUPLES`], serial (1)
/// otherwise. Exposed so callers (and the regression test pinning that
/// small-`n` batches resolve to the serial route) can inspect the decision
/// without running a walk.
pub fn effective_walk_threads(n: usize, requested: Option<usize>) -> usize {
    match requested {
        Some(t) if t > 1 && n / t >= PARALLEL_MIN_SHARD_TUPLES => t,
        _ => 1,
    }
}

/// Parallel ANDXOR-PRF-RANK: identical output to
/// [`crate::tree::prf_rank_tree`], computed with `threads` workers over
/// shard-local incremental evaluators.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn prf_rank_tree_parallel(
    tree: &AndXorTree,
    omega: &(dyn WeightFunction + Sync),
    threads: usize,
) -> Vec<Complex> {
    prf_rank_tree_parallel_stats(tree, omega, threads).0
}

/// [`prf_rank_tree_parallel`] plus the merged memory accounting of the
/// shard evaluators (they are live concurrently, so peaks sum).
pub fn prf_rank_tree_parallel_stats(
    tree: &AndXorTree,
    omega: &(dyn WeightFunction + Sync),
    threads: usize,
) -> (Vec<Complex>, GfStats) {
    if tree.n_tuples() == 0 {
        return (Vec::new(), GfStats::default());
    }
    prf_rank_tree_parallel_stats_prepared(tree, omega, threads, &TreePrepared::new(tree))
}

/// [`prf_rank_tree_parallel_stats`] against a pre-built [`TreePrepared`]
/// (see [`batch_walk_tree_parallel_prepared`]).
///
/// # Panics
/// Panics if `threads == 0` or the tree is empty (callers gate on `n > 0`).
pub(crate) fn prf_rank_tree_parallel_stats_prepared(
    tree: &AndXorTree,
    omega: &(dyn WeightFunction + Sync),
    threads: usize,
    prep: &TreePrepared,
) -> (Vec<Complex>, GfStats) {
    assert!(threads > 0, "need at least one thread");
    let n = tree.n_tuples();
    let cap = omega.truncation().unwrap_or(n).min(n);
    if cap == 0 {
        return (vec![Complex::ZERO; n], GfStats::default());
    }
    let order = &prep.order;
    let pos = &prep.pos;
    let marginals = &prep.marginals;
    let plan = &prep.plan;

    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    // Shared fold prefix: ONE trivial all-ones fold, then each shard's
    // start state is the previous one advanced by a single chunk of `x`
    // labels (bulk bottom-up sweep) and cloned. Total setup ring work is
    // one fold plus one sweep over the walked prefix — previously every
    // worker re-folded the whole plan from scratch, `threads ×` the work.
    let mut snapshots = Vec::with_capacity(threads);
    {
        let mut base = plan.evaluator(|_| RankPoly::one().with_cap(cap));
        let mut prev_lo = 0usize;
        for w in 0..threads {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            if lo >= hi {
                continue; // rounding can leave trailing shards empty
            }
            if lo > prev_lo {
                base.set_leaves_bulk(|u| {
                    let p = pos[u.index()];
                    (prev_lo <= p && p < lo).then(|| RankPoly::x().with_cap(cap))
                });
                prev_lo = lo;
            }
            snapshots.push((lo, hi, base.clone()));
        }
    }
    let mut results: Vec<(Vec<(TupleId, Complex)>, GfStats)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(snapshots.len());
        for (lo, hi, mut inc) in snapshots {
            let order = &order;
            let marginals = &marginals;
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(hi - lo);
                for (i, &t) in order.iter().enumerate().take(hi).skip(lo) {
                    if i > lo {
                        inc.set_leaf(order[i - 1], RankPoly::x().with_cap(cap));
                    }
                    inc.set_leaf(t, RankPoly::y().with_cap(cap));
                    let tv = crate::tree::tuple_view(tree, marginals, t);
                    out.push((t, crate::tree::upsilon_from_gf(inc.root(), &tv, omega, cap)));
                }
                let stats = inc.stats();
                (out, stats)
            }));
        }
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    });

    let mut out = vec![Complex::ZERO; n];
    let mut stats = GfStats::default();
    for (shard, shard_stats) in results {
        for (t, v) in shard {
            out[t.index()] = v;
        }
        stats = stats.merge(shard_stats);
    }
    (out, stats)
}

/// The sharded form of [`crate::tree::batch_walk_tree`]: every worker
/// fast-forwards the full consumer set (the shared polynomial evaluator
/// plus one scalar evaluator per PRFe/E-Rank request) into its shard-start
/// labelling over **one** compiled [`EvalPlan`](crate::incremental::EvalPlan),
/// walks only its shard, and
/// the shards' answers are merged. The expected-ranks absent-worlds pass
/// runs serially afterwards (it is `O(n)` scalar work).
///
/// # Panics
/// Panics if `threads == 0`.
pub(crate) fn batch_walk_tree_parallel(
    tree: &AndXorTree,
    spec: &SharedWalkSpec,
    threads: usize,
) -> Option<SharedWalkOut> {
    if tree.n_tuples() == 0 {
        let start = Instant::now();
        return Some(SharedWalkOut {
            answers: BatchConsumers::answer_buffers(spec, 0),
            stats: None,
            walk_seconds: start.elapsed().as_secs_f64(),
        });
    }
    batch_walk_tree_parallel_prepared(tree, spec, threads, &TreePrepared::new(tree))
}

/// [`batch_walk_tree_parallel`] against a pre-built [`TreePrepared`]: the
/// score sort, position index, marginals, and compiled plan come from the
/// caller (a `PreparedRelation` amortizing them across flushes) instead of
/// being rebuilt per walk.
///
/// # Panics
/// Panics if `threads == 0` or the tree is empty (callers gate on `n > 0`).
pub(crate) fn batch_walk_tree_parallel_prepared(
    tree: &AndXorTree,
    spec: &SharedWalkSpec,
    threads: usize,
    prep: &TreePrepared,
) -> Option<SharedWalkOut> {
    assert!(threads > 0, "need at least one thread");
    let start = Instant::now();
    let n = tree.n_tuples();
    let consumers = BatchConsumers::parse(spec, n);
    let mut answers = BatchConsumers::answer_buffers(spec, n);
    let order = &prep.order;
    let pos = &prep.pos;
    let marginals = &prep.marginals;
    let plan = &prep.plan;

    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    // Shared fold prefix across shards (see the single-query variant
    // above): one all-ones fast-forward, bulk-advanced one chunk per
    // boundary, with a snapshot cloned for each worker — instead of every
    // worker re-folding the full consumer set from scratch.
    let mut snapshots = Vec::with_capacity(threads);
    {
        let mut base = BatchWalkers::fast_forward(plan, &consumers, |_| false);
        let mut prev_lo = 0usize;
        for w in 0..threads {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            if lo >= hi {
                continue; // rounding can leave trailing shards empty
            }
            if lo > prev_lo {
                base.advance_bulk(|u| {
                    let p = pos[u.index()];
                    prev_lo <= p && p < lo
                });
                prev_lo = lo;
            }
            snapshots.push((lo, hi, base.clone()));
        }
    }
    type Shard = Option<(usize, usize, Vec<SharedAnswer>, GfStats)>;
    let mut shards: Vec<Shard> = Vec::with_capacity(snapshots.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(snapshots.len());
        for (lo, hi, mut walkers) in snapshots {
            let order = &order;
            let marginals = &marginals;
            let consumers = &consumers;
            let spec = &spec;
            handles.push(scope.spawn(move || {
                // Shard-sized buffers (position `i − lo`), like the
                // single-query parallel walk — not full-length per worker.
                let mut local = BatchConsumers::answer_buffers(spec, hi - lo);
                for (i, &t) in order.iter().enumerate().take(hi).skip(lo) {
                    // Cooperative cancellation: every shard polls, and any
                    // tripped poll abandons the whole walk after the join.
                    if (i - lo) & 0xFF == 0 && spec.is_cancelled() {
                        return None;
                    }
                    walkers.step((i > lo).then(|| order[i - 1]), t);
                    let tv = crate::tree::tuple_view(tree, marginals, t);
                    walkers.extract(consumers, &tv, &mut local, i - lo);
                }
                Some((lo, hi, local, walkers.stats()))
            }));
        }
        for h in handles {
            shards.push(h.join().expect("worker panicked"));
        }
    });

    let mut stats = GfStats::default();
    for shard in shards {
        let (lo, hi, local, shard_stats) = shard?; // any cancelled shard abandons the walk
        for (j, &t) in order[lo..hi].iter().enumerate() {
            for (dst, src) in answers.iter_mut().zip(&local) {
                copy_answer_at(dst, src, t.index(), j);
            }
        }
        stats = stats.merge(shard_stats);
    }
    crate::tree::finish_erank_answers(&consumers, plan, n, &mut answers);
    Some(SharedWalkOut {
        answers,
        stats: Some(stats),
        walk_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Copies one tuple's value from a shard-local answer buffer (indexed by
/// shard position) into the merged buffer (indexed by tuple id).
fn copy_answer_at(dst: &mut SharedAnswer, src: &SharedAnswer, dst_idx: usize, src_idx: usize) {
    match (dst, src) {
        (SharedAnswer::Complex(d), SharedAnswer::Complex(s)) => d[dst_idx] = s[src_idx],
        (SharedAnswer::Log(d), SharedAnswer::Log(s)) => d[dst_idx] = s[src_idx],
        (SharedAnswer::Scaled(d), SharedAnswer::Scaled(s)) => d[dst_idx] = s[src_idx],
        (SharedAnswer::Ranks(d), SharedAnswer::Ranks(s)) => d[dst_idx] = s[src_idx],
        _ => unreachable!("shard buffers share the merged buffers' shapes"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::prf_rank_tree;
    use crate::weights::StepWeight;
    use prf_pdb::AndXorTree;

    #[test]
    fn parallel_matches_serial() {
        let tree = AndXorTree::from_x_tuples(&[
            vec![(10.0, 0.4), (9.0, 0.3)],
            vec![(8.0, 0.9)],
            vec![(7.0, 0.5), (6.0, 0.2), (5.0, 0.1)],
            vec![(4.0, 1.0)],
        ])
        .unwrap();
        let w = StepWeight { h: 4 };
        let serial = prf_rank_tree(&tree, &w);
        for threads in [1usize, 2, 4, 16] {
            let par = prf_rank_tree_parallel(&tree, &w, threads);
            for t in 0..tree.n_tuples() {
                assert!(
                    par[t].approx_eq(serial[t], 1e-12),
                    "threads={threads} t={t}"
                );
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let tree = AndXorTree::from_x_tuples(&[vec![(1.0, 0.5)]]).unwrap();
        let w = StepWeight { h: 1 };
        let par = prf_rank_tree_parallel(&tree, &w, 8);
        assert_eq!(par.len(), 1);
        assert!((par[0].re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sharding_gate_boundary() {
        // Below the per-shard floor the gate degrades to serial; at or
        // above it the requested count passes through. With the shared
        // fold prefix the floor sits at 2¹² tuples per shard, so n = 10⁴
        // now shards two ways (it used to lose outright) but still not
        // four.
        assert_eq!(effective_walk_threads(10_000, Some(4)), 1);
        assert_eq!(effective_walk_threads(10_000, Some(2)), 2);
        assert_eq!(
            effective_walk_threads(2 * PARALLEL_MIN_SHARD_TUPLES, Some(2)),
            2
        );
        assert_eq!(
            effective_walk_threads(2 * PARALLEL_MIN_SHARD_TUPLES - 1, Some(2)),
            1,
            "one tuple short of two full shards"
        );
        assert_eq!(
            effective_walk_threads(4 * PARALLEL_MIN_SHARD_TUPLES, Some(4)),
            4
        );
        // Serial requests and degenerate counts are untouched.
        assert_eq!(effective_walk_threads(usize::MAX, None), 1);
        assert_eq!(effective_walk_threads(usize::MAX, Some(1)), 1);
        assert_eq!(effective_walk_threads(0, Some(8)), 1);
    }

    #[test]
    fn parallel_stats_merge_shards() {
        let tree = AndXorTree::from_x_tuples(&[
            vec![(10.0, 0.4), (9.0, 0.3)],
            vec![(8.0, 0.9)],
            vec![(7.0, 0.5), (6.0, 0.2)],
        ])
        .unwrap();
        let w = StepWeight { h: 3 };
        let (_, s1) = prf_rank_tree_parallel_stats(&tree, &w, 1);
        let (_, s2) = prf_rank_tree_parallel_stats(&tree, &w, 2);
        assert!(s1.plan_nodes > 0);
        // Two concurrent shards hold two evaluators.
        assert_eq!(s2.plan_nodes, 2 * s1.plan_nodes);
    }
}
