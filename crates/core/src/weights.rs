//! Weight functions `ω(t, i)` — the parameter of the PRF family.
//!
//! Definition 3 of the paper: `Υ_ω(t) = Σ_{i>0} ω(t, i)·Pr(r(t) = i)`, with a
//! top-k query returning the `k` tuples with the largest `|Υ_ω|`. Different
//! `ω` recover previously proposed ranking semantics:
//!
//! | `ω(t, i)`             | semantics                               |
//! |-----------------------|------------------------------------------|
//! | `1`                   | rank by existence probability            |
//! | `score(t)`            | expected score (E-Score)                 |
//! | `δ(i ≤ h)`            | probabilistic threshold PT(h)            |
//! | `δ(i = j)`            | U-Rank position `j`                      |
//! | `−i`                  | PRFℓ, the in-world part of expected rank |
//! | `δ(i = 1)·score(t)`   | k-selection                              |
//! | `αⁱ`                  | PRFe(α)                                  |
//! | learned `w_i`, `i ≤ h`| PRFω(h)                                  |

use prf_numeric::Complex;
use prf_pdb::Tuple;

/// A PRF weight function `ω : (tuple, rank) → ℂ`.
///
/// Ranks are 1-based. Implementations should be cheap (`O(1)`) per call; the
/// ranking algorithms may invoke them `O(n²)` times.
pub trait WeightFunction {
    /// The weight of `tuple` being ranked at (1-based) position `rank`.
    fn weight(&self, tuple: &Tuple, rank: usize) -> Complex;

    /// If `Some(h)`, the weight is guaranteed zero for every `rank > h`,
    /// enabling the truncated `O(n·h)` algorithms.
    fn truncation(&self) -> Option<usize> {
        None
    }

    /// `true` when the weight ignores its tuple argument (`ω(t, i) = ω(i)`).
    /// Rank-only weights can be materialised once with [`tabulate`] and
    /// shared across workers — [`crate::shard::ShardedRelation`] uses this
    /// to route PRFω queries through its parallel pool. Conservative
    /// default: `false` (tuple-dependent).
    fn rank_only(&self) -> bool {
        false
    }

    /// A short human-readable name for diagnostics.
    fn name(&self) -> String {
        "ω".to_string()
    }
}

/// `ω(t, i) = 1` — Υ is the existence probability; ranks by probability.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConstantWeight;

impl WeightFunction for ConstantWeight {
    fn weight(&self, _tuple: &Tuple, _rank: usize) -> Complex {
        Complex::ONE
    }
    fn rank_only(&self) -> bool {
        true
    }
    fn name(&self) -> String {
        "probability".into()
    }
}

/// `ω(t, i) = score(t)` — Υ is `Pr(t)·score(t)`, the expected score.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScoreWeight;

impl WeightFunction for ScoreWeight {
    fn weight(&self, tuple: &Tuple, _rank: usize) -> Complex {
        Complex::real(tuple.score)
    }
    fn name(&self) -> String {
        "e-score".into()
    }
}

/// `ω(i) = δ(i ≤ h)` — Υ is `Pr(r(t) ≤ h)`; the PT(h) / Global-Top-k
/// semantics.
#[derive(Clone, Copy, Debug)]
pub struct StepWeight {
    /// The rank threshold `h`.
    pub h: usize,
}

impl WeightFunction for StepWeight {
    fn weight(&self, _tuple: &Tuple, rank: usize) -> Complex {
        if rank <= self.h {
            Complex::ONE
        } else {
            Complex::ZERO
        }
    }
    fn truncation(&self) -> Option<usize> {
        Some(self.h)
    }
    fn rank_only(&self) -> bool {
        true
    }
    fn name(&self) -> String {
        format!("PT({})", self.h)
    }
}

/// `ω(i) = δ(i = j)` — Υ is `Pr(r(t) = j)`; maximising it per `j` yields the
/// U-Rank answer.
#[derive(Clone, Copy, Debug)]
pub struct PositionWeight {
    /// The target (1-based) rank.
    pub j: usize,
}

impl WeightFunction for PositionWeight {
    fn weight(&self, _tuple: &Tuple, rank: usize) -> Complex {
        if rank == self.j {
            Complex::ONE
        } else {
            Complex::ZERO
        }
    }
    fn truncation(&self) -> Option<usize> {
        Some(self.j)
    }
    fn rank_only(&self) -> bool {
        true
    }
    fn name(&self) -> String {
        format!("rank={}", self.j)
    }
}

/// `ω(i) = −i` — PRFℓ; `−Υ` is the in-world contribution `er₁` of the
/// expected rank.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinearWeight;

impl WeightFunction for LinearWeight {
    fn weight(&self, _tuple: &Tuple, rank: usize) -> Complex {
        Complex::real(-(rank as f64))
    }
    fn rank_only(&self) -> bool {
        true
    }
    fn name(&self) -> String {
        "PRF-linear".into()
    }
}

/// `ω(i) = ln 2 / ln(i + 1)` — the DCG-style discount factor from
/// information retrieval cited in Section 3.3.
#[derive(Clone, Copy, Debug, Default)]
pub struct DcgWeight;

impl WeightFunction for DcgWeight {
    fn weight(&self, _tuple: &Tuple, rank: usize) -> Complex {
        Complex::real(std::f64::consts::LN_2 / ((rank + 1) as f64).ln())
    }
    fn rank_only(&self) -> bool {
        true
    }
    fn name(&self) -> String {
        "discount".into()
    }
}

/// `ω(i) = αⁱ` — PRFe(α) with real or complex `α`.
///
/// Typically `|α| ≤ 1`: larger magnitudes would prefer *lower*-scored tuples.
#[derive(Clone, Copy, Debug)]
pub struct ExponentialWeight {
    /// The base `α`.
    pub alpha: Complex,
}

impl ExponentialWeight {
    /// PRFe with a real base.
    pub fn real(alpha: f64) -> Self {
        ExponentialWeight {
            alpha: Complex::real(alpha),
        }
    }
}

impl WeightFunction for ExponentialWeight {
    fn weight(&self, _tuple: &Tuple, rank: usize) -> Complex {
        self.alpha.powi(rank as i64)
    }
    fn rank_only(&self) -> bool {
        true
    }
    fn name(&self) -> String {
        format!("PRFe({})", self.alpha)
    }
}

/// `ω(t, i) = δ(i = 1)·score(t)` — the k-selection objective of Liu et al.
#[derive(Clone, Copy, Debug, Default)]
pub struct TopScoreWeight;

impl WeightFunction for TopScoreWeight {
    fn weight(&self, tuple: &Tuple, rank: usize) -> Complex {
        if rank == 1 {
            Complex::real(tuple.score)
        } else {
            Complex::ZERO
        }
    }
    fn truncation(&self) -> Option<usize> {
        Some(1)
    }
    fn name(&self) -> String {
        "k-selection".into()
    }
}

/// An explicit weight table `w₁ … w_h` with `ω(i) = wᵢ` and zero beyond `h` —
/// the PRFω(h) family, typically with learned weights.
#[derive(Clone, Debug)]
pub struct TabulatedWeight {
    weights: Vec<Complex>,
}

impl TabulatedWeight {
    /// Builds a PRFω(h) weight from the table `w₁ … w_h` (index 0 is rank 1).
    pub fn new(weights: Vec<Complex>) -> Self {
        TabulatedWeight { weights }
    }

    /// Builds from real weights.
    pub fn from_real(weights: &[f64]) -> Self {
        TabulatedWeight {
            weights: weights.iter().map(|&w| Complex::real(w)).collect(),
        }
    }

    /// The truncation horizon `h`.
    pub fn h(&self) -> usize {
        self.weights.len()
    }

    /// The weight table (rank 1 first).
    pub fn weights(&self) -> &[Complex] {
        &self.weights
    }
}

impl WeightFunction for TabulatedWeight {
    fn weight(&self, _tuple: &Tuple, rank: usize) -> Complex {
        if rank == 0 || rank > self.weights.len() {
            Complex::ZERO
        } else {
            self.weights[rank - 1]
        }
    }
    fn truncation(&self) -> Option<usize> {
        Some(self.weights.len())
    }
    fn rank_only(&self) -> bool {
        true
    }
    fn name(&self) -> String {
        format!("PRFω({})", self.weights.len())
    }
}

/// Materialises any rank-only weight function as a table of length `h` —
/// convenient for feeding learned or analytic `ω` into the truncated
/// algorithms or the DFT approximation pipeline.
pub fn tabulate(omega: &dyn WeightFunction, h: usize) -> Vec<Complex> {
    // The tuple argument is ignored by rank-only weights; pass a dummy.
    let dummy = Tuple {
        id: prf_pdb::TupleId(0),
        score: 0.0,
        prob: 1.0,
    };
    (1..=h).map(|i| omega.weight(&dummy, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_pdb::TupleId;

    fn t(score: f64) -> Tuple {
        Tuple {
            id: TupleId(0),
            score,
            prob: 0.5,
        }
    }

    #[test]
    fn step_weight_matches_pt() {
        let w = StepWeight { h: 3 };
        assert_eq!(w.weight(&t(1.0), 1), Complex::ONE);
        assert_eq!(w.weight(&t(1.0), 3), Complex::ONE);
        assert_eq!(w.weight(&t(1.0), 4), Complex::ZERO);
        assert_eq!(w.truncation(), Some(3));
    }

    #[test]
    fn position_weight_is_indicator() {
        let w = PositionWeight { j: 2 };
        assert_eq!(w.weight(&t(1.0), 1), Complex::ZERO);
        assert_eq!(w.weight(&t(1.0), 2), Complex::ONE);
        assert_eq!(w.weight(&t(1.0), 3), Complex::ZERO);
    }

    #[test]
    fn exponential_weight_powers() {
        let w = ExponentialWeight::real(0.5);
        assert!(w.weight(&t(1.0), 1).approx_eq(Complex::real(0.5), 1e-12));
        assert!(w.weight(&t(1.0), 3).approx_eq(Complex::real(0.125), 1e-12));
        let wc = ExponentialWeight {
            alpha: Complex::new(0.0, 1.0),
        };
        assert!(wc.weight(&t(1.0), 2).approx_eq(Complex::real(-1.0), 1e-12));
    }

    #[test]
    fn score_and_top_score() {
        assert_eq!(ScoreWeight.weight(&t(42.0), 5), Complex::real(42.0));
        assert_eq!(TopScoreWeight.weight(&t(42.0), 1), Complex::real(42.0));
        assert_eq!(TopScoreWeight.weight(&t(42.0), 2), Complex::ZERO);
    }

    #[test]
    fn linear_weight_is_negated_rank() {
        assert_eq!(LinearWeight.weight(&t(0.0), 7), Complex::real(-7.0));
    }

    #[test]
    fn dcg_weight_decreases() {
        let w1 = DcgWeight.weight(&t(0.0), 1).re;
        let w2 = DcgWeight.weight(&t(0.0), 2).re;
        assert!((w1 - 1.0).abs() < 1e-12); // ln2/ln2 = 1
        assert!(w2 < w1);
    }

    #[test]
    fn tabulated_weight_bounds() {
        let w = TabulatedWeight::from_real(&[3.0, 2.0, 1.0]);
        assert_eq!(w.h(), 3);
        assert_eq!(w.weight(&t(0.0), 1), Complex::real(3.0));
        assert_eq!(w.weight(&t(0.0), 3), Complex::real(1.0));
        assert_eq!(w.weight(&t(0.0), 4), Complex::ZERO);
        assert_eq!(w.weight(&t(0.0), 0), Complex::ZERO);
    }

    #[test]
    fn tabulation_of_step() {
        let tab = tabulate(&StepWeight { h: 2 }, 4);
        assert_eq!(tab.len(), 4);
        assert_eq!(tab[0], Complex::ONE);
        assert_eq!(tab[1], Complex::ONE);
        assert_eq!(tab[2], Complex::ZERO);
    }
}
