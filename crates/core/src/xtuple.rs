//! `O(n·h·log n)` PRFω(h) / PT(h) for x-tuples — the height-2 and/xor
//! special case.
//!
//! For x-tuples (an ∧ root over ∨ groups of leaves) the number of
//! higher-scored present tuples from each group `g` is Bernoulli with
//! success probability `q_g = Σ_{t'∈g, t' above t} p(t')`, independently
//! across groups. The per-tuple generating function is therefore a product
//! of *linear* factors, one per group:
//!
//! ```text
//! Fᵗ(x) = p(t)·x · Π_{g' ≠ g(t)} ((1 − q_{g'}) + q_{g'}·x)
//! ```
//!
//! A tempting incremental algorithm maintains the truncated product across
//! the score sweep with one synthetic division + one multiplication per
//! step (`O(h)` each). That division is numerically **catastrophic**: its
//! error recursion amplifies by `q/(1−q)` per coefficient, i.e. by
//! `(q/(1−q))^h` overall — at `h = 64` a single `q = 0.9` group already
//! destroys all precision (verified by test below).
//!
//! Instead this module uses an offline divide-and-conquer over the sweep
//! timeline, the standard "product of all but the current factor" technique:
//! each group-factor *version* is active on an interval of sweep steps
//! (excluding the steps that query that group); intervals are distributed
//! segment-tree style over a recursion on the timeline, multiplying factors
//! into a cloned truncated product on the way down and evaluating Υ at the
//! leaves. No divisions ever happen, so the computation is unconditionally
//! stable; each of the `O(n + G)` versions is multiplied into `O(log n)`
//! node products, giving `O(n·h·log n)` time and `O(h·log n)` extra memory.

use prf_numeric::{Complex, Poly};
use prf_pdb::{AndXorTree, Tuple, TupleId};

use crate::tree::score_order;
use crate::weights::WeightFunction;

/// One group-factor version `(a + b·x)`, active for queries on the sweep
/// steps `lo..=hi`.
#[derive(Clone, Copy, Debug)]
struct FactorSpan {
    lo: usize,
    hi: usize,
    a: f64,
    b: f64,
}

/// Truncated PRFω(h) over an x-tuple tree, or `None` when the tree is not in
/// x-tuple form or the weight function has no truncation horizon.
///
/// Produces the same Υ values as [`crate::tree::prf_rank_tree`] but in
/// `O(n·h·log n)` instead of `O(n²·h)`.
pub fn prf_omega_rank_xtuple(
    tree: &AndXorTree,
    omega: &dyn WeightFunction,
) -> Option<Vec<Complex>> {
    let groups = tree.x_tuple_groups()?;
    let h = omega.truncation()?;
    Some(rank_groups(tree, &groups, omega, h))
}

fn rank_groups(
    tree: &AndXorTree,
    groups: &[Vec<TupleId>],
    omega: &dyn WeightFunction,
    h: usize,
) -> Vec<Complex> {
    let n = tree.n_tuples();
    let mut out = vec![Complex::ZERO; n];
    if n == 0 || h == 0 {
        return out;
    }
    let marginals = tree.marginals();
    let (order, pos) = score_order(tree);

    // Per group, the member steps in sweep order, and the factor versions.
    let mut spans: Vec<FactorSpan> = Vec::with_capacity(n + groups.len());
    for members in groups {
        let mut steps: Vec<usize> = members.iter().map(|t| pos[t.index()]).collect();
        steps.sort_unstable();
        let mut q = 0.0f64;
        for (j, &s) in steps.iter().enumerate() {
            q += marginals[order[s].index()];
            // This version is in force for queries strictly after step s and
            // up to (but excluding) the group's next own step; own steps are
            // excluded because the queried tuple's group factor is left out
            // of Fᵗ.
            let lo = s + 1;
            let hi = match steps.get(j + 1) {
                Some(&next) => next.saturating_sub(1),
                None => n - 1,
            };
            if lo <= hi {
                spans.push(FactorSpan {
                    lo,
                    hi,
                    a: (1.0 - q).max(0.0),
                    b: q.min(1.0),
                });
            }
        }
    }

    // Divide and conquer over the timeline.
    let acc = Poly::one();
    solve(
        tree, omega, h, &order, &marginals, 0, n, spans, &acc, &mut out,
    );
    out
}

/// Recursion over the step range `[lo, hi)`: multiplies spans covering the
/// whole range into (a clone of) `acc`, splits the rest between the halves,
/// and evaluates Υ at single-step leaves.
#[allow(clippy::too_many_arguments)]
fn solve(
    tree: &AndXorTree,
    omega: &dyn WeightFunction,
    h: usize,
    order: &[TupleId],
    marginals: &[f64],
    lo: usize,
    hi: usize,
    spans: Vec<FactorSpan>,
    acc: &Poly,
    out: &mut [Complex],
) {
    // Fold every fully-covering span into this node's product.
    let mut covering: Vec<&FactorSpan> = Vec::new();
    let mut rest: Vec<FactorSpan> = Vec::new();
    for s in &spans {
        if s.lo <= lo && s.hi >= hi - 1 {
            covering.push(s);
        } else {
            rest.push(*s);
        }
    }
    let local = if covering.is_empty() {
        None
    } else {
        let mut p = acc.clone();
        for s in covering {
            p.mul_linear_in_place(s.a, s.b, h);
        }
        Some(p)
    };
    let acc = local.as_ref().unwrap_or(acc);

    if hi - lo == 1 {
        // Leaf: step `lo` queries tuple order[lo]; `acc` is the product over
        // all groups except the tuple's own (its versions skip this step).
        debug_assert!(rest.is_empty());
        let t = order[lo];
        let p = marginals[t.index()];
        let tv = Tuple {
            id: t,
            score: tree.score(t),
            prob: p,
        };
        let mut ups = Complex::ZERO;
        for j in 1..=h {
            let c = acc.coeff(j - 1);
            if c != 0.0 {
                ups += omega.weight(&tv, j) * c;
            }
        }
        out[t.index()] = ups * p;
        return;
    }

    let mid = lo + (hi - lo) / 2;
    let (mut left, mut right) = (Vec::new(), Vec::new());
    for s in rest {
        if s.lo < mid {
            left.push(FactorSpan {
                hi: s.hi.min(mid - 1),
                ..s
            });
        }
        if s.hi >= mid {
            right.push(FactorSpan {
                lo: s.lo.max(mid),
                ..s
            });
        }
    }
    solve(tree, omega, h, order, marginals, lo, mid, left, acc, out);
    solve(tree, omega, h, order, marginals, mid, hi, right, acc, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::prf_rank_tree;
    use crate::weights::{PositionWeight, StepWeight, TabulatedWeight};
    use prf_pdb::AndXorTree;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_xtuples(seed: u64, n_groups: usize, saturate_some: bool) -> AndXorTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut groups = Vec::new();
        for gi in 0..n_groups {
            let size = rng.gen_range(1..=4);
            let mut g = Vec::new();
            let saturated = saturate_some && gi % 3 == 0 && size > 1;
            let mut budget = 1.0f64;
            for j in 0..size {
                let score = rng.gen_range(0.0..1000.0);
                let p = if saturated && j == size - 1 {
                    budget // exhaust the probability mass: q = 1 exactly
                } else {
                    let p = rng.gen_range(0.0..budget * 0.8);
                    budget -= p;
                    p
                };
                g.push((score, p));
            }
            groups.push(g);
        }
        AndXorTree::from_x_tuples(&groups).unwrap()
    }

    #[test]
    fn fast_path_matches_generic_tree_expansion() {
        for seed in 0..12u64 {
            let tree = random_xtuples(seed, 6, seed % 2 == 0);
            let w = StepWeight { h: 5 };
            let fast = prf_omega_rank_xtuple(&tree, &w).expect("x-tuple form");
            let slow = prf_rank_tree(&tree, &w);
            for t in 0..tree.n_tuples() {
                assert!(
                    fast[t].approx_eq(slow[t], 1e-8),
                    "seed {seed} t{t}: {} vs {}",
                    fast[t],
                    slow[t]
                );
            }
        }
    }

    #[test]
    fn stable_at_large_h_with_heavy_groups() {
        // The regression that killed the divide-based sweep: groups whose
        // probability mass above the line exceeds 0.5 amplify synthetic-
        // division error as (q/(1−q))^h. The D&C path must stay exact.
        let mut rng = StdRng::seed_from_u64(9);
        let mut groups = Vec::new();
        for _ in 0..60 {
            let size = rng.gen_range(2..=5);
            let total: f64 = rng.gen_range(0.5..0.999);
            let mut g = Vec::new();
            let mut left = total;
            for j in 0..size {
                let p = if j == size - 1 {
                    left
                } else {
                    let p = left * rng.gen_range(0.2..0.8);
                    left -= p;
                    p
                };
                g.push((rng.gen_range(0.0..1000.0), p));
            }
            groups.push(g);
        }
        let tree = AndXorTree::from_x_tuples(&groups).unwrap();
        for h in [64usize, 200] {
            let w = StepWeight { h };
            let fast = prf_omega_rank_xtuple(&tree, &w).unwrap();
            let slow = prf_rank_tree(&tree, &w);
            for t in 0..tree.n_tuples() {
                assert!(
                    (fast[t].re - slow[t].re).abs() < 1e-9,
                    "h={h} t{t}: {} vs {}",
                    fast[t].re,
                    slow[t].re
                );
            }
        }
    }

    #[test]
    fn fast_path_with_position_and_tabulated_weights() {
        let tree = random_xtuples(99, 5, true);
        for w in [
            Box::new(PositionWeight { j: 2 }) as Box<dyn WeightFunction>,
            Box::new(TabulatedWeight::from_real(&[1.0, 0.5, 0.25, 0.125])),
        ] {
            let fast = prf_omega_rank_xtuple(&tree, w.as_ref()).unwrap();
            let slow = prf_rank_tree(&tree, w.as_ref());
            for t in 0..tree.n_tuples() {
                assert!(
                    fast[t].approx_eq(slow[t], 1e-8),
                    "{} t{t}: {} vs {}",
                    w.name(),
                    fast[t],
                    slow[t]
                );
            }
        }
    }

    #[test]
    fn rejects_non_xtuple_trees() {
        use prf_pdb::{NodeKind, TreeBuilder};
        let mut b = TreeBuilder::new(NodeKind::Xor);
        let root = b.root();
        let and = b.add_inner(root, NodeKind::And, 0.5).unwrap();
        b.add_leaf(and, 1.0, 1.0).unwrap();
        b.add_leaf(and, 1.0, 2.0).unwrap();
        let tree = b.build().unwrap();
        assert!(prf_omega_rank_xtuple(&tree, &StepWeight { h: 2 }).is_none());
    }

    #[test]
    fn rejects_untruncated_weights() {
        let tree = random_xtuples(1, 3, false);
        assert!(prf_omega_rank_xtuple(&tree, &crate::weights::ConstantWeight).is_none());
    }

    #[test]
    fn independent_tuples_as_singleton_groups() {
        // Singleton groups = independent tuples; compare against the
        // independent-tuple algorithm.
        let pairs = [
            (50.0, 0.9),
            (40.0, 0.2),
            (30.0, 0.6),
            (20.0, 1.0),
            (10.0, 0.3),
        ];
        let groups: Vec<Vec<(f64, f64)>> = pairs.iter().map(|&p| vec![p]).collect();
        let tree = AndXorTree::from_x_tuples(&groups).unwrap();
        let db = prf_pdb::IndependentDb::from_pairs(pairs).unwrap();
        let w = StepWeight { h: 3 };
        let fast = prf_omega_rank_xtuple(&tree, &w).unwrap();
        let ind = crate::independent::prf_rank(&db, &w);
        for t in 0..db.len() {
            assert!(fast[t].approx_eq(ind[t], 1e-9), "t{t}");
        }
    }
}
