//! Sharded relations: score-contiguous shards merged as a GF monoid.
//!
//! The independent-db prefix walk is a prefix product of per-tuple
//! polynomials — an associative monoid — so a relation split into
//! score-contiguous shards can be walked by independent workers whose
//! partial generating functions merge by polynomial multiplication,
//! exactly the shape of the ∧ combine of PAPER.md Algorithm 2.
//!
//! # The monoid
//!
//! Let shard `k` hold the tuples ranked `k`-th by score block (every score
//! in shard `k` is ≥ every score in shard `k+1`), with the shards mutually
//! independent (each is its own [`IndependentDb`](prf_pdb::IndependentDb)
//! or [`AndXorTree`](prf_pdb::AndXorTree)). The *presence-count generating
//! function* of shard `k`,
//!
//! ```text
//! G_k(x) = Σ_a Pr(|pw ∩ shard_k| = a) · xᵃ,
//! ```
//!
//! factorizes the global one: `G(x) = Π_k G_k(x)`. Every PRF consumer of a
//! shared walk needs only its shard's **incoming prefix state** — the
//! product `P_k(x) = Π_{j<k} G_j(x)` of the *higher-scored* shards — and
//! that product is an associative fold:
//!
//! * **PRFω / PT / U-Rank** (coefficient consumers): shard `k` runs its
//!   ordinary local walk with the *shifted* weight
//!   `W_k(t, j) = Σ_a P_k[a] · ω(t, a + j)` — marginalizing the prefix's
//!   presence count into the weight — and its local answers *are* the
//!   global `Υ_ω` values. Truncation survives (`ω` zero beyond `h` makes
//!   `W_k` zero beyond `h`), so the `O(n·h)` paths stay `O(n·h)`.
//! * **PRFe(α)** (point consumers): the prefix collapses to the scalar
//!   `P_k(α)`, and global values are `local · P_k(α)` (log-domain: add
//!   `ln P_k(α)`).
//! * **E-Rank**: `er(t) = er_loc(t) + p_t·C_pre + (1−p_t)·(C − C_k)` with
//!   `C_pre`/`C_k`/`C` the expected world sizes of the prefix, the shard,
//!   and the whole relation — both closed-form terms decompose across
//!   independent shards.
//!
//! # Execution
//!
//! [`ShardedRelation`] owns a persistent [`ShardPool`] of worker threads.
//! A shared walk runs in two pool-parallel phases: **phase A** computes
//! each shard's monoid elements (`G_k` coefficients, `G_k(α)` points,
//! expected sizes — order-independent, no sort needed), a cheap serial
//! fold turns them into exclusive prefix products (a balanced product
//! tournament for the coefficient merge, mirroring `Poly::product`), and
//! **phase B** walks every shard concurrently with its prefix-adjusted
//! consumers, scattering local answers into the global tuple-id space.
//! The [`SharedWalkSpec`] consumer machinery is reused unchanged, so
//! [`QueryBatch`](crate::query::QueryBatch) and the `prf-serve` server
//! work against a sharded relation exactly as against any other backend.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use prf_numeric::{Complex, GfValue, Poly, Scaled};
use prf_pdb::{Tuple, TupleId};

use crate::incremental::GfStats;
use crate::query::batch::{SharedAnswer, SharedRequest, SharedWalkOut, SharedWalkSpec};
use crate::query::{CorrelationClass, PreparedState, ProbabilisticRelation};
use crate::weights::{tabulate, TabulatedWeight, WeightFunction};

/// A shard handle: any backend that exposes the presence-GF monoid hooks
/// ([`ProbabilisticRelation::presence_gf_coeffs`] /
/// [`ProbabilisticRelation::presence_gf_point`]).
pub type ShardHandle = Arc<dyn ProbabilisticRelation + Send + Sync>;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a [`ShardedRelation`] could not be assembled.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardError {
    /// Consecutive shards overlap in score: every score of shard `k` must
    /// be ≥ every score of shard `k+1`, or the global score order would
    /// interleave shards and the prefix monoid would not apply.
    NotContiguous {
        /// Index of the lower (later, lower-scored) shard of the violating
        /// pair.
        shard: usize,
        /// Minimum score of the shard above the boundary.
        upper_min: f64,
        /// Maximum score of the shard below the boundary.
        lower_max: f64,
    },
    /// The shard's backend does not implement the presence-GF monoid hooks
    /// (both [`ProbabilisticRelation::presence_gf_coeffs`] and
    /// [`ProbabilisticRelation::presence_gf_point`] are required).
    Unsupported {
        /// Index of the offending shard.
        shard: usize,
        /// Its correlation class, for diagnostics.
        class: CorrelationClass,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NotContiguous {
                shard,
                upper_min,
                lower_max,
            } => write!(
                f,
                "shards are not score-contiguous at boundary {shard}: \
                 min score {upper_min} above < max score {lower_max} below"
            ),
            ShardError::Unsupported { shard, class } => write!(
                f,
                "shard {shard} ({class} backend) lacks the presence-GF hooks"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

// ---------------------------------------------------------------------
// The persistent worker pool
// ---------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of shard-walk workers.
///
/// Workers share one job queue behind a mutex; [`ShardPool::run`] fans a
/// batch of closures out and gathers their results in submission order.
/// Panics inside a job are caught on the worker (keeping it alive for the
/// next walk) and re-raised on the submitting thread.
pub struct ShardPool {
    tx: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns a pool of `workers.max(1)` threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Hold the queue lock only for the dequeue, never while
                    // running a job.
                    let job = rx.lock().expect("shard queue poisoned").recv();
                    match job {
                        Ok(job) => job(),
                        Err(_) => break, // pool dropped
                    }
                })
            })
            .collect();
        ShardPool {
            tx: Mutex::new(Some(tx)),
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Runs every job on the pool and returns their results in submission
    /// order. Re-raises the first job panic on the caller.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let njobs = jobs.len();
        let (out_tx, out_rx) = mpsc::channel();
        {
            let guard = self.tx.lock().expect("shard pool poisoned");
            let tx = guard.as_ref().expect("shard pool already shut down");
            for (i, job) in jobs.into_iter().enumerate() {
                let out = out_tx.clone();
                tx.send(Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(job));
                    let _ = out.send((i, result));
                }))
                .expect("shard workers alive");
            }
        }
        drop(out_tx);
        let mut slots: Vec<Option<T>> = (0..njobs).map(|_| None).collect();
        for _ in 0..njobs {
            let (i, result) = out_rx.recv().expect("shard worker delivered");
            match result {
                Ok(v) => slots[i] = Some(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every shard job reports"))
            .collect()
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        *self.tx.lock().expect("shard pool poisoned") = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Shifted weights: marginalizing the prefix into ω
// ---------------------------------------------------------------------

/// `W(t, j) = Σ_a P[a] · ω(t, a + j)` — the local weight that makes a
/// shard's walk produce *global* Υ values (the prefix's presence count is
/// independent of the shard's local rank, so the convolution is exact).
/// Tuple ids are shifted back to the global id space before `ω` sees them.
struct ShiftedWeight {
    inner: Arc<dyn WeightFunction + Send + Sync>,
    prefix: Vec<f64>,
    trunc: Option<usize>,
    id_offset: u32,
}

fn shifted_weight_value(
    inner: &(dyn WeightFunction + '_),
    prefix: &[f64],
    trunc: Option<usize>,
    id_offset: u32,
    tuple: &Tuple,
    rank: usize,
) -> Complex {
    let global = Tuple {
        id: TupleId(tuple.id.0 + id_offset),
        score: tuple.score,
        prob: tuple.prob,
    };
    let cap = trunc.unwrap_or(usize::MAX);
    let mut acc = Complex::ZERO;
    for (a, &pa) in prefix.iter().enumerate() {
        let Some(global_rank) = rank.checked_add(a) else {
            break;
        };
        if global_rank > cap {
            break; // ω is zero beyond its truncation
        }
        if pa != 0.0 {
            acc += inner.weight(&global, global_rank) * pa;
        }
    }
    acc
}

impl WeightFunction for ShiftedWeight {
    fn weight(&self, tuple: &Tuple, rank: usize) -> Complex {
        shifted_weight_value(
            &*self.inner,
            &self.prefix,
            self.trunc,
            self.id_offset,
            tuple,
            rank,
        )
    }
    fn truncation(&self) -> Option<usize> {
        self.trunc
    }
    fn name(&self) -> String {
        format!("shifted({})", self.inner.name())
    }
}

/// Borrowed variant of [`ShiftedWeight`] for the single-query
/// [`ProbabilisticRelation::prf_values`] path, whose `ω` is a borrow that
/// cannot cross into `'static` pool jobs — tuple-dependent weights run
/// serially across shards with this wrapper instead.
struct ShiftedWeightRef<'a> {
    inner: &'a (dyn WeightFunction + Sync),
    prefix: &'a [f64],
    trunc: Option<usize>,
    id_offset: u32,
}

impl WeightFunction for ShiftedWeightRef<'_> {
    fn weight(&self, tuple: &Tuple, rank: usize) -> Complex {
        shifted_weight_value(
            self.inner,
            self.prefix,
            self.trunc,
            self.id_offset,
            tuple,
            rank,
        )
    }
    fn truncation(&self) -> Option<usize> {
        self.trunc
    }
    fn name(&self) -> String {
        format!("shifted({})", self.inner.name())
    }
}

/// `true` when a prefix is the monoid identity `P(x) = 1` — the first
/// non-empty shard's case, where `ω` passes through unchanged.
fn is_identity_prefix(prefix: &[f64]) -> bool {
    prefix.len() == 1 && prefix[0] == 1.0
}

/// Materializes the shifted weight of a *rank-only* `ω` as an explicit
/// table `W[j−1] = Σ_a P[a]·ω(a+j)` of length `min(cap, n_loc)` — an
/// owned, `Send + Sync` weight that pool workers can share, at tabulation
/// cost `O(len·|P|)` (never more than the walk that consumes it).
fn tabulate_shifted(
    omega: &(dyn WeightFunction + '_),
    prefix: &[f64],
    cap: usize,
    n_loc: usize,
) -> TabulatedWeight {
    let len = cap.min(n_loc);
    // ω values at global ranks 1 ..= len + |P| − 1 (zero beyond cap).
    let glob_len = cap.min(len + prefix.len().saturating_sub(1));
    let glob = tabulate(omega, glob_len);
    let mut table = vec![Complex::ZERO; len];
    for (j, slot) in table.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (a, &pa) in prefix.iter().enumerate() {
            let i = j + a; // 0-based index of global rank j+a+1
            if i >= glob_len {
                break;
            }
            if pa != 0.0 {
                acc += glob[i] * pa;
            }
        }
        *slot = acc;
    }
    TabulatedWeight::new(table)
}

// ---------------------------------------------------------------------
// Prefix folds
// ---------------------------------------------------------------------

/// Balanced product tournament over presence-GF coefficient vectors,
/// truncated to `cap` coefficients — the associative combine of the shard
/// monoid (the same divide-and-conquer shape as `Poly::product`, with
/// truncation).
fn coeff_tournament(mut factors: Vec<Poly>, cap: usize) -> Poly {
    if factors.is_empty() {
        return Poly::one();
    }
    while factors.len() > 1 {
        factors = factors
            .chunks(2)
            .map(|pair| match pair {
                [a, b] => a.mul_truncated(b, cap),
                [a] => a.clone(),
                _ => unreachable!("chunks(2)"),
            })
            .collect();
    }
    factors.pop().expect("non-empty")
}

// ---------------------------------------------------------------------
// ShardedRelation
// ---------------------------------------------------------------------

/// A relation assembled from score-contiguous, mutually independent
/// shards, walked concurrently by a persistent worker pool and merged via
/// the presence-GF monoid (module docs).
///
/// Global tuple ids are shard-major: shard `k`'s local tuple `i` is global
/// tuple `offset_k + i`, with `offset_k = Σ_{j<k} n_j`. Because earlier
/// shards hold higher scores *and* lower global ids, the global score
/// order (score descending, id ascending) is exactly the concatenation of
/// the shards' local orders — ties at shard boundaries included.
///
/// `ShardedRelation` implements [`ProbabilisticRelation`], so it drops
/// into [`RankQuery`](crate::query::RankQuery),
/// [`QueryBatch`](crate::query::QueryBatch), and `prf-serve` registration
/// unchanged. U-Top (`most_probable_topk`) is the one unsupported
/// semantics: the most probable top-k *set* does not decompose over the
/// prefix monoid.
///
/// ```
/// use std::sync::Arc;
/// use prf_core::query::RankQuery;
/// use prf_core::shard::ShardedRelation;
/// use prf_pdb::IndependentDb;
///
/// // Two score-contiguous shards: scores [10, 8] ≥ [5, 3].
/// let hi = IndependentDb::from_pairs([(10.0, 0.5), (8.0, 0.7)]).unwrap();
/// let lo = IndependentDb::from_pairs([(5.0, 0.9), (3.0, 0.4)]).unwrap();
/// let sharded = ShardedRelation::new(vec![Arc::new(hi), Arc::new(lo)], 2)?;
/// let top = RankQuery::prfe(0.9).top_k(2).run(&sharded)?;
/// assert_eq!(top.ranking.order().len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ShardedRelation {
    shards: Vec<ShardHandle>,
    pool: ShardPool,
    generations: Mutex<GenTracker>,
}

impl std::fmt::Debug for ShardedRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRelation")
            .field("shards", &self.shards.len())
            .field("workers", &self.pool.size())
            .field("n_tuples", &self.n_tuples())
            .finish()
    }
}

struct GenTracker {
    last_seen: Vec<u64>,
    counter: u64,
    /// Per-shard prepared state, stamped with the shard generation it was
    /// built from. [`ShardedRelation::prepare`] consults this so a
    /// re-preparation after a mutation rebuilds **exactly** the changed
    /// shards' states and reuses the rest by `Arc` handle.
    prepared: Vec<Option<(u64, Arc<PreparedState>)>>,
}

/// Per-shard monoid elements computed by phase A.
struct ShardPre {
    coeffs: Option<Vec<f64>>,
    points: Vec<Scaled<Complex>>,
    expected_size: f64,
}

/// Per-shard prefix state handed to phase B.
#[derive(Clone)]
struct ShardPrefix {
    /// `P_k` coefficients (when any weight consumer needs them).
    coeffs: Option<Vec<f64>>,
    /// `P_k(α)` per distinct evaluation point.
    points: Vec<Scaled<Complex>>,
    /// Expected present count of the prefix (`C_pre`).
    c_pre: f64,
    /// Expected present count of every *other* shard (`C − C_k`).
    c_other: f64,
    /// Global id of the shard's first tuple.
    offset: usize,
}

impl ShardedRelation {
    /// Assembles a sharded relation over `shards` (highest-scored shard
    /// first) with a persistent pool of `workers` walk threads.
    ///
    /// Validates that every shard implements the presence-GF monoid hooks
    /// and that consecutive non-empty shards are score-contiguous
    /// (`min score` above ≥ `max score` below — ties at the boundary are
    /// fine, they resolve by shard order exactly as the global sort
    /// would).
    pub fn new(shards: Vec<ShardHandle>, workers: usize) -> Result<Self, ShardError> {
        for (k, shard) in shards.iter().enumerate() {
            if shard.presence_gf_coeffs(1).is_none()
                || shard.presence_gf_point(Complex::ONE).is_none()
            {
                return Err(ShardError::Unsupported {
                    shard: k,
                    class: shard.correlation_class(),
                });
            }
        }
        let mut prev_min: Option<(usize, f64)> = None;
        for (k, shard) in shards.iter().enumerate() {
            let scores = shard.tuple_scores();
            if scores.is_empty() {
                continue;
            }
            let min = scores.iter().copied().fold(f64::INFINITY, f64::min);
            let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if let Some((_, upper_min)) = prev_min {
                if upper_min < max {
                    return Err(ShardError::NotContiguous {
                        shard: k,
                        upper_min,
                        lower_max: max,
                    });
                }
            }
            prev_min = Some((k, min));
        }
        let generations = Mutex::new(GenTracker {
            last_seen: shards.iter().map(|s| s.generation()).collect(),
            counter: 0,
            prepared: vec![None; shards.len()],
        });
        Ok(ShardedRelation {
            shards,
            pool: ShardPool::new(workers),
            generations,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of pool worker threads.
    pub fn workers(&self) -> usize {
        self.pool.size()
    }

    /// Global id offsets per shard (exclusive prefix sums of shard sizes),
    /// recomputed per operation because live shards may resize.
    fn offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.shards.len());
        let mut acc = 0usize;
        for s in &self.shards {
            offsets.push(acc);
            acc += s.n_tuples();
        }
        offsets
    }

    // -----------------------------------------------------------------
    // Phase A: per-shard monoid elements + the prefix fold
    // -----------------------------------------------------------------

    /// Computes every shard's monoid elements on the pool, then folds
    /// them into exclusive prefix states.
    fn prefixes(
        &self,
        coeff_cap: Option<usize>,
        alphas: &[Complex],
        want_expected_size: bool,
    ) -> Vec<ShardPrefix> {
        let jobs: Vec<_> = self
            .shards
            .iter()
            .map(|shard| {
                let shard = Arc::clone(shard);
                let alphas = alphas.to_vec();
                move || ShardPre {
                    coeffs: coeff_cap.map(|cap| {
                        shard
                            .presence_gf_coeffs(cap)
                            .expect("validated at construction")
                    }),
                    points: alphas
                        .iter()
                        .map(|&a| {
                            shard
                                .presence_gf_point(a)
                                .expect("validated at construction")
                        })
                        .collect(),
                    expected_size: if want_expected_size {
                        shard.tuple_marginals().iter().sum()
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        let pres = self.pool.run(jobs);

        let offsets = self.offsets();
        let c_total: f64 = pres.iter().map(|p| p.expected_size).sum();
        let mut coeff_acc = Poly::one();
        let mut point_acc = vec![Scaled::<Complex>::one(); alphas.len()];
        let mut c_pre = 0.0f64;
        let mut out = Vec::with_capacity(pres.len());
        for (k, pre) in pres.iter().enumerate() {
            out.push(ShardPrefix {
                coeffs: coeff_cap.map(|_| coeff_acc.coeffs().to_vec()),
                points: point_acc.clone(),
                c_pre,
                c_other: c_total - pre.expected_size,
                offset: offsets[k],
            });
            if let (Some(cap), Some(coeffs)) = (coeff_cap, &pre.coeffs) {
                coeff_acc = coeff_acc.mul_truncated(&Poly::from_coeffs(coeffs.clone()), cap);
            }
            for (acc, point) in point_acc.iter_mut().zip(&pre.points) {
                *acc = acc.mul(point);
            }
            c_pre += pre.expected_size;
        }
        out
    }

    // -----------------------------------------------------------------
    // Phase B: the merged shared walk
    // -----------------------------------------------------------------

    /// The whole two-phase merged walk. `preps` carries per-shard prepared
    /// states when the caller has them (matching shard count), else the
    /// shards walk unprepared.
    fn merged_walk(
        &self,
        spec: &SharedWalkSpec,
        preps: Option<&[Arc<PreparedState>]>,
    ) -> Option<SharedWalkOut> {
        let start = Instant::now();
        if spec.is_cancelled() {
            return None;
        }
        let n: usize = self.shards.iter().map(|s| s.n_tuples()).sum();
        if self.shards.len() == 1 {
            // One shard: the prefix is the identity, delegate wholesale.
            let shard = &self.shards[0];
            return match preps.and_then(|p| p.first()) {
                Some(prep) => shard.run_shared_walk_prepared(spec, prep),
                None => shard.run_shared_walk(spec),
            };
        }

        // What the prefix fold must produce.
        let coeff_cap = spec
            .requests
            .iter()
            .filter_map(|r| r.weight_cap(n))
            .max()
            .map(|c| c.max(1));
        let mut alphas: Vec<Complex> = Vec::new();
        let mut alpha_of_request: Vec<Option<usize>> = Vec::with_capacity(spec.requests.len());
        for req in &spec.requests {
            let alpha = match req {
                SharedRequest::PrfeComplex(a) | SharedRequest::PrfeScaled(a) => Some(*a),
                SharedRequest::PrfeLog(a) => Some(Complex::real(*a)),
                _ => None,
            };
            alpha_of_request.push(alpha.map(|a| {
                let key = (a.re.to_bits(), a.im.to_bits());
                match alphas
                    .iter()
                    .position(|b| (b.re.to_bits(), b.im.to_bits()) == key)
                {
                    Some(i) => i,
                    None => {
                        alphas.push(a);
                        alphas.len() - 1
                    }
                }
            }));
        }
        let want_erank = spec
            .requests
            .iter()
            .any(|r| matches!(r, SharedRequest::ExpectedRanks));

        let prefixes = self.prefixes(coeff_cap, &alphas, want_erank);

        // Phase B: walk every non-empty shard on the pool.
        let mut jobs = Vec::new();
        let mut job_shards = Vec::new();
        for (k, shard) in self.shards.iter().enumerate() {
            if shard.n_tuples() == 0 {
                continue;
            }
            job_shards.push(k);
            let shard = Arc::clone(shard);
            let requests = spec.requests.clone();
            let cancel = spec.cancel.clone();
            let prefix = prefixes[k].clone();
            let alpha_of_request = alpha_of_request.clone();
            let prep = preps.and_then(|p| p.get(k).cloned());
            jobs.push(move || {
                shard_walk(
                    &*shard,
                    requests,
                    cancel,
                    prefix,
                    &alpha_of_request,
                    n,
                    prep.as_deref(),
                )
            });
        }
        let outs = self.pool.run(jobs);

        // Scatter local answers into the global tuple-id space.
        let mut answers: Vec<SharedAnswer> = spec
            .requests
            .iter()
            .map(|req| match req {
                SharedRequest::Weight(_) | SharedRequest::PrfeComplex(_) => {
                    SharedAnswer::Complex(vec![Complex::ZERO; n])
                }
                SharedRequest::PrfeLog(_) => SharedAnswer::Log(vec![f64::NEG_INFINITY; n]),
                SharedRequest::PrfeScaled(_) => SharedAnswer::Scaled(vec![Scaled::zero(); n]),
                SharedRequest::ExpectedRanks => SharedAnswer::Ranks(vec![0.0; n]),
            })
            .collect();
        let mut stats: Option<GfStats> = None;
        for (k, out) in job_shards.into_iter().zip(outs) {
            let (local_answers, local_stats) = out?;
            let offset = prefixes[k].offset;
            for (global, local) in answers.iter_mut().zip(local_answers) {
                scatter(global, local, offset);
            }
            stats = match (stats, local_stats) {
                (Some(a), Some(b)) => Some(a.merge(b)),
                (s, t) => s.or(t),
            };
        }
        Some(SharedWalkOut {
            answers,
            stats,
            walk_seconds: start.elapsed().as_secs_f64(),
        })
    }

    // -----------------------------------------------------------------
    // Single-query merges (the non-batch trait surface)
    // -----------------------------------------------------------------

    /// PRFω across shards: rank-only `ω` tabulates its shifted weights and
    /// fans out on the pool; tuple-dependent `ω` (a borrow that cannot
    /// cross into `'static` jobs) runs the shards serially with the
    /// borrowed shifted wrapper.
    fn prf_values_merged(
        &self,
        omega: &(dyn WeightFunction + Sync),
        preps: Option<&[Arc<PreparedState>]>,
    ) -> (Vec<Complex>, Option<GfStats>) {
        let n: usize = self.shards.iter().map(|s| s.n_tuples()).sum();
        if n == 0 {
            return (Vec::new(), None);
        }
        let cap = omega.truncation().unwrap_or(n).min(n).max(1);
        let prefixes = self.prefixes(Some(cap), &[], false);
        let mut result = vec![Complex::ZERO; n];
        let mut stats: Option<GfStats> = None;

        let mut merge = |offset: usize, vals: Vec<Complex>, s: Option<GfStats>| {
            result[offset..offset + vals.len()].copy_from_slice(&vals);
            stats = match (stats.take(), s) {
                (Some(a), Some(b)) => Some(a.merge(b)),
                (a, b) => a.or(b),
            };
        };

        if omega.rank_only() {
            let jobs: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .filter(|(_, s)| s.n_tuples() > 0)
                .map(|(k, shard)| {
                    let shard = Arc::clone(shard);
                    let prefix = prefixes[k].coeffs.clone().expect("coeffs requested");
                    let prep = preps.and_then(|p| p.get(k).cloned());
                    let offset = prefixes[k].offset;
                    let tab = tabulate_shifted(omega, &prefix, cap, shard.n_tuples());
                    move || {
                        let (vals, s) = match &prep {
                            Some(prep) => shard.prf_values_prepared(&tab, None, prep),
                            None => shard.prf_values_with_stats(&tab, None),
                        };
                        (offset, vals, s)
                    }
                })
                .collect();
            for (offset, vals, s) in self.pool.run(jobs) {
                merge(offset, vals, s);
            }
        } else {
            for (k, shard) in self.shards.iter().enumerate() {
                if shard.n_tuples() == 0 {
                    continue;
                }
                let prefix = prefixes[k].coeffs.as_deref().expect("coeffs requested");
                let offset = prefixes[k].offset;
                let shifted = ShiftedWeightRef {
                    inner: omega,
                    prefix,
                    trunc: omega.truncation(),
                    id_offset: offset as u32,
                };
                let (vals, s) = if is_identity_prefix(prefix) && offset == 0 {
                    match preps.and_then(|p| p.get(k)) {
                        Some(prep) => shard.prf_values_prepared(omega, None, prep),
                        None => shard.prf_values_with_stats(omega, None),
                    }
                } else {
                    match preps.and_then(|p| p.get(k)) {
                        Some(prep) => shard.prf_values_prepared(&shifted, None, prep),
                        None => shard.prf_values_with_stats(&shifted, None),
                    }
                };
                merge(offset, vals, s);
            }
        }
        (result, stats)
    }

    /// Fans `f(shard)` out on the pool over non-empty shards and scatters
    /// each shard's tuple-indexed output into a global buffer primed with
    /// `fill`.
    fn scatter_map<T, F>(&self, fill: T, f: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&ShardHandle, usize) -> Vec<T> + Send + Sync + 'static,
    {
        let offsets = self.offsets();
        let n: usize = self.shards.iter().map(|s| s.n_tuples()).sum();
        let f = Arc::new(f);
        let jobs: Vec<_> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.n_tuples() > 0)
            .map(|(k, shard)| {
                let shard = Arc::clone(shard);
                let f = Arc::clone(&f);
                let offset = offsets[k];
                move || (offset, f(&shard, k))
            })
            .collect();
        let mut out = vec![fill; n];
        for (offset, vals) in self.pool.run(jobs) {
            out[offset..offset + vals.len()].clone_from_slice(&vals);
        }
        out
    }
}

/// One shard's phase-B work: map the requests through the prefix state,
/// run the shard's own shared walk (falling back to its single-query
/// kernels when it has no shared kernel), post-process the scalar
/// consumers, and hand back shard-local answers.
#[allow(clippy::too_many_arguments)]
fn shard_walk(
    shard: &(dyn ProbabilisticRelation + Send + Sync),
    requests: Vec<SharedRequest>,
    cancel: Option<crate::query::CancelToken>,
    prefix: ShardPrefix,
    alpha_of_request: &[Option<usize>],
    global_n: usize,
    prep: Option<&PreparedState>,
) -> Option<(Vec<SharedAnswer>, Option<GfStats>)> {
    let n_loc = shard.n_tuples();
    let local_requests: Vec<SharedRequest> = requests
        .iter()
        .map(|req| match req {
            SharedRequest::Weight(w) => {
                let coeffs = prefix.coeffs.as_deref().expect("coeffs requested");
                if is_identity_prefix(coeffs) && (prefix.offset == 0 || w.rank_only()) {
                    SharedRequest::Weight(Arc::clone(w))
                } else if w.rank_only() {
                    let cap = w.truncation().unwrap_or(global_n).min(global_n).max(1);
                    SharedRequest::Weight(Arc::new(tabulate_shifted(&**w, coeffs, cap, n_loc)))
                } else {
                    SharedRequest::Weight(Arc::new(ShiftedWeight {
                        inner: Arc::clone(w),
                        prefix: coeffs.to_vec(),
                        trunc: w.truncation(),
                        id_offset: prefix.offset as u32,
                    }))
                }
            }
            other => other.clone(),
        })
        .collect();
    let local_spec = SharedWalkSpec {
        requests: local_requests,
        threads: None,
        cancel,
    };
    let out = match prep {
        Some(prep) => shard.run_shared_walk_prepared(&local_spec, prep),
        None => shard.run_shared_walk(&local_spec),
    };
    let (mut answers, stats) = match out {
        Some(out) => (out.answers, out.stats),
        None => {
            // No shared kernel (or cancelled): cancelled walks demote the
            // whole batch; a backend without a shared kernel answers each
            // request through its single-query surface instead.
            if local_spec.is_cancelled() {
                return None;
            }
            let mut answers = Vec::with_capacity(local_spec.requests.len());
            for req in &local_spec.requests {
                answers.push(match req {
                    SharedRequest::Weight(w) => SharedAnswer::Complex(shard.prf_values(&**w, None)),
                    SharedRequest::PrfeComplex(a) => SharedAnswer::Complex(shard.prfe_values(*a)),
                    SharedRequest::PrfeLog(a) => SharedAnswer::Log(shard.prfe_log_keys(*a)),
                    SharedRequest::PrfeScaled(a) => {
                        SharedAnswer::Scaled(shard.prfe_values_scaled(*a))
                    }
                    // No exact E-Rank on this shard: the merged walk
                    // cannot serve the batch; demote to single queries.
                    SharedRequest::ExpectedRanks => SharedAnswer::Ranks(shard.expected_ranks()?),
                });
            }
            (answers, None)
        }
    };

    // Post-process the scalar consumers with the prefix state.
    let marginals = if requests
        .iter()
        .any(|r| matches!(r, SharedRequest::ExpectedRanks))
    {
        shard.tuple_marginals()
    } else {
        Vec::new()
    };
    for ((req, answer), alpha_idx) in requests
        .iter()
        .zip(answers.iter_mut())
        .zip(alpha_of_request)
    {
        match (req, answer) {
            (SharedRequest::PrfeComplex(_), SharedAnswer::Complex(vals)) => {
                let point = &prefix.points[alpha_idx.expect("α recorded")];
                for v in vals.iter_mut() {
                    *v = Scaled::new(*v).mul(point).to_plain();
                }
            }
            (SharedRequest::PrfeScaled(_), SharedAnswer::Scaled(vals)) => {
                let point = &prefix.points[alpha_idx.expect("α recorded")];
                for v in vals.iter_mut() {
                    *v = v.mul(point);
                }
            }
            (SharedRequest::PrfeLog(_), SharedAnswer::Log(vals)) => {
                let point = &prefix.points[alpha_idx.expect("α recorded")];
                let ln_prefix = point.magnitude_key() * std::f64::consts::LN_2;
                for v in vals.iter_mut() {
                    *v += ln_prefix;
                }
            }
            (SharedRequest::ExpectedRanks, SharedAnswer::Ranks(vals)) => {
                for (v, &p) in vals.iter_mut().zip(&marginals) {
                    *v += p * prefix.c_pre + (1.0 - p) * prefix.c_other;
                }
            }
            _ => {} // weight answers are already global (shifted ω)
        }
    }
    Some((answers, stats))
}

/// Copies a shard's local answer block into the global buffer at `offset`.
fn scatter(global: &mut SharedAnswer, local: SharedAnswer, offset: usize) {
    match (global, local) {
        (SharedAnswer::Complex(g), SharedAnswer::Complex(l)) => {
            g[offset..offset + l.len()].copy_from_slice(&l);
        }
        (SharedAnswer::Log(g), SharedAnswer::Log(l)) => {
            g[offset..offset + l.len()].copy_from_slice(&l);
        }
        (SharedAnswer::Scaled(g), SharedAnswer::Scaled(l)) => {
            g[offset..offset + l.len()].clone_from_slice(&l);
        }
        (SharedAnswer::Ranks(g), SharedAnswer::Ranks(l)) => {
            g[offset..offset + l.len()].copy_from_slice(&l);
        }
        _ => unreachable!("answer shape fixed by the request kind"),
    }
}

impl ProbabilisticRelation for ShardedRelation {
    fn n_tuples(&self) -> usize {
        self.shards.iter().map(|s| s.n_tuples()).sum()
    }

    fn tuple_scores(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_tuples());
        for s in &self.shards {
            out.extend(s.tuple_scores());
        }
        out
    }

    fn tuple_marginals(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_tuples());
        for s in &self.shards {
            out.extend(s.tuple_marginals());
        }
        out
    }

    fn correlation_class(&self) -> CorrelationClass {
        fn severity(c: CorrelationClass) -> u8 {
            match c {
                CorrelationClass::Independent => 0,
                CorrelationClass::XTuple => 1,
                CorrelationClass::Tree => 2,
                CorrelationClass::Graphical => 3,
            }
        }
        // Shards are mutually independent, so the union's class is the
        // worst shard's: all-independent unions stay independent, x-tuple
        // shards form one big x-tuple relation, and so on.
        self.shards
            .iter()
            .map(|s| s.correlation_class())
            .max_by_key(|&c| severity(c))
            .unwrap_or(CorrelationClass::Independent)
    }

    fn prf_values(
        &self,
        omega: &(dyn WeightFunction + Sync),
        _threads: Option<usize>,
    ) -> Vec<Complex> {
        self.prf_values_merged(omega, None).0
    }

    fn prf_values_with_stats(
        &self,
        omega: &(dyn WeightFunction + Sync),
        _threads: Option<usize>,
    ) -> (Vec<Complex>, Option<GfStats>) {
        self.prf_values_merged(omega, None)
    }

    fn prf_values_prepared(
        &self,
        omega: &(dyn WeightFunction + Sync),
        _threads: Option<usize>,
        prep: &PreparedState,
    ) -> (Vec<Complex>, Option<GfStats>) {
        match prep.sharded_states() {
            Some(states) if states.len() == self.shards.len() => {
                self.prf_values_merged(omega, Some(states))
            }
            _ => self.prf_values_merged(omega, None),
        }
    }

    fn prfe_values(&self, alpha: Complex) -> Vec<Complex> {
        let prefixes = self.prefixes(None, &[alpha], false);
        self.scatter_map(Complex::ZERO, move |shard, k| {
            let point = prefixes[k].points[0];
            shard
                .prfe_values(alpha)
                .into_iter()
                .map(|v| Scaled::new(v).mul(&point).to_plain())
                .collect()
        })
    }

    fn prfe_values_scaled(&self, alpha: Complex) -> Vec<Scaled<Complex>> {
        let prefixes = self.prefixes(None, &[alpha], false);
        self.scatter_map(Scaled::zero(), move |shard, k| {
            let point = prefixes[k].points[0];
            shard
                .prfe_values_scaled(alpha)
                .into_iter()
                .map(|v| v.mul(&point))
                .collect()
        })
    }

    fn prfe_log_keys(&self, alpha: f64) -> Vec<f64> {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "log-domain PRFe requires α ∈ [0, 1], got {alpha}"
        );
        let prefixes = self.prefixes(None, &[Complex::real(alpha)], false);
        self.scatter_map(f64::NEG_INFINITY, move |shard, k| {
            let ln_prefix = prefixes[k].points[0].magnitude_key() * std::f64::consts::LN_2;
            shard
                .prfe_log_keys(alpha)
                .into_iter()
                .map(|v| v + ln_prefix)
                .collect()
        })
    }

    fn expected_ranks(&self) -> Option<Vec<f64>> {
        // Every shard must have an exact algorithm; the affine cross-shard
        // adjustment (module docs) is exact for any mix of backends.
        let prefixes = self.prefixes(None, &[], true);
        let n = self.n_tuples();
        let jobs: Vec<_> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.n_tuples() > 0)
            .map(|(k, shard)| {
                let shard = Arc::clone(shard);
                let c_pre = prefixes[k].c_pre;
                let c_other = prefixes[k].c_other;
                let offset = prefixes[k].offset;
                move || {
                    let er = shard.expected_ranks()?;
                    let adjusted: Vec<f64> = er
                        .into_iter()
                        .zip(shard.tuple_marginals())
                        .map(|(v, p)| v + p * c_pre + (1.0 - p) * c_other)
                        .collect();
                    Some((offset, adjusted))
                }
            })
            .collect();
        let mut out = vec![0.0; n];
        for res in self.pool.run(jobs) {
            let (offset, vals) = res?;
            out[offset..offset + vals.len()].copy_from_slice(&vals);
        }
        Some(out)
    }

    fn generation(&self) -> u64 {
        let mut tracker = self.generations.lock().expect("generation tracker");
        let current: Vec<u64> = self.shards.iter().map(|s| s.generation()).collect();
        if current != tracker.last_seen {
            tracker.last_seen = current;
            tracker.counter += 1;
        }
        tracker.counter
    }

    fn run_shared_walk(&self, spec: &SharedWalkSpec) -> Option<SharedWalkOut> {
        self.merged_walk(spec, None)
    }

    fn prepare(&self) -> PreparedState {
        // Incremental: rebuild only the shards whose generation moved
        // since their cached state was built (for immutable shards, never),
        // so a re-prepare after one live shard's mutation is `O(changed
        // shard)`, not `O(n)`. The generation is read *before* `prepare()`
        // (the same never-too-new invariant `PreparedRelation` keeps), so a
        // mutation racing the rebuild at worst causes one extra rebuild.
        let mut tracker = self.generations.lock().expect("generation tracker");
        let states: Vec<Arc<PreparedState>> = self
            .shards
            .iter()
            .zip(tracker.prepared.iter_mut())
            .map(|(shard, slot)| {
                let generation = shard.generation();
                match slot {
                    Some((g, state)) if *g == generation => Arc::clone(state),
                    _ => {
                        let state = Arc::new(shard.prepare());
                        *slot = Some((generation, Arc::clone(&state)));
                        state
                    }
                }
            })
            .collect();
        PreparedState::sharded(states)
    }

    fn run_shared_walk_prepared(
        &self,
        spec: &SharedWalkSpec,
        prep: &PreparedState,
    ) -> Option<SharedWalkOut> {
        match prep.sharded_states() {
            Some(states) if states.len() == self.shards.len() => {
                self.merged_walk(spec, Some(states))
            }
            _ => self.merged_walk(spec, None),
        }
    }

    fn presence_gf_coeffs(&self, cap: usize) -> Option<Vec<f64>> {
        let factors = self
            .shards
            .iter()
            .map(|s| s.presence_gf_coeffs(cap).map(Poly::from_coeffs))
            .collect::<Option<Vec<_>>>()?;
        Some(coeff_tournament(factors, cap.max(1)).coeffs().to_vec())
    }

    fn presence_gf_point(&self, alpha: Complex) -> Option<Scaled<Complex>> {
        let mut acc = Scaled::<Complex>::one();
        for s in &self.shards {
            acc = acc.mul(&s.presence_gf_point(alpha)?);
        }
        Some(acc)
    }
}
