//! DFT-based approximation of PRFω by mixtures of PRFe terms (Section 5.1).
//!
//! (Formerly `prf_approx::dft`; it moved here so the unified
//! [`crate::query`] engine can offer `Algorithm::DftApprox` without a
//! dependency cycle. `prf-approx` re-exports everything under its old
//! paths.)
//!
//! A weight function `ω(i)` that vanishes beyond rank `N` is approximated by
//! a linear combination of `L` complex exponentials,
//! `ω(i) ≈ Σ_l u_l·α_l^i`, which reduces one PRFω evaluation to `L`
//! independent PRFe evaluations — `O(n·L + n log n)` instead of `O(n·h)` (or
//! `O(n²·h)` on trees), the speed-ups of Figure 11(ii)/(iii).
//!
//! The base approximation is an `L`-coefficient truncated DFT; three
//! refinements fix its failure modes (Figure 4):
//!
//! 1. **DF — damping factor.** The DFT is periodic with period `M`, so raw
//!    exponentials assign large weights to ranks near multiples of `M`.
//!    Scaling every base by `η = (ε/B)^{1/M}` kills the periodic images
//!    (`ω̃(i) ≤ ε` beyond the domain).
//! 2. **IS — initial scaling.** Damping alone biases the approximation by
//!    `η^i`; performing the DFT on the pre-scaled sequence `η^{-i}·ω(i)`
//!    makes the damped reconstruction unbiased.
//! 3. **ES — extend and shift.** The DFT ringings at the discontinuity
//!    `i = 0` hurt exactly the top ranks that matter most; extending `ω`
//!    continuously to `[-bN, 0)` and shifting right moves the boundary away
//!    from the region of interest.

use crate::topk::Ranking;
use prf_numeric::fft::dft;
use prf_numeric::{Complex, GfValue, Scaled};
use prf_pdb::{AndXorTree, IndependentDb};

/// Which refinements of the base DFT approximation to apply.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DftApproxConfig {
    /// Number of exponential terms `L` (conjugate pairs count as two).
    pub terms: usize,
    /// Domain multiplier `a`: the DFT runs on `~a·N` points. The paper's
    /// running example uses `a = 2`; larger values soften the damping ramp
    /// (`η^{-N} = (B/ε)^{1/a}`) at the cost of a larger transform.
    pub domain_factor: usize,
    /// Shift fraction `b` for the ES step (shift = `⌈b·N⌉`).
    pub shift_fraction: f64,
    /// Damping target `ε`: beyond the domain, `|ω̃| ≤ ε`.
    pub eps: f64,
    /// Apply the damping factor (DF).
    pub damping: bool,
    /// Apply initial scaling (IS; only meaningful with DF).
    pub initial_scaling: bool,
    /// Apply extend-and-shift (ES).
    pub extend_shift: bool,
    /// Re-fit the mixture coefficients by ridge-regularised least squares
    /// on the DFT-selected frequencies (an implementation refinement over
    /// the paper: frequencies are chosen exactly as in DFT+DF+IS+ES, but
    /// the `u_l` then minimise `Σᵢ (ω̃(i) − ω(i))²` over the whole domain,
    /// removing the Gibbs bias at small ranks).
    pub ls_refit: bool,
}

impl DftApproxConfig {
    /// The paper's full pipeline (DFT+DF+IS+ES) with its running-example
    /// knobs (`a = 2`, `b = 0.1`, `ε = 1e-5`).
    pub fn full(terms: usize) -> Self {
        DftApproxConfig {
            terms,
            domain_factor: 2,
            shift_fraction: 0.1,
            eps: 1e-5,
            damping: true,
            initial_scaling: true,
            extend_shift: true,
            ls_refit: false,
        }
    }

    /// Vanilla truncated DFT (the ablation baseline of Figure 4).
    pub fn dft_only(terms: usize) -> Self {
        DftApproxConfig {
            damping: false,
            initial_scaling: false,
            extend_shift: false,
            ..Self::full(terms)
        }
    }

    /// DFT + damping factor.
    pub fn dft_df(terms: usize) -> Self {
        DftApproxConfig {
            damping: true,
            initial_scaling: false,
            extend_shift: false,
            ..Self::full(terms)
        }
    }

    /// DFT + damping + initial scaling.
    pub fn dft_df_is(terms: usize) -> Self {
        DftApproxConfig {
            damping: true,
            initial_scaling: true,
            extend_shift: false,
            ..Self::full(terms)
        }
    }

    /// The recommended production configuration: the full pipeline with a
    /// gentler damping ramp (`a = 8`, `ε = 1e-4`) and least-squares
    /// coefficient refit — near-exact on the support at `L ≈ 40` for the
    /// step function.
    pub fn refined(terms: usize) -> Self {
        DftApproxConfig {
            domain_factor: 8,
            eps: 1e-4,
            ls_refit: true,
            ..Self::full(terms)
        }
    }
}

/// Ridge strength for the least-squares refit (relative to the domain
/// length); keeps the nearly-collinear exponential basis well conditioned.
const LS_RIDGE: f64 = 1e-9;

/// A mixture `ω̃(i) = Σ_l u_l·α_l^i` of complex exponentials.
#[derive(Clone, Debug)]
pub struct ExpMixture {
    /// `(u_l, α_l)` pairs.
    pub terms: Vec<(Complex, Complex)>,
}

/// Approximates the weight sequence `omega(i)`, `i ∈ 0..support`, assumed
/// (effectively) zero beyond `support`, by a mixture of `cfg.terms`
/// exponentials.
///
/// Conjugate symmetry of the selected DFT coefficients is preserved, so the
/// mixture is real-valued up to rounding and mixture rankings may use the
/// real part.
///
/// ```
/// use prf_core::mixture::{approximate_weights, DftApproxConfig};
///
/// // Approximate the PT(50) step weight by 20 exponentials.
/// let step = |i: usize| if i < 50 { 1.0 } else { 0.0 };
/// let mix = approximate_weights(&step, 50, &DftApproxConfig::refined(20));
/// // Accurate on the support, small beyond it.
/// assert!((mix.weight_at(10).re - 1.0).abs() < 0.2);
/// assert!(mix.weight_at(200).re.abs() < 0.1);
/// ```
pub fn approximate_weights(
    omega: &dyn Fn(usize) -> f64,
    support: usize,
    cfg: &DftApproxConfig,
) -> ExpMixture {
    assert!(support > 0, "weight support must be positive");
    assert!(cfg.terms > 0, "need at least one term");
    let n = support;
    let shift = if cfg.extend_shift {
        ((cfg.shift_fraction * n as f64).ceil() as usize).max(1)
    } else {
        0
    };
    // Power-of-two domain for the FFT; at least a·N + shift.
    let m = (cfg.domain_factor * n + shift).next_power_of_two();

    // Damping factor η: B·η^{a·N} ≤ ε.
    let mut bmax = 0.0f64;
    for i in 0..n {
        bmax = bmax.max(omega(i).abs());
    }
    let eta = if cfg.damping && bmax > 0.0 {
        (cfg.eps / bmax)
            .powf(1.0 / (cfg.domain_factor * n) as f64)
            .min(1.0)
    } else {
        1.0
    };

    // The (extended, shifted, optionally pre-scaled) sequence.
    let extension = omega(0); // continuous extension to the left of 0
    let mut seq = vec![Complex::ZERO; m];
    let inv_eta = 1.0 / eta;
    let mut scale = 1.0f64; // η^{-i}, built incrementally
    for (i, slot) in seq.iter_mut().enumerate() {
        let j = i as i64 - shift as i64;
        let w = if j < 0 {
            extension
        } else if (j as usize) < n {
            omega(j as usize)
        } else {
            0.0
        };
        let v = if cfg.initial_scaling { w * scale } else { w };
        *slot = Complex::real(v);
        scale *= inv_eta;
    }

    let psi = dft(&seq);

    // Select the L largest coefficients, pulling in conjugate partners
    // (indices k and M−k) together to keep the mixture real.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| psi[b].abs().partial_cmp(&psi[a].abs()).expect("finite"));
    let mut selected = vec![false; m];
    let mut count = 0usize;
    for &k in &order {
        if count >= cfg.terms {
            break;
        }
        if selected[k] {
            continue;
        }
        // Always take the conjugate partner as well (even if that runs one
        // term over budget): an unpaired frequency would make the mixture
        // genuinely complex-valued instead of real up to rounding.
        let partner = (m - k) % m;
        selected[k] = true;
        count += 1;
        if partner != k && !selected[partner] {
            selected[partner] = true;
            count += 1;
        }
    }

    let mut terms = Vec::with_capacity(count);
    for (k, &sel) in selected.iter().enumerate() {
        if !sel {
            continue;
        }
        let alpha = Complex::from_polar(eta, 2.0 * std::f64::consts::PI * k as f64 / m as f64);
        // u = ψ(k)/M · α^shift (the leftward shift of the reconstruction).
        let u = psi[k] / m as f64 * alpha.powi(shift as i64);
        terms.push((u, alpha));
    }

    if cfg.ls_refit {
        refit_least_squares(&mut terms, omega, n, m);
    }
    ExpMixture { terms }
}

/// Re-fits the coefficients `u_l` by ridge-regularised least squares over
/// `i ∈ [0, domain)`: minimise `Σᵢ |Σ_l u_l·α_l^i − ω(i)|²`.
///
/// The Gram matrix entries are geometric sums
/// `G_{lm} = Σᵢ (ᾱ_l·α_m)^i = (1 − q^D)/(1 − q)` — `O(L²)` to assemble —
/// and the right-hand side needs one `O(N·L)` pass over the true weights.
fn refit_least_squares(
    terms: &mut [(Complex, Complex)],
    omega: &dyn Fn(usize) -> f64,
    support: usize,
    domain: usize,
) {
    let l = terms.len();
    if l == 0 {
        return;
    }
    let d = domain;
    let mut gram = vec![vec![Complex::ZERO; l]; l];
    for (i, &(_, ai)) in terms.iter().enumerate() {
        for (j, &(_, aj)) in terms.iter().enumerate() {
            let q = ai.conj() * aj;
            gram[i][j] = if (q - Complex::ONE).abs() < 1e-14 {
                Complex::real(d as f64)
            } else {
                (Complex::ONE - q.powi(d as i64)) / (Complex::ONE - q)
            };
        }
        gram[i][i] += Complex::real(LS_RIDGE * d as f64);
    }
    let mut rhs = vec![Complex::ZERO; l];
    for (i, &(_, ai)) in terms.iter().enumerate() {
        // Σ_{j<support} ω(j)·conj(α_i)^j by Horner-style accumulation.
        let q = ai.conj();
        let mut pw = Complex::ONE;
        let mut acc = Complex::ZERO;
        for jj in 0..support.min(d) {
            let w = omega(jj);
            if w != 0.0 {
                acc += pw * w;
            }
            pw *= q;
        }
        rhs[i] = acc;
    }
    if let Some(us) = prf_numeric::linalg::solve_complex(gram, rhs) {
        for (t, u) in terms.iter_mut().zip(us) {
            t.0 = u;
        }
    }
    // On a singular system the DFT coefficients are kept as-is.
}

impl ExpMixture {
    /// Number of exponential terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when the mixture has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The reconstructed weight `ω̃(i) = Σ_l u_l·α_l^i` at (0-based) index
    /// `i`.
    pub fn weight_at(&self, i: usize) -> Complex {
        self.terms.iter().map(|&(u, a)| u * a.powi(i as i64)).sum()
    }

    /// Root-mean-square reconstruction error against the true weights on
    /// `0..upto`.
    pub fn rms_error(&self, omega: &dyn Fn(usize) -> f64, upto: usize) -> f64 {
        let mut acc = 0.0;
        for i in 0..upto {
            let d = self.weight_at(i).re - omega(i);
            acc += d * d;
        }
        (acc / upto as f64).sqrt()
    }

    /// Mixture Υ values over an independent relation, in scaled arithmetic:
    /// `Υ(t) = Σ_l u_l·Υ_{PRFe(α_l)}(t)` — `O(n·L)` after one sort.
    pub fn upsilons_independent(&self, db: &IndependentDb) -> Vec<Scaled<Complex>> {
        let n = db.len();
        let mut acc = vec![Scaled::<Complex>::zero(); n];
        for &(u, alpha) in &self.terms {
            let us = Scaled::new(u);
            let vals = crate::independent::prfe_rank_scaled(db, alpha);
            for (a, v) in acc.iter_mut().zip(vals) {
                *a = a.add(&v.mul(&us));
            }
        }
        acc
    }

    /// Mixture Υ values over an and/xor tree via the incremental PRFe
    /// algorithm — `O(L·Σᵢ dᵢ + n log n)`.
    pub fn upsilons_tree(&self, tree: &AndXorTree) -> Vec<Scaled<Complex>> {
        let n = tree.n_tuples();
        let mut acc = vec![Scaled::<Complex>::zero(); n];
        for &(u, alpha) in &self.terms {
            let us = Scaled::new(u);
            let vals = crate::tree::prfe_rank_tree_scaled(tree, alpha);
            for (a, v) in acc.iter_mut().zip(vals) {
                *a = a.add(&v.mul(&us));
            }
        }
        acc
    }

    /// The mixture ranking of an independent relation (by real part — the
    /// imaginary parts of a conjugate-symmetric mixture cancel).
    pub fn ranking_independent(&self, db: &IndependentDb) -> Ranking {
        let keys: Vec<_> = self
            .upsilons_independent(db)
            .iter()
            .map(|v| v.real_part_key())
            .collect();
        Ranking::from_keys_by(&keys, |k| k.display())
    }

    /// The mixture ranking on an and/xor tree.
    pub fn ranking_tree(&self, tree: &AndXorTree) -> Ranking {
        let keys: Vec<_> = self
            .upsilons_tree(tree)
            .iter()
            .map(|v| v.real_part_key())
            .collect();
        Ranking::from_keys_by(&keys, |k| k.display())
    }

    // ------------------------------------------------------------------
    // Fast paths (plain complex, fused across terms)
    // ------------------------------------------------------------------
    //
    // All mixture bases share the magnitude |α_l| = η, so every term's Υ
    // decays at the same rate down the score order; the plain-f64 versions
    // below underflow only deep in the tail, where all values collapse to
    // (equal-keyed, id-tie-broken) zeros. Top-k answers for any realistic k
    // are identical to the scaled versions — verified by test — at a
    // fraction of the cost: one sort and `O(n·L)` complex flops.

    /// Plain-complex mixture Υ over an independent relation: single pass,
    /// all terms fused. See the notes above on tail underflow.
    pub fn upsilons_independent_fast(&self, db: &IndependentDb) -> Vec<Complex> {
        let n = db.len();
        let l = self.terms.len();
        let mut out = vec![Complex::ZERO; n];
        let mut g = vec![Complex::ONE; l];
        for tid in db.ids_by_score_desc() {
            let t = db.tuple(tid);
            let mut acc = Complex::ZERO;
            for (gl, &(u, alpha)) in g.iter().zip(&self.terms) {
                acc += u * *gl * alpha;
            }
            out[tid.index()] = acc * t.prob;
            for (gl, &(_, alpha)) in g.iter_mut().zip(&self.terms) {
                *gl *= Complex::real(1.0 - t.prob) + alpha * t.prob;
            }
        }
        out
    }

    /// The fast mixture ranking of an independent relation.
    pub fn ranking_independent_fast(&self, db: &IndependentDb) -> Ranking {
        Ranking::from_values(
            &self.upsilons_independent_fast(db),
            crate::topk::ValueOrder::RealPart,
        )
    }

    /// Plain-complex mixture Υ over an and/xor tree: the score order *and*
    /// the incremental engine's combine plan are computed once; each term
    /// runs one incremental (Algorithm 3) pass over a fresh evaluator.
    pub fn upsilons_tree_fast(&self, tree: &AndXorTree) -> Vec<Complex> {
        use crate::incremental::EvalPlan;
        use prf_numeric::YLin;
        let n = tree.n_tuples();
        let (order, _) = crate::tree::score_order(tree);
        let plan = EvalPlan::new(tree);
        let mut acc = vec![Complex::ZERO; n];
        for &(u, alpha) in &self.terms {
            let mut inc = plan.evaluator(|_| YLin::<Complex>::one());
            for (i, &t) in order.iter().enumerate() {
                if i > 0 {
                    inc.set_leaf(order[i - 1], YLin::pure(alpha));
                }
                inc.set_leaf(t, YLin::y());
                // Υ = B(α)·α.
                let ups = inc.root().b * alpha;
                acc[t.index()] += u * ups;
            }
        }
        acc
    }

    /// The fast mixture ranking on an and/xor tree.
    pub fn ranking_tree_fast(&self, tree: &AndXorTree) -> Ranking {
        Ranking::from_values(
            &self.upsilons_tree_fast(tree),
            crate::topk::ValueOrder::RealPart,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(h: usize) -> impl Fn(usize) -> f64 {
        move |i| if i < h { 1.0 } else { 0.0 }
    }

    #[test]
    fn refined_pipeline_approximates_step_function() {
        let h = 100;
        let mix = approximate_weights(&step(h), h, &DftApproxConfig::refined(40));
        // Good inside the support (the residual is the unavoidable Gibbs
        // band at the edge) and small beyond it.
        let rms = mix.rms_error(&step(h), 2 * h);
        assert!(rms < 0.15, "rms {rms}");
        for i in (0..h - 10).step_by(7) {
            assert!(
                (mix.weight_at(i).re - 1.0).abs() < 0.12,
                "inside support at {i}: {}",
                mix.weight_at(i).re
            );
        }
        for i in (2 * h..6 * h).step_by(17) {
            assert!(
                mix.weight_at(i).re.abs() < 0.07,
                "beyond support at {i}: {}",
                mix.weight_at(i).re
            );
        }
        // Real-valued up to rounding (conjugate symmetry).
        for i in (0..2 * h).step_by(13) {
            assert!(mix.weight_at(i).im.abs() < 1e-6);
        }
    }

    #[test]
    fn each_refinement_fixes_its_failure_mode() {
        // Figure 4, stage by stage, at the paper's exact scale (N = 1000,
        // L = 20, a = 2). Each refinement targets one specific defect of
        // the raw truncated DFT:
        let h = 1000;
        let l = 20;
        let mean_abs = |mix: &ExpMixture, range: std::ops::Range<usize>, target: f64| {
            let mut acc = 0.0;
            let n = range.len();
            for i in range {
                acc += (mix.weight_at(i).re - target).abs();
            }
            acc / n as f64
        };

        // (1) DF kills the periodic images. With a = 2 the raw DFT has
        // period M = 2048, so [M, M + h) replays the step.
        let raw = approximate_weights(&step(h), h, &DftApproxConfig::dft_only(l));
        let df = approximate_weights(&step(h), h, &DftApproxConfig::dft_df(l));
        let m = 2048;
        let raw_image = mean_abs(&raw, m..m + h, 0.0);
        let df_image = mean_abs(&df, m..m + h, 0.0);
        assert!(
            raw_image > 0.5 && df_image < 0.05,
            "periodic image: raw {raw_image} vs damped {df_image}"
        );

        // (2) IS removes the η^i bias inside the support: DF alone decays
        // towards η^h instead of staying at 1. Measured in the gentle
        // damping regime (a = 8, the production setting) where the scaled
        // sequence's spectrum is still concentrated enough for L = 20
        // frequencies to carry it; at a = 2 the η^{-i} ramp spreads the
        // spectrum and *every* literal stage is poor — the reason the
        // refined configuration exists (see EXPERIMENTS.md).
        let gentle = |is: bool, es: bool| DftApproxConfig {
            domain_factor: 8,
            eps: 1e-4,
            initial_scaling: is,
            extend_shift: es,
            ..DftApproxConfig::full(l)
        };
        let gentle_df = approximate_weights(&step(h), h, &gentle(false, false));
        let gentle_is = approximate_weights(&step(h), h, &gentle(true, false));
        let df_bias = mean_abs(&gentle_df, 0..h, 1.0);
        let is_bias = mean_abs(&gentle_is, 0..h, 1.0);
        assert!(
            is_bias < 0.6 * df_bias,
            "support bias: DF {df_bias} vs +IS {is_bias}"
        );

        // (3) ES repairs the boundary at rank 0.
        let gentle_es = approximate_weights(&step(h), h, &gentle(true, true));
        let near0_without = mean_abs(&gentle_is, 0..h / 10, 1.0);
        let near0_with = mean_abs(&gentle_es, 0..h / 10, 1.0);
        assert!(
            near0_with < 0.5 * near0_without,
            "near-zero error: without ES {near0_without} vs with {near0_with}"
        );

        // (4) The refined (LS-refit) configuration dominates overall.
        let refined = approximate_weights(&step(h), h, &DftApproxConfig::refined(l));
        let refined_rms = refined.rms_error(&step(h), 5 * h);
        let raw_rms = raw.rms_error(&step(h), 5 * h);
        assert!(refined_rms < 0.15, "refined rms {refined_rms}");
        assert!(
            raw_rms > 1.5 * refined_rms,
            "raw {raw_rms} vs refined {refined_rms}"
        );
    }

    #[test]
    fn smooth_functions_need_fewer_terms() {
        let n = 500usize;
        let smooth = move |i: usize| {
            // A gentle raised-cosine roll-off.
            if i < n {
                0.5 * (1.0 + (std::f64::consts::PI * i as f64 / n as f64).cos())
            } else {
                0.0
            }
        };
        let linear = move |i: usize| {
            if i < n {
                (n - i) as f64 / n as f64
            } else {
                0.0
            }
        };
        for f in [&smooth as &dyn Fn(usize) -> f64, &linear] {
            let mix = approximate_weights(f, n, &DftApproxConfig::refined(20));
            let rms = mix.rms_error(f, 2 * n);
            assert!(rms < 0.05, "rms {rms}");
        }
    }

    #[test]
    fn more_terms_reduce_error() {
        let h = 300;
        let errs: Vec<f64> = [10usize, 20, 40, 80]
            .iter()
            .map(|&l| {
                approximate_weights(&step(h), h, &DftApproxConfig::refined(l))
                    .rms_error(&step(h), 2 * h)
            })
            .collect();
        assert!(
            errs[0] > errs[1] && errs[1] > errs[2] && errs[2] > errs[3],
            "{errs:?}"
        );
    }

    #[test]
    fn mixture_ranking_approximates_exact_pt() {
        use prf_datasets::syn_ind;
        use prf_metrics::kendall_topk;
        let db = syn_ind(3000, 17);
        let h = 100;
        let k = 100;
        let exact = prf_baselines_pt_topk(&db, h, k);
        let mix = approximate_weights(&step(h), h, &DftApproxConfig::refined(40));
        let approx = mix.ranking_independent(&db).top_k_u32(k);
        let d = kendall_topk(&exact, &approx, k);
        assert!(d < 0.06, "kendall distance {d}");
    }

    /// Local PT(h) (avoids a circular dev-dependency on prf-baselines).
    fn prf_baselines_pt_topk(db: &IndependentDb, h: usize, k: usize) -> Vec<u32> {
        let ups = crate::independent::prf_rank(db, &crate::weights::StepWeight { h });
        Ranking::from_values(&ups, crate::topk::ValueOrder::RealPart).top_k_u32(k)
    }

    #[test]
    fn fast_paths_agree_with_scaled_on_top_k() {
        use prf_datasets::syn_ind;
        let db = syn_ind(20_000, 23);
        let h = 200;
        let mix = approximate_weights(&step(h), h, &DftApproxConfig::refined(20));
        let k = 500;
        let slow = mix.ranking_independent(&db).top_k_u32(k);
        let fast = mix.ranking_independent_fast(&db).top_k_u32(k);
        assert_eq!(slow, fast, "independent fast path must match");

        let tree = prf_datasets::syn_med_tree(3_000, 23);
        let slow_t = mix.ranking_tree(&tree).top_k_u32(k);
        let fast_t = mix.ranking_tree_fast(&tree).top_k_u32(k);
        assert_eq!(slow_t, fast_t, "tree fast path must match");
    }

    #[test]
    fn tree_mixture_matches_independent_on_independent_data() {
        use prf_datasets::syn_ind;
        let db = syn_ind(400, 3);
        let tree = prf_pdb::AndXorTree::from_independent(&db);
        let h = 50;
        let mix = approximate_weights(&step(h), h, &DftApproxConfig::refined(20));
        let a = mix.ranking_independent(&db);
        let b = mix.ranking_tree(&tree);
        assert_eq!(a.top_k(20), b.top_k(20));
    }
}
