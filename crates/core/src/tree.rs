//! Ranking over probabilistic and/xor trees (Sections 4.2–4.3).
//!
//! For a tuple `t` at sorted position `i`, label leaves of the tree as
//! follows: leaves ranked above `t` (higher score) get the variable `x`, the
//! leaf `t` itself gets `y`, everything else gets the constant `1`. By
//! Theorem 1 the resulting generating function `Fⁱ(x, y) = A(x) + B(x)·y`
//! satisfies `Pr(r(t) = j) = [x^{j−1}] B(x)`.
//!
//! Four evaluation strategies are provided:
//!
//! 1. [`prf_rank_tree`] — symbolic bottom-up expansion with truncated
//!    bivariate polynomials (Algorithm 2): exact, `O(n²)`–`O(n²·d)` per
//!    tuple untruncated, `O(n·h)` per tuple for PRFω(h);
//! 2. [`prf_rank_tree_interp`] — evaluate the tree at the roots of unity and
//!    recover coefficients with one inverse FFT per tuple (Appendix B.2);
//! 3. [`prfe_rank_tree`] — the incremental Algorithm 3: maintain the two
//!    numeric values `F(α, α)` and `F(α, 0)` at every node and update only
//!    the two leaf-to-root paths that change per step, `O(Σᵢ dᵢ + n log n)`
//!    total, with zero-count bookkeeping making the ∧-node divisions safe;
//! 4. [`prfe_rank_tree_recompute`] — the `O(n)`-per-tuple recompute baseline
//!    that Algorithm 3 is measured against.
//!
//! [`expected_ranks_tree`] evaluates the same machinery over dual numbers to
//! produce expected ranks (Cormode et al.) on correlated data — the
//! generalisation Section 3.3 calls for.

#![allow(clippy::needless_range_loop)] // index loops pair several parallel arrays

use prf_numeric::fft::interpolate_from_roots_of_unity;
use prf_numeric::{Complex, Dual, GfField, GfValue, RankPoly, Scaled, YLin};
use prf_pdb::tuple::sort_indices_by_score_desc;
use prf_pdb::{AndXorTree, NodeId, NodeKind, Tuple, TupleId};

use crate::weights::WeightFunction;

/// Tuple processing order (score descending, id ascending) and its inverse
/// permutation, shared by all tree algorithms. Public so that callers that
/// evaluate many PRFe instances over one tree (PRFe mixtures) can sort once.
pub fn score_order(tree: &AndXorTree) -> (Vec<TupleId>, Vec<usize>) {
    let order: Vec<TupleId> = sort_indices_by_score_desc(tree.scores())
        .into_iter()
        .map(|i| TupleId(i as u32))
        .collect();
    let mut pos = vec![0usize; order.len()];
    for (i, t) in order.iter().enumerate() {
        pos[t.index()] = i;
    }
    (order, pos)
}

fn tuple_view(tree: &AndXorTree, marginals: &[f64], t: TupleId) -> Tuple {
    Tuple {
        id: t,
        score: tree.score(t),
        prob: marginals[t.index()],
    }
}

// ---------------------------------------------------------------------
// 1. Symbolic expansion (Algorithm 2)
// ---------------------------------------------------------------------

/// Υ values for every tuple of a correlated relation under an arbitrary PRF
/// weight function, by symbolic expansion of the per-tuple generating
/// function (ANDXOR-PRF-RANK, Algorithm 2).
///
/// Respects [`WeightFunction::truncation`]: PT(h)/PRFω(h)/U-Rank only expand
/// the first `h` coefficients.
pub fn prf_rank_tree(tree: &AndXorTree, omega: &dyn WeightFunction) -> Vec<Complex> {
    let n = tree.n_tuples();
    let mut out = vec![Complex::ZERO; n];
    if n == 0 {
        return out;
    }
    let cap = omega.truncation().unwrap_or(n).min(n);
    if cap == 0 {
        return out;
    }
    let (order, pos) = score_order(tree);
    let marginals = tree.marginals();
    for (i, &t) in order.iter().enumerate() {
        let gf = tree.generating_function(|u| {
            if u == t {
                RankPoly::y().with_cap(cap)
            } else if pos[u.index()] < i {
                RankPoly::x().with_cap(cap)
            } else {
                RankPoly::one().with_cap(cap)
            }
        });
        let tv = tuple_view(tree, &marginals, t);
        let mut ups = Complex::ZERO;
        for j in 1..=cap {
            let c = gf.rank_probability(j);
            if c != 0.0 {
                ups += omega.weight(&tv, j) * c;
            }
        }
        out[t.index()] = ups;
    }
    out
}

/// The full positional-probability matrix on a tree:
/// `result[t][j−1] = Pr(r(t) = j)`. `O(n³)`-ish — test oracle scale.
pub fn rank_distributions_tree(tree: &AndXorTree) -> Vec<Vec<f64>> {
    let n = tree.n_tuples();
    let (order, pos) = score_order(tree);
    let mut out = vec![Vec::new(); n];
    for (i, &t) in order.iter().enumerate() {
        let gf = tree.generating_function(|u| {
            if u == t {
                RankPoly::y()
            } else if pos[u.index()] < i {
                RankPoly::x()
            } else {
                RankPoly::one()
            }
        });
        out[t.index()] = gf.rank_distribution(n);
    }
    out
}

// ---------------------------------------------------------------------
// 2. Roots-of-unity interpolation (Appendix B.2)
// ---------------------------------------------------------------------

/// Like [`prf_rank_tree`], but expands each `B(x)` by evaluating the tree at
/// the `m`-th roots of unity (`m` = next power of two `> n`) and applying one
/// inverse FFT — `O(n)` per evaluation point, `O(n²)` per tuple regardless of
/// tree shape (Appendix B.2, "Algorithm 2").
pub fn prf_rank_tree_interp(tree: &AndXorTree, omega: &dyn WeightFunction) -> Vec<Complex> {
    let n = tree.n_tuples();
    let mut out = vec![Complex::ZERO; n];
    if n == 0 {
        return out;
    }
    let (order, pos) = score_order(tree);
    let marginals = tree.marginals();
    let m = (n + 1).next_power_of_two();
    // Precompute the m-th roots of unity ω^k (forward orientation e^{+2πi/m},
    // matching interpolate_from_roots_of_unity).
    let roots: Vec<Complex> = (0..m)
        .map(|k| Complex::cis(2.0 * std::f64::consts::PI * k as f64 / m as f64))
        .collect();
    let h = omega.truncation().unwrap_or(n).min(n);
    let mut bvals = vec![Complex::ZERO; m];
    for (i, &t) in order.iter().enumerate() {
        for (k, &x) in roots.iter().enumerate() {
            let v: YLin<Complex> = tree.generating_function(|u| {
                if u == t {
                    YLin::y()
                } else if pos[u.index()] < i {
                    YLin::pure(x)
                } else {
                    YLin::<Complex>::one()
                }
            });
            bvals[k] = v.b;
        }
        let coeffs = interpolate_from_roots_of_unity(&bvals);
        let tv = tuple_view(tree, &marginals, t);
        let mut ups = Complex::ZERO;
        for (j0, &c) in coeffs.iter().enumerate().take(h) {
            ups += omega.weight(&tv, j0 + 1) * c;
        }
        out[t.index()] = ups;
    }
    out
}

// ---------------------------------------------------------------------
// 3. Incremental PRFe (Algorithm 3)
// ---------------------------------------------------------------------

/// Per-node state of the incremental evaluator. Component 0 tracks
/// `F(α, y=α)`, component 1 tracks `F(α, y=0)`.
enum NState<T> {
    /// Leaf or ∨ node: the materialised value per component.
    Value([T; 2]),
    /// ∧ node: product of the *non-zero* child factors plus a count of
    /// exactly-zero factors per component. The materialised value is zero
    /// whenever `zeros > 0` — this is what makes the divide-out-stale-factor
    /// update safe in the presence of exact zeros (`p = 1` leaves, `α = 0`).
    And { prod: [T; 2], zeros: [u32; 2] },
}

/// Incremental generating-function evaluator over an and/xor tree
/// (the data structure behind ANDXOR-PRFe-RANK, Algorithm 3).
///
/// Maintains, for every node, the pair `(F(α, α), F(α, 0))` under the
/// current leaf labelling; [`IncrementalGf::set_leaf`] relabels one leaf and
/// updates the `O(depth)` ancestors.
pub struct IncrementalGf<'a, T: GfField> {
    tree: &'a AndXorTree,
    state: Vec<NState<T>>,
}

impl<'a, T: GfField> IncrementalGf<'a, T> {
    /// Builds the evaluator with every leaf assigned `init` (component
    /// pair).
    pub fn new(tree: &'a AndXorTree, init: [T; 2]) -> Self {
        let nn = tree.node_count();
        let mut state: Vec<NState<T>> = Vec::with_capacity(nn);
        for _ in 0..nn {
            state.push(NState::Value([T::zero(), T::zero()]));
        }
        // Bottom-up initialisation (children have larger ids than parents).
        for idx in (0..nn).rev() {
            let node = NodeId(idx as u32);
            let s = match tree.kind(node) {
                NodeKind::Leaf(_) => NState::Value(init.clone()),
                NodeKind::Xor => {
                    let mut vals = [
                        T::from_scalar(tree.xor_slack(node)),
                        T::from_scalar(tree.xor_slack(node)),
                    ];
                    for &c in tree.children(node) {
                        let p = tree.edge_prob(c);
                        let cv = Self::materialize_in(&state, c);
                        vals[0] = vals[0].add(&cv[0].scale(p));
                        vals[1] = vals[1].add(&cv[1].scale(p));
                    }
                    NState::Value(vals)
                }
                NodeKind::And => {
                    let mut prod = [T::one(), T::one()];
                    let mut zeros = [0u32; 2];
                    for &c in tree.children(node) {
                        let cv = Self::materialize_in(&state, c);
                        for comp in 0..2 {
                            if cv[comp].is_zero() {
                                zeros[comp] += 1;
                            } else {
                                prod[comp] = prod[comp].mul(&cv[comp]);
                            }
                        }
                    }
                    NState::And { prod, zeros }
                }
            };
            state[idx] = s;
        }
        IncrementalGf { tree, state }
    }

    fn materialize_in(state: &[NState<T>], node: NodeId) -> [T; 2] {
        match &state[node.index()] {
            NState::Value(v) => v.clone(),
            NState::And { prod, zeros } => [
                if zeros[0] > 0 {
                    T::zero()
                } else {
                    prod[0].clone()
                },
                if zeros[1] > 0 {
                    T::zero()
                } else {
                    prod[1].clone()
                },
            ],
        }
    }

    /// Current materialised value of a node (component pair).
    pub fn value(&self, node: NodeId) -> [T; 2] {
        Self::materialize_in(&self.state, node)
    }

    /// Current root value of the given component (0: `y = α`, 1: `y = 0`).
    pub fn root(&self, comp: usize) -> T {
        self.value(self.tree.root())[comp].clone()
    }

    /// Relabels the leaf of tuple `t` to the value pair `new`, updating all
    /// ancestors in `O(depth(t))` ring operations.
    pub fn set_leaf(&mut self, t: TupleId, new: [T; 2]) {
        let leaf = self.tree.leaf_of(t);
        let old = Self::materialize_in(&self.state, leaf);
        self.state[leaf.index()] = NState::Value(new.clone());
        let mut child = leaf;
        let mut old_vals = old;
        let mut new_vals = new;
        while let Some(parent) = self.tree.parent(child) {
            let parent_old = Self::materialize_in(&self.state, parent);
            match &mut self.state[parent.index()] {
                NState::Value(vals) => {
                    // ∨ node: val += p · (new − old).
                    let p = self.tree.edge_prob(child);
                    for comp in 0..2 {
                        let delta = new_vals[comp].add(&old_vals[comp].scale(-1.0));
                        vals[comp] = vals[comp].add(&delta.scale(p));
                    }
                }
                NState::And { prod, zeros } => {
                    for comp in 0..2 {
                        if old_vals[comp].is_zero() {
                            zeros[comp] -= 1;
                        } else {
                            prod[comp] = prod[comp].div(&old_vals[comp]);
                        }
                        if new_vals[comp].is_zero() {
                            zeros[comp] += 1;
                        } else {
                            prod[comp] = prod[comp].mul(&new_vals[comp]);
                        }
                    }
                }
            }
            let parent_new = Self::materialize_in(&self.state, parent);
            child = parent;
            old_vals = parent_old;
            new_vals = parent_new;
        }
    }
}

/// PRFe(α) over an and/xor tree — the incremental ANDXOR-PRFe-RANK
/// (Algorithm 3), generic over the scalar field.
///
/// Total cost `O(Σᵢ dᵢ + n log n)` where `dᵢ` is the depth of tuple `i`.
/// Use [`Complex`] / `f64` directly at small scale, or
/// [`Scaled`] scalars (see [`prfe_rank_tree_scaled`]) when products may
/// underflow.
pub fn prfe_rank_tree<T: GfField>(tree: &AndXorTree, alpha: T) -> Vec<T> {
    let n = tree.n_tuples();
    let mut out = vec![T::zero(); n];
    if n == 0 {
        return out;
    }
    let (order, _) = score_order(tree);
    let mut inc = IncrementalGf::new(tree, [T::one(), T::one()]);
    for (i, &t) in order.iter().enumerate() {
        if i > 0 {
            // Previous tuple's label moves from y to x.
            inc.set_leaf(order[i - 1], [alpha.clone(), alpha.clone()]);
        }
        // Current tuple's label moves from 1 to y: (α, 0).
        inc.set_leaf(t, [alpha.clone(), T::zero()]);
        // Υ(t) = F(α, α) − F(α, 0) = B(α)·α.
        out[t.index()] = inc.root(0).add(&inc.root(1).scale(-1.0));
    }
    out
}

/// [`prfe_rank_tree`] in scaled-complex arithmetic — underflow-proof at any
/// scale; keys for ranking come from
/// [`Scaled::magnitude_key`](prf_numeric::Scaled::magnitude_key).
pub fn prfe_rank_tree_scaled(tree: &AndXorTree, alpha: Complex) -> Vec<Scaled<Complex>> {
    prfe_rank_tree(tree, Scaled::new(alpha))
}

/// Recompute-from-scratch PRFe on a tree: one full `O(node count)` fold per
/// tuple using [`YLin`] values. `O(n²)` total — the ablation baseline that
/// shows what Algorithm 3's incrementality buys.
pub fn prfe_rank_tree_recompute(tree: &AndXorTree, alpha: Complex) -> Vec<Complex> {
    let n = tree.n_tuples();
    let mut out = vec![Complex::ZERO; n];
    if n == 0 {
        return out;
    }
    let (order, pos) = score_order(tree);
    for (i, &t) in order.iter().enumerate() {
        let v: YLin<Complex> = tree.generating_function(|u| {
            if u == t {
                YLin::y()
            } else if pos[u.index()] < i {
                YLin::pure(alpha)
            } else {
                YLin::<Complex>::one()
            }
        });
        // Υ = B(α)·α.
        out[t.index()] = v.b * alpha;
    }
    out
}

// ---------------------------------------------------------------------
// 4. Expected ranks on trees (dual numbers)
// ---------------------------------------------------------------------

/// Expected ranks over an and/xor tree, in `O(Σᵢ dᵢ + n log n)`:
/// `E-Rank(t) = er₁(t) + er₂(t)` with
///
/// * `er₁(t) = Σᵢ i·Pr(r(t) = i)` — the derivative at `α = 1` of the PRFe
///   value `Υ_α(t) = Σᵢ Pr(r(t)=i)·αⁱ`, obtained by running Algorithm 3
///   over dual numbers;
/// * `er₂(t) = Σ_{pw: t∉pw} Pr(pw)·|pw|` — the derivative at `x = 1` of
///   `A(x) = F(x, y=0)` under the labelling that marks *every* other leaf
///   `x`, obtained from a second incremental pass.
///
/// Tuples absent from a world are charged that world's size, following
/// Cormode et al. Lower is better; callers typically rank by `−E-Rank`.
pub fn expected_ranks_tree(tree: &AndXorTree) -> Vec<f64> {
    let n = tree.n_tuples();
    if n == 0 {
        return Vec::new();
    }
    let alpha = Dual::variable(1.0);

    // er₁ via Algorithm 3 over duals.
    let er1: Vec<Dual> = prfe_rank_tree(tree, alpha);

    // er₂: all leaves labelled x = 1+ε, target labelled y; A = component 1.
    let mut er2 = vec![0.0f64; n];
    let mut inc = IncrementalGf::new(tree, [alpha, alpha]);
    for t in 0..n {
        if t > 0 {
            inc.set_leaf(TupleId((t - 1) as u32), [alpha, alpha]);
        }
        inc.set_leaf(TupleId(t as u32), [alpha, Dual::ZERO]);
        er2[t] = inc.root(1).d;
    }

    (0..n).map(|t| er1[t].d + er2[t]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::*;
    use prf_pdb::{IndependentDb, TreeBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Figure 1 tree (see prf-pdb tests for the construction).
    fn figure1_tree() -> AndXorTree {
        let mut b = TreeBuilder::new(NodeKind::And);
        let root = b.root();
        let x1 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x1, 0.4, 120.0).unwrap();
        let x2 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x2, 0.7, 130.0).unwrap();
        b.add_leaf(x2, 0.3, 80.0).unwrap();
        let x3 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x3, 0.4, 95.0).unwrap();
        b.add_leaf(x3, 0.6, 110.0).unwrap();
        let x4 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x4, 1.0, 105.0).unwrap();
        b.build().unwrap()
    }

    /// A random and/xor tree with explicit kind tracking, for differential
    /// testing against brute-force world enumeration.
    fn random_tree2(seed: u64, target_leaves: usize, max_depth: usize) -> AndXorTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let root_kind = if rng.gen_bool(0.5) {
            NodeKind::And
        } else {
            NodeKind::Xor
        };
        let mut b = TreeBuilder::new(root_kind);
        // Frontier of (node, kind, depth, remaining xor budget).
        let mut frontier = vec![(b.root(), root_kind, 0usize, 1.0f64)];
        let mut leaves = 0usize;
        while leaves < target_leaves {
            let idx = rng.gen_range(0..frontier.len());
            let (node, kind, depth, budget) = frontier[idx];
            let is_xor = matches!(kind, NodeKind::Xor);
            // Probability for this child's edge.
            let p = if is_xor {
                let p = rng.gen_range(0.0..budget.min(0.6));
                frontier[idx].3 -= p;
                p
            } else {
                1.0
            };
            let make_leaf = depth >= max_depth || rng.gen_bool(0.65);
            if make_leaf {
                let score = rng.gen_range(0.0..100.0);
                b.add_leaf(node, p, score).unwrap();
                leaves += 1;
            } else {
                let child_kind = if rng.gen_bool(0.5) {
                    NodeKind::And
                } else {
                    NodeKind::Xor
                };
                let child = b.add_inner(node, child_kind, p).unwrap();
                frontier.push((child, child_kind, depth + 1, 1.0));
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn symbolic_rank_distributions_match_enumeration() {
        for seed in 0..8u64 {
            let tree = random_tree2(seed, 7, 3);
            let worlds = tree.enumerate_worlds(1 << 18).unwrap();
            let scores = tree.scores();
            let dists = rank_distributions_tree(&tree);
            for t in 0..tree.n_tuples() {
                let brute = worlds.rank_distribution(TupleId(t as u32), tree.n_tuples(), scores);
                for j in 0..tree.n_tuples() {
                    assert!(
                        (dists[t][j] - brute[j]).abs() < 1e-9,
                        "seed {seed} tuple {t} rank {j}: {} vs {}",
                        dists[t][j],
                        brute[j]
                    );
                }
            }
        }
    }

    #[test]
    fn figure1_example_4_rank_probability() {
        let tree = figure1_tree();
        let d = rank_distributions_tree(&tree);
        // Pr(r(t₄)=3) = 0.216 — t₄ is our TupleId(3) (score 95).
        assert!((d[3][2] - 0.216).abs() < 1e-12, "got {}", d[3][2]);
    }

    #[test]
    fn incremental_prfe_matches_recompute() {
        for seed in 0..10u64 {
            let tree = random_tree2(seed, 12, 4);
            for &alpha in &[0.3, 0.9, 1.0] {
                let a = Complex::real(alpha);
                let inc = prfe_rank_tree(&tree, a);
                let rec = prfe_rank_tree_recompute(&tree, a);
                for t in 0..tree.n_tuples() {
                    assert!(
                        inc[t].approx_eq(rec[t], 1e-9),
                        "seed {seed} α={alpha} t{t}: {} vs {}",
                        inc[t],
                        rec[t]
                    );
                }
            }
            // Complex α.
            let a = Complex::new(0.5, 0.4);
            let inc = prfe_rank_tree(&tree, a);
            let rec = prfe_rank_tree_recompute(&tree, a);
            for t in 0..tree.n_tuples() {
                assert!(inc[t].approx_eq(rec[t], 1e-9));
            }
        }
    }

    #[test]
    fn incremental_prfe_matches_symbolic_oracle() {
        let tree = figure1_tree();
        let alpha = 0.6;
        let inc = prfe_rank_tree(&tree, Complex::real(alpha));
        let dists = rank_distributions_tree(&tree);
        for t in 0..tree.n_tuples() {
            let oracle: f64 = dists[t]
                .iter()
                .enumerate()
                .map(|(j0, &p)| p * alpha.powi(j0 as i32 + 1))
                .sum();
            assert!(
                (inc[t].re - oracle).abs() < 1e-10,
                "t{t}: {} vs {oracle}",
                inc[t].re
            );
        }
    }

    #[test]
    fn incremental_handles_certain_tuples_alpha_zero() {
        // p = 1 leaves make factors exactly zero at α = 0 — exercises the
        // zero-count bookkeeping.
        let tree = figure1_tree(); // t6 has p = 1
        let inc = prfe_rank_tree(&tree, Complex::real(0.0));
        let rec = prfe_rank_tree_recompute(&tree, Complex::real(0.0));
        for t in 0..tree.n_tuples() {
            assert!(inc[t].approx_eq(rec[t], 1e-12), "t{t}");
        }
        // At α=0, Υ(t)·1/α → only rank-1 probability survives... with ω=αⁱ
        // every Υ is 0; check exact zeros rather than NaNs.
        for t in 0..tree.n_tuples() {
            assert!(!inc[t].is_nan(), "t{t} must not be NaN");
        }
    }

    #[test]
    fn interp_matches_symbolic() {
        for seed in [3u64, 11, 42] {
            let tree = random_tree2(seed, 9, 3);
            let w = StepWeight { h: 4 };
            let sym = prf_rank_tree(&tree, &w);
            let itp = prf_rank_tree_interp(&tree, &w);
            for t in 0..tree.n_tuples() {
                assert!(
                    sym[t].approx_eq(itp[t], 1e-8),
                    "seed {seed} t{t}: {} vs {}",
                    sym[t],
                    itp[t]
                );
            }
        }
    }

    #[test]
    fn tree_prf_matches_independent_prf_on_independent_data() {
        let db = IndependentDb::from_pairs([
            (10.0, 0.9),
            (9.0, 0.1),
            (8.0, 0.5),
            (7.0, 1.0),
            (6.0, 0.25),
        ])
        .unwrap();
        let tree = AndXorTree::from_independent(&db);
        let weights: Vec<Box<dyn WeightFunction>> = vec![
            Box::new(StepWeight { h: 3 }),
            Box::new(ConstantWeight),
            Box::new(PositionWeight { j: 2 }),
            Box::new(ExponentialWeight::real(0.8)),
        ];
        for w in &weights {
            let via_tree = prf_rank_tree(&tree, w.as_ref());
            let via_ind = crate::independent::prf_rank(&db, w.as_ref());
            for t in 0..db.len() {
                assert!(
                    via_tree[t].approx_eq(via_ind[t], 1e-9),
                    "{} t{t}: {} vs {}",
                    w.name(),
                    via_tree[t],
                    via_ind[t]
                );
            }
        }
    }

    #[test]
    fn scaled_tree_prfe_matches_plain_at_small_scale() {
        let tree = figure1_tree();
        let alpha = Complex::real(0.85);
        let plain = prfe_rank_tree(&tree, alpha);
        let scaled = prfe_rank_tree_scaled(&tree, alpha);
        for t in 0..tree.n_tuples() {
            assert!((scaled[t].to_plain().re - plain[t].re).abs() < 1e-10);
        }
    }

    #[test]
    fn expected_ranks_match_brute_force() {
        for seed in 0..6u64 {
            let tree = random_tree2(seed, 8, 3);
            let worlds = tree.enumerate_worlds(1 << 18).unwrap();
            let scores = tree.scores();
            let got = expected_ranks_tree(&tree);
            for t in 0..tree.n_tuples() {
                let tid = TupleId(t as u32);
                let brute: f64 = worlds
                    .worlds
                    .iter()
                    .map(|(w, p)| match w.rank_of(tid, scores) {
                        Some(r) => p * r as f64,
                        None => p * w.len() as f64,
                    })
                    .sum();
                assert!(
                    (got[t] - brute).abs() < 1e-8,
                    "seed {seed} t{t}: {} vs {brute}",
                    got[t]
                );
            }
        }
    }

    #[test]
    fn truncated_tree_prf_reads_only_low_ranks() {
        let tree = figure1_tree();
        let full = prf_rank_tree(&tree, &StepWeight { h: 2 });
        let dists = rank_distributions_tree(&tree);
        for t in 0..tree.n_tuples() {
            let expect: f64 = dists[t][..2].iter().sum();
            assert!((full[t].re - expect).abs() < 1e-10);
        }
    }
}
