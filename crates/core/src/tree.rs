//! Ranking over probabilistic and/xor trees (Sections 4.2–4.3).
//!
//! For a tuple `t` at sorted position `i`, label leaves of the tree as
//! follows: leaves ranked above `t` (higher score) get the variable `x`, the
//! leaf `t` itself gets `y`, everything else gets the constant `1`. By
//! Theorem 1 the resulting generating function `Fⁱ(x, y) = A(x) + B(x)·y`
//! satisfies `Pr(r(t) = j) = [x^{j−1}] B(x)`.
//!
//! Walking the tuples in score order changes only **two** leaf labels per
//! step, so every algorithm here is an instantiation of the incremental
//! engine in [`crate::incremental`] — cached per-node fold state, two
//! leaf-to-root path recombinations per tuple — over a suitable ring:
//!
//! 1. [`prf_rank_tree`] — truncated bivariate polynomials
//!    ([`RankPoly`]): exact PRFω(h)/PT(h) on arbitrary trees in
//!    `O(depth·log fanout·h)` ring work per tuple instead of the
//!    `O(n·h)`-per-tuple full refold (Algorithm 2), which is retained as
//!    [`prf_rank_tree_refold`] — the differential-test oracle and the
//!    ablation baseline;
//! 2. [`prfe_rank_tree`] — scalars wrapped in [`YLin`] (ANDXOR-PRFe-RANK,
//!    Algorithm 3, made division-free): `O(Σᵢ dᵢ + n log n)` total, generic
//!    over any [`GfValue`] scalar — plain/complex, [`Scaled`], or dual
//!    numbers — with [`prfe_rank_tree_recompute`] as the full-refold
//!    oracle;
//! 3. [`prf_rank_tree_interp`] — evaluate the tree at the roots of unity
//!    and recover coefficients with one inverse FFT per tuple
//!    (Appendix B.2);
//! 4. [`expected_ranks_tree`] — the same machinery over dual numbers for
//!    expected ranks (Cormode et al.) on correlated data.
//!
//! The `*_stats` variants additionally report the evaluator's memory
//! accounting ([`GfStats`]), surfaced by the query engine's `EvalReport`.

#![allow(clippy::needless_range_loop)] // index loops pair several parallel arrays

use std::sync::Arc;
use std::time::Instant;

use prf_numeric::fft::interpolate_from_roots_of_unity;
use prf_numeric::{Complex, Dual, GfValue, RankPoly, Scaled, YLin};
use prf_pdb::tuple::sort_indices_by_score_desc;
use prf_pdb::{AndXorTree, Tuple, TupleId};

use crate::incremental::{EvalPlan, GfStats, IncrementalGf};
use crate::query::batch::{SharedAnswer, SharedRequest, SharedWalkOut, SharedWalkSpec};
use crate::weights::WeightFunction;

/// Tuple processing order (score descending, id ascending) and its inverse
/// permutation, shared by all tree algorithms. Public so that callers that
/// evaluate many PRFe instances over one tree (PRFe mixtures) can sort once.
pub fn score_order(tree: &AndXorTree) -> (Vec<TupleId>, Vec<usize>) {
    let order: Vec<TupleId> = sort_indices_by_score_desc(tree.scores())
        .into_iter()
        .map(|i| TupleId(i as u32))
        .collect();
    let mut pos = vec![0usize; order.len()];
    for (i, t) in order.iter().enumerate() {
        pos[t.index()] = i;
    }
    (order, pos)
}

pub(crate) fn tuple_view(tree: &AndXorTree, marginals: &[f64], t: TupleId) -> Tuple {
    Tuple {
        id: t,
        score: tree.score(t),
        prob: marginals[t.index()],
    }
}

/// Cached per-relation walk artifacts — everything a tree walk otherwise
/// rebuilds on every call: the score order and its inverse permutation, the
/// tuple marginals, and the compiled combine plan. One `TreePrepared`
/// serves any number of serial, sharded, single-query, or batched walks
/// over the same tree (per-walk evaluator *state* is built fresh each walk;
/// only this immutable skeleton is shared), which is what lets a serving
/// layer amortize the `O(n log n)` sort and `O(tree)` plan compilation
/// across flushes instead of paying them per flush.
#[derive(Clone)]
pub(crate) struct TreePrepared {
    pub(crate) order: Vec<TupleId>,
    pub(crate) pos: Vec<usize>,
    pub(crate) marginals: Vec<f64>,
    pub(crate) plan: EvalPlan,
}

impl TreePrepared {
    pub(crate) fn new(tree: &AndXorTree) -> Self {
        let (order, pos) = score_order(tree);
        TreePrepared {
            order,
            pos,
            marginals: tree.marginals(),
            plan: EvalPlan::new(tree),
        }
    }
}

/// `Υ(t) = Σ_{j ≤ cap} ω(t, j)·[x^{j−1}] B(x)` read off one generating
/// function — shared by the serial and parallel walks.
pub(crate) fn upsilon_from_gf(
    gf: &RankPoly,
    tv: &Tuple,
    omega: &dyn WeightFunction,
    cap: usize,
) -> Complex {
    let mut ups = Complex::ZERO;
    for j in 1..=cap {
        let c = gf.rank_probability(j);
        if c != 0.0 {
            ups += omega.weight(tv, j) * c;
        }
    }
    ups
}

// ---------------------------------------------------------------------
// 1. Symbolic expansion (Algorithm 2), incremental and full-refold
// ---------------------------------------------------------------------

/// Υ values for every tuple of a correlated relation under an arbitrary PRF
/// weight function (ANDXOR-PRF-RANK), via the incremental symbolic engine:
/// per tuple, two leaf relabels and their `O(depth·log fanout)` path
/// recombinations replace Algorithm 2's full `O(tree size)` refold.
///
/// Respects [`WeightFunction::truncation`]: PT(h)/PRFω(h)/U-Rank only expand
/// the first `h` coefficients. Agreement with the literal Algorithm 2
/// ([`prf_rank_tree_refold`]) is enforced to 1e-9 by the differential suite
/// in `tests/incremental_engine.rs`.
pub fn prf_rank_tree(tree: &AndXorTree, omega: &dyn WeightFunction) -> Vec<Complex> {
    prf_rank_tree_stats(tree, omega).0
}

/// [`prf_rank_tree`] plus the evaluator's memory accounting.
pub fn prf_rank_tree_stats(
    tree: &AndXorTree,
    omega: &dyn WeightFunction,
) -> (Vec<Complex>, GfStats) {
    let n = tree.n_tuples();
    if n == 0 {
        return (Vec::new(), GfStats::default());
    }
    prf_rank_tree_stats_prepared(tree, omega, &TreePrepared::new(tree))
}

/// [`prf_rank_tree_stats`] over cached walk artifacts: identical output,
/// but the sort, marginals, and compiled plan come from `prep` instead of
/// being rebuilt — the single-query form a `PreparedRelation` runs.
pub(crate) fn prf_rank_tree_stats_prepared(
    tree: &AndXorTree,
    omega: &dyn WeightFunction,
    prep: &TreePrepared,
) -> (Vec<Complex>, GfStats) {
    let n = tree.n_tuples();
    let mut out = vec![Complex::ZERO; n];
    if n == 0 {
        return (out, GfStats::default());
    }
    let cap = omega.truncation().unwrap_or(n).min(n);
    if cap == 0 {
        return (out, GfStats::default());
    }
    let mut inc = prep.plan.evaluator(|_| RankPoly::one().with_cap(cap));
    for (i, &t) in prep.order.iter().enumerate() {
        if i > 0 {
            // Previous tuple's label moves from y to x.
            inc.set_leaf(prep.order[i - 1], RankPoly::x().with_cap(cap));
        }
        // Current tuple's label moves from 1 to y.
        inc.set_leaf(t, RankPoly::y().with_cap(cap));
        let tv = tuple_view(tree, &prep.marginals, t);
        out[t.index()] = upsilon_from_gf(inc.root(), &tv, omega, cap);
    }
    let stats = inc.stats();
    (out, stats)
}

/// The literal Algorithm 2: one full bottom-up refold of the entire tree
/// per tuple — `O(n²)`–`O(n²·h)` total. Retained as the differential-test
/// oracle for [`prf_rank_tree`] and as the ablation baseline the
/// `trees` criterion bench measures the incremental engine against.
pub fn prf_rank_tree_refold(tree: &AndXorTree, omega: &dyn WeightFunction) -> Vec<Complex> {
    let n = tree.n_tuples();
    let mut out = vec![Complex::ZERO; n];
    if n == 0 {
        return out;
    }
    let cap = omega.truncation().unwrap_or(n).min(n);
    if cap == 0 {
        return out;
    }
    let (order, pos) = score_order(tree);
    let marginals = tree.marginals();
    for (i, &t) in order.iter().enumerate() {
        let gf = tree.generating_function(|u| {
            if u == t {
                RankPoly::y().with_cap(cap)
            } else if pos[u.index()] < i {
                RankPoly::x().with_cap(cap)
            } else {
                RankPoly::one().with_cap(cap)
            }
        });
        let tv = tuple_view(tree, &marginals, t);
        out[t.index()] = upsilon_from_gf(&gf, &tv, omega, cap);
    }
    out
}

/// The full positional-probability matrix on a tree:
/// `result[t][j−1] = Pr(r(t) = j)`. `O(n³)`-ish — test oracle scale.
pub fn rank_distributions_tree(tree: &AndXorTree) -> Vec<Vec<f64>> {
    let n = tree.n_tuples();
    let (order, pos) = score_order(tree);
    let mut out = vec![Vec::new(); n];
    for (i, &t) in order.iter().enumerate() {
        let gf = tree.generating_function(|u| {
            if u == t {
                RankPoly::y()
            } else if pos[u.index()] < i {
                RankPoly::x()
            } else {
                RankPoly::one()
            }
        });
        out[t.index()] = gf.rank_distribution(n);
    }
    out
}

// ---------------------------------------------------------------------
// 2. Roots-of-unity interpolation (Appendix B.2)
// ---------------------------------------------------------------------

/// Like [`prf_rank_tree`], but expands each `B(x)` by evaluating the tree at
/// the `m`-th roots of unity (`m` = next power of two `> n`) and applying one
/// inverse FFT — `O(n)` per evaluation point, `O(n²)` per tuple regardless of
/// tree shape (Appendix B.2, "Algorithm 2").
pub fn prf_rank_tree_interp(tree: &AndXorTree, omega: &dyn WeightFunction) -> Vec<Complex> {
    let n = tree.n_tuples();
    let mut out = vec![Complex::ZERO; n];
    if n == 0 {
        return out;
    }
    let (order, pos) = score_order(tree);
    let marginals = tree.marginals();
    let m = (n + 1).next_power_of_two();
    // Precompute the m-th roots of unity ω^k (forward orientation e^{+2πi/m},
    // matching interpolate_from_roots_of_unity).
    let roots: Vec<Complex> = (0..m)
        .map(|k| Complex::cis(2.0 * std::f64::consts::PI * k as f64 / m as f64))
        .collect();
    let h = omega.truncation().unwrap_or(n).min(n);
    let mut bvals = vec![Complex::ZERO; m];
    for (i, &t) in order.iter().enumerate() {
        for (k, &x) in roots.iter().enumerate() {
            let v: YLin<Complex> = tree.generating_function(|u| {
                if u == t {
                    YLin::y()
                } else if pos[u.index()] < i {
                    YLin::pure(x)
                } else {
                    YLin::<Complex>::one()
                }
            });
            bvals[k] = v.b;
        }
        let coeffs = interpolate_from_roots_of_unity(&bvals);
        let tv = tuple_view(tree, &marginals, t);
        let mut ups = Complex::ZERO;
        for (j0, &c) in coeffs.iter().enumerate().take(h) {
            ups += omega.weight(&tv, j0 + 1) * c;
        }
        out[t.index()] = ups;
    }
    out
}

// ---------------------------------------------------------------------
// 3. Incremental PRFe (Algorithm 3, division-free)
// ---------------------------------------------------------------------

/// PRFe(α) over an and/xor tree — ANDXOR-PRFe-RANK (Algorithm 3) on the
/// division-free incremental engine, generic over any [`GfValue`] scalar.
///
/// Each step relabels two leaves of a [`YLin`]-valued evaluator (processed
/// tuples carry `α`, the current tuple `y`) and reads `Υ = B(α)·α` off the
/// root. Total cost `O(Σᵢ dᵢ·log fanout + n log n)` where `dᵢ` is the depth
/// of tuple `i`. Use [`Complex`] / `f64` directly at small scale,
/// [`Scaled`] scalars (see [`prfe_rank_tree_scaled`]) when products may
/// underflow, or [`Dual`] for derivatives. Unlike the paper's formulation
/// there is **no division**: ∧ nodes recombine cached sibling products, so
/// `p = 1` leaves, zero-probability edges and `α = 0` need no zero-count
/// bookkeeping.
pub fn prfe_rank_tree<T: GfValue>(tree: &AndXorTree, alpha: T) -> Vec<T> {
    prfe_rank_tree_stats(tree, alpha).0
}

/// [`prfe_rank_tree`] plus the evaluator's memory accounting.
pub fn prfe_rank_tree_stats<T: GfValue>(tree: &AndXorTree, alpha: T) -> (Vec<T>, GfStats) {
    let n = tree.n_tuples();
    let mut out = vec![T::zero(); n];
    if n == 0 {
        return (out, GfStats::default());
    }
    let (order, _) = score_order(tree);
    let plan = EvalPlan::new(tree);
    let mut inc = plan.evaluator(|_| YLin::<T>::one());
    let processed = YLin::pure(alpha.clone());
    for (i, &t) in order.iter().enumerate() {
        if i > 0 {
            // Previous tuple's label moves from y to α (the "x" slot).
            inc.set_leaf(order[i - 1], processed.clone());
        }
        // Current tuple's label moves from 1 to y.
        inc.set_leaf(t, YLin::y());
        // Υ(t) = B(α)·α.
        out[t.index()] = inc.root().b.mul(&alpha);
    }
    let stats = inc.stats();
    (out, stats)
}

/// [`prfe_rank_tree`] in scaled-complex arithmetic — underflow-proof at any
/// scale; keys for ranking come from
/// [`Scaled::magnitude_key`](prf_numeric::Scaled::magnitude_key).
pub fn prfe_rank_tree_scaled(tree: &AndXorTree, alpha: Complex) -> Vec<Scaled<Complex>> {
    prfe_rank_tree(tree, Scaled::new(alpha))
}

/// [`prfe_rank_tree_scaled`] plus the evaluator's memory accounting.
pub fn prfe_rank_tree_scaled_stats(
    tree: &AndXorTree,
    alpha: Complex,
) -> (Vec<Scaled<Complex>>, GfStats) {
    prfe_rank_tree_stats(tree, Scaled::new(alpha))
}

/// Recompute-from-scratch PRFe on a tree: one full `O(node count)` fold per
/// tuple using [`YLin`] values. `O(n²)` total — the full-refold oracle that
/// the incremental engine is differential-tested (and benchmarked) against.
pub fn prfe_rank_tree_recompute(tree: &AndXorTree, alpha: Complex) -> Vec<Complex> {
    let n = tree.n_tuples();
    let mut out = vec![Complex::ZERO; n];
    if n == 0 {
        return out;
    }
    let (order, pos) = score_order(tree);
    for (i, &t) in order.iter().enumerate() {
        let v: YLin<Complex> = tree.generating_function(|u| {
            if u == t {
                YLin::y()
            } else if pos[u.index()] < i {
                YLin::pure(alpha)
            } else {
                YLin::<Complex>::one()
            }
        });
        // Υ = B(α)·α.
        out[t.index()] = v.b * alpha;
    }
    out
}

// ---------------------------------------------------------------------
// 4. Expected ranks on trees (dual numbers)
// ---------------------------------------------------------------------

/// Expected ranks over an and/xor tree, in `O(Σᵢ dᵢ + n log n)`:
/// `E-Rank(t) = er₁(t) + er₂(t)` with
///
/// * `er₁(t) = Σᵢ i·Pr(r(t) = i)` — the derivative at `α = 1` of the PRFe
///   value `Υ_α(t) = Σᵢ Pr(r(t)=i)·αⁱ`, obtained by running the incremental
///   engine over dual numbers;
/// * `er₂(t) = Σ_{pw: t∉pw} Pr(pw)·|pw|` — the derivative at `x = 1` of
///   `A(x) = F(x, y=0)` under the labelling that marks *every* other leaf
///   `x`, obtained from a second incremental pass.
///
/// Tuples absent from a world are charged that world's size, following
/// Cormode et al. Lower is better; callers typically rank by `−E-Rank`.
pub fn expected_ranks_tree(tree: &AndXorTree) -> Vec<f64> {
    let n = tree.n_tuples();
    if n == 0 {
        return Vec::new();
    }
    let alpha = Dual::variable(1.0);

    // er₁ via the incremental engine over duals.
    let er1: Vec<Dual> = prfe_rank_tree(tree, alpha);

    // er₂: all leaves labelled x = 1+ε, the target labelled y; read dA/dε
    // (shared with the batched walk).
    let plan = EvalPlan::new(tree);
    let er2 = erank_absent_term(&plan, n);

    (0..n).map(|t| er1[t].d + er2[t]).collect()
}

// ---------------------------------------------------------------------
// 5. Batched multi-query walk (one score order, one plan, one pass)
// ---------------------------------------------------------------------

/// The parsed consumer set of a batched walk: which
/// [`SharedRequest`]s read the shared truncated-polynomial evaluator
/// (weight-based semantics — truncation views of one polynomial capped at
/// the *largest* requested horizon) and which ride along as scalar
/// evaluation points (PRFe per α, expected ranks via dual numbers).
pub(crate) struct BatchConsumers {
    /// `(request index, ω, extraction cap)` — all served by ONE polynomial
    /// evaluator.
    weights: Vec<(usize, Arc<dyn WeightFunction + Send + Sync>, usize)>,
    /// `(request index, kind)` — one scalar evaluator each.
    scalars: Vec<(usize, ScalarKind)>,
    /// The shared polynomial cap (max over `weights`; 0 = no polynomial).
    cap: usize,
}

#[derive(Clone, Copy)]
enum ScalarKind {
    /// PRFe(α), plain complex.
    Complex(Complex),
    /// PRFe(α), scaled; `true` converts to log-domain keys at extraction
    /// (matching the trait default `prfe_log_keys`).
    Scaled(Complex, bool),
    /// Expected ranks: the in-world term er₁ via `α = 1 + ε`.
    Erank,
}

impl BatchConsumers {
    pub(crate) fn parse(spec: &SharedWalkSpec, n: usize) -> Self {
        let mut weights = Vec::new();
        let mut scalars = Vec::new();
        let mut cap = 0usize;
        for (i, req) in spec.requests.iter().enumerate() {
            match req {
                SharedRequest::Weight(w) => {
                    let c = req.weight_cap(n).expect("weight request has a cap");
                    cap = cap.max(c);
                    weights.push((i, w.clone(), c));
                }
                SharedRequest::PrfeComplex(a) => scalars.push((i, ScalarKind::Complex(*a))),
                SharedRequest::PrfeLog(a) => {
                    scalars.push((i, ScalarKind::Scaled(Complex::real(*a), true)))
                }
                SharedRequest::PrfeScaled(a) => scalars.push((i, ScalarKind::Scaled(*a, false))),
                SharedRequest::ExpectedRanks => scalars.push((i, ScalarKind::Erank)),
            }
        }
        BatchConsumers {
            weights,
            scalars,
            cap,
        }
    }

    /// Pre-sized answer buffers, one per request, matching the single-query
    /// kernels' defaults (zero Υ values, `-∞` log keys).
    pub(crate) fn answer_buffers(spec: &SharedWalkSpec, n: usize) -> Vec<SharedAnswer> {
        spec.requests
            .iter()
            .map(|req| match req {
                SharedRequest::Weight(_) | SharedRequest::PrfeComplex(_) => {
                    SharedAnswer::Complex(vec![Complex::ZERO; n])
                }
                SharedRequest::PrfeLog(_) => SharedAnswer::Log(vec![f64::NEG_INFINITY; n]),
                SharedRequest::PrfeScaled(_) => {
                    SharedAnswer::Scaled(vec![Scaled::<Complex>::zero(); n])
                }
                SharedRequest::ExpectedRanks => SharedAnswer::Ranks(vec![0.0; n]),
            })
            .collect()
    }

    /// `true` when an expected-ranks consumer is present (it needs the
    /// extra absent-worlds pass after the main walk).
    fn wants_erank(&self) -> bool {
        self.scalars
            .iter()
            .any(|(_, k)| matches!(k, ScalarKind::Erank))
    }
}

/// The mutable per-shard state of a batched walk: one polynomial evaluator
/// (if any weight consumer exists) plus one scalar evaluator per
/// PRFe/E-Rank consumer — all over ONE shared [`EvalPlan`].
/// Cloning snapshots every evaluator's fold state over the shared plan —
/// the parallel batch walk advances ONE walker set chunk by chunk and
/// clones a per-shard snapshot at each boundary.
#[derive(Clone)]
pub(crate) struct BatchWalkers<'p> {
    poly: Option<IncrementalGf<'p, RankPoly>>,
    scalars: Vec<ScalarWalker<'p>>,
    cap: usize,
}

#[derive(Clone)]
enum ScalarWalker<'p> {
    Complex(IncrementalGf<'p, YLin<Complex>>, Complex),
    Scaled(
        IncrementalGf<'p, YLin<Scaled<Complex>>>,
        Scaled<Complex>,
        bool,
    ),
    Dual(IncrementalGf<'p, YLin<Dual>>, Dual),
}

impl<'p> BatchWalkers<'p> {
    /// Builds every evaluator directly in the labelling where tuples with
    /// `processed(t) == true` already carry their post-walk label (`x` /
    /// `α`) — the same fast-forward construction the sharded parallel walk
    /// uses for a single query.
    pub(crate) fn fast_forward(
        plan: &'p EvalPlan,
        consumers: &BatchConsumers,
        mut processed: impl FnMut(TupleId) -> bool,
    ) -> Self {
        let cap = consumers.cap;
        let poly = (cap > 0).then(|| {
            plan.evaluator(|t| {
                if processed(t) {
                    RankPoly::x().with_cap(cap)
                } else {
                    RankPoly::one().with_cap(cap)
                }
            })
        });
        let scalars = consumers
            .scalars
            .iter()
            .map(|&(_, kind)| match kind {
                ScalarKind::Complex(a) => ScalarWalker::Complex(
                    plan.evaluator(|t| {
                        if processed(t) {
                            YLin::pure(a)
                        } else {
                            YLin::one()
                        }
                    }),
                    a,
                ),
                ScalarKind::Scaled(a, log) => {
                    let a = Scaled::new(a);
                    ScalarWalker::Scaled(
                        plan.evaluator(|t| {
                            if processed(t) {
                                YLin::pure(a)
                            } else {
                                YLin::one()
                            }
                        }),
                        a,
                        log,
                    )
                }
                ScalarKind::Erank => {
                    let a = Dual::variable(1.0);
                    ScalarWalker::Dual(
                        plan.evaluator(|t| {
                            if processed(t) {
                                YLin::pure(a)
                            } else {
                                YLin::one()
                            }
                        }),
                        a,
                    )
                }
            })
            .collect();
        BatchWalkers { poly, scalars, cap }
    }

    /// Advances every evaluator so the leaves selected by `advance` carry
    /// their post-walk label (`x` / `α`), in one bulk bottom-up sweep per
    /// evaluator ([`IncrementalGf::set_leaves_bulk`]) — how the parallel
    /// batch walk extends the shared fold prefix from one shard boundary
    /// to the next before cloning a snapshot.
    pub(crate) fn advance_bulk(&mut self, mut advance: impl FnMut(TupleId) -> bool) {
        let cap = self.cap;
        if let Some(inc) = &mut self.poly {
            inc.set_leaves_bulk(|t| advance(t).then(|| RankPoly::x().with_cap(cap)));
        }
        for s in &mut self.scalars {
            match s {
                ScalarWalker::Complex(inc, a) => {
                    let a = *a;
                    inc.set_leaves_bulk(|t| advance(t).then(|| YLin::pure(a)));
                }
                ScalarWalker::Scaled(inc, a, _) => {
                    let a = *a;
                    inc.set_leaves_bulk(|t| advance(t).then(|| YLin::pure(a)));
                }
                ScalarWalker::Dual(inc, a) => {
                    let a = *a;
                    inc.set_leaves_bulk(|t| advance(t).then(|| YLin::pure(a)));
                }
            }
        }
    }

    /// One walk step: the previous tuple's label moves `y → x`/`α`, the
    /// current tuple's `1 → y`, in every evaluator.
    pub(crate) fn step(&mut self, prev: Option<TupleId>, cur: TupleId) {
        if let Some(p) = prev {
            if let Some(inc) = &mut self.poly {
                inc.set_leaf(p, RankPoly::x().with_cap(self.cap));
            }
            for s in &mut self.scalars {
                match s {
                    ScalarWalker::Complex(inc, a) => inc.set_leaf(p, YLin::pure(*a)),
                    ScalarWalker::Scaled(inc, a, _) => inc.set_leaf(p, YLin::pure(*a)),
                    ScalarWalker::Dual(inc, a) => inc.set_leaf(p, YLin::pure(*a)),
                }
            }
        }
        if let Some(inc) = &mut self.poly {
            inc.set_leaf(cur, RankPoly::y().with_cap(self.cap));
        }
        for s in &mut self.scalars {
            match s {
                ScalarWalker::Complex(inc, _) => inc.set_leaf(cur, YLin::y()),
                ScalarWalker::Scaled(inc, _, _) => inc.set_leaf(cur, YLin::y()),
                ScalarWalker::Dual(inc, _) => inc.set_leaf(cur, YLin::y()),
            }
        }
    }

    /// Reads every consumer's Υ for the current tuple into position `at`
    /// of the answer buffers — `tv.id.index()` for full-length buffers
    /// (the serial walk), a shard-relative position for the parallel
    /// walk's shard-sized buffers.
    pub(crate) fn extract(
        &self,
        consumers: &BatchConsumers,
        tv: &Tuple,
        answers: &mut [SharedAnswer],
        at: usize,
    ) {
        let t = at;
        if let Some(inc) = &self.poly {
            for (req, w, cap) in &consumers.weights {
                if let SharedAnswer::Complex(buf) = &mut answers[*req] {
                    buf[t] = upsilon_from_gf(inc.root(), tv, w.as_ref(), *cap);
                }
            }
        }
        for ((req, _), walker) in consumers.scalars.iter().zip(&self.scalars) {
            match walker {
                ScalarWalker::Complex(inc, a) => {
                    if let SharedAnswer::Complex(buf) = &mut answers[*req] {
                        buf[t] = inc.root().b.mul(a);
                    }
                }
                ScalarWalker::Scaled(inc, a, log) => {
                    let v = inc.root().b.mul(a);
                    match (&mut answers[*req], log) {
                        (SharedAnswer::Log(buf), true) => {
                            buf[t] = v.magnitude_key() * std::f64::consts::LN_2;
                        }
                        (SharedAnswer::Scaled(buf), false) => buf[t] = v,
                        _ => unreachable!("buffer shape matches request shape"),
                    }
                }
                ScalarWalker::Dual(inc, a) => {
                    if let SharedAnswer::Ranks(buf) = &mut answers[*req] {
                        // er₁ for now; the absent-worlds term er₂ is added
                        // after the walk.
                        buf[t] = inc.root().b.mul(a).d;
                    }
                }
            }
        }
    }

    /// Merged memory accounting across every live evaluator.
    pub(crate) fn stats(&self) -> GfStats {
        let mut stats = self
            .poly
            .as_ref()
            .map(IncrementalGf::stats)
            .unwrap_or_default();
        for s in &self.scalars {
            stats = stats.merge(match s {
                ScalarWalker::Complex(inc, _) => inc.stats(),
                ScalarWalker::Scaled(inc, _, _) => inc.stats(),
                ScalarWalker::Dual(inc, _) => inc.stats(),
            });
        }
        stats
    }
}

/// The absent-worlds term of expected ranks,
/// `er₂(t) = Σ_{pw: t∉pw} Pr(pw)·|pw|`, via a second leaf-relabeling pass
/// over the shared plan (every other leaf carries `1 + ε`; read `dA/dε`).
pub(crate) fn erank_absent_term(plan: &EvalPlan, n: usize) -> Vec<f64> {
    let alpha = Dual::variable(1.0);
    let mut er2 = vec![0.0f64; n];
    let mut inc = plan.evaluator(|_| YLin::pure(alpha));
    for t in 0..n {
        if t > 0 {
            inc.set_leaf(TupleId((t - 1) as u32), YLin::pure(alpha));
        }
        inc.set_leaf(TupleId(t as u32), YLin::y());
        er2[t] = inc.root().a.d;
    }
    er2
}

/// Adds er₂ into every expected-ranks answer buffer (which holds er₁ after
/// the main walk).
pub(crate) fn finish_erank_answers(
    consumers: &BatchConsumers,
    plan: &EvalPlan,
    n: usize,
    answers: &mut [SharedAnswer],
) {
    if !consumers.wants_erank() {
        return;
    }
    let er2 = erank_absent_term(plan, n);
    for (req, kind) in &consumers.scalars {
        if matches!(kind, ScalarKind::Erank) {
            if let SharedAnswer::Ranks(buf) = &mut answers[*req] {
                for (b, e) in buf.iter_mut().zip(&er2) {
                    *b += e;
                }
            }
        }
    }
}

/// Serves a whole [`SharedWalkSpec`] from **one** serial score-order walk
/// over **one** compiled plan: the batched form of [`prf_rank_tree`] /
/// [`prfe_rank_tree`] / [`expected_ranks_tree`], answer-equivalent to
/// running each request's single-query kernel (within 1e-9 — see
/// `tests/batch_equivalence.rs`).
///
/// Returns `None` when the spec's cancellation token trips mid-walk (every
/// consumer gave up — see `SharedWalkSpec::cancel`).
pub(crate) fn batch_walk_tree(tree: &AndXorTree, spec: &SharedWalkSpec) -> Option<SharedWalkOut> {
    let start = Instant::now();
    if tree.n_tuples() == 0 {
        return Some(SharedWalkOut {
            answers: BatchConsumers::answer_buffers(spec, 0),
            stats: None,
            walk_seconds: start.elapsed().as_secs_f64(),
        });
    }
    batch_walk_tree_prepared(tree, spec, &TreePrepared::new(tree))
}

/// [`batch_walk_tree`] over cached walk artifacts (see [`TreePrepared`]):
/// identical answers, but the sort, marginals, and compiled plan are reused
/// across calls — a serving flush pays only the walk itself.
pub(crate) fn batch_walk_tree_prepared(
    tree: &AndXorTree,
    spec: &SharedWalkSpec,
    prep: &TreePrepared,
) -> Option<SharedWalkOut> {
    let start = Instant::now();
    let n = tree.n_tuples();
    let consumers = BatchConsumers::parse(spec, n);
    let mut answers = BatchConsumers::answer_buffers(spec, n);
    if n == 0 {
        return Some(SharedWalkOut {
            answers,
            stats: None,
            walk_seconds: start.elapsed().as_secs_f64(),
        });
    }
    let mut walkers = BatchWalkers::fast_forward(&prep.plan, &consumers, |_| false);
    for (i, &t) in prep.order.iter().enumerate() {
        // Cooperative cancellation: abandon the walk once every consumer
        // has given up (polled every 256 score steps).
        if i & 0xFF == 0 && spec.is_cancelled() {
            return None;
        }
        walkers.step((i > 0).then(|| prep.order[i - 1]), t);
        let tv = tuple_view(tree, &prep.marginals, t);
        walkers.extract(&consumers, &tv, &mut answers, t.index());
    }
    let stats = walkers.stats();
    // The E-Rank absent-worlds pass holds one transient scalar evaluator;
    // like the serial single-query path, it is not part of the reported
    // walk accounting (and the parallel walk reports identically).
    finish_erank_answers(&consumers, &prep.plan, n, &mut answers);
    Some(SharedWalkOut {
        answers,
        stats: Some(stats),
        walk_seconds: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::*;
    use prf_pdb::{IndependentDb, NodeKind, TreeBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Figure 1 tree (see prf-pdb tests for the construction).
    fn figure1_tree() -> AndXorTree {
        let mut b = TreeBuilder::new(NodeKind::And);
        let root = b.root();
        let x1 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x1, 0.4, 120.0).unwrap();
        let x2 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x2, 0.7, 130.0).unwrap();
        b.add_leaf(x2, 0.3, 80.0).unwrap();
        let x3 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x3, 0.4, 95.0).unwrap();
        b.add_leaf(x3, 0.6, 110.0).unwrap();
        let x4 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x4, 1.0, 105.0).unwrap();
        b.build().unwrap()
    }

    /// A random and/xor tree with explicit kind tracking, for differential
    /// testing against brute-force world enumeration.
    fn random_tree2(seed: u64, target_leaves: usize, max_depth: usize) -> AndXorTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let root_kind = if rng.gen_bool(0.5) {
            NodeKind::And
        } else {
            NodeKind::Xor
        };
        let mut b = TreeBuilder::new(root_kind);
        // Frontier of (node, kind, depth, remaining xor budget).
        let mut frontier = vec![(b.root(), root_kind, 0usize, 1.0f64)];
        let mut leaves = 0usize;
        while leaves < target_leaves {
            let idx = rng.gen_range(0..frontier.len());
            let (node, kind, depth, budget) = frontier[idx];
            let is_xor = matches!(kind, NodeKind::Xor);
            // Probability for this child's edge.
            let p = if is_xor {
                let p = rng.gen_range(0.0..budget.min(0.6));
                frontier[idx].3 -= p;
                p
            } else {
                1.0
            };
            let make_leaf = depth >= max_depth || rng.gen_bool(0.65);
            if make_leaf {
                let score = rng.gen_range(0.0..100.0);
                b.add_leaf(node, p, score).unwrap();
                leaves += 1;
            } else {
                let child_kind = if rng.gen_bool(0.5) {
                    NodeKind::And
                } else {
                    NodeKind::Xor
                };
                let child = b.add_inner(node, child_kind, p).unwrap();
                frontier.push((child, child_kind, depth + 1, 1.0));
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn symbolic_rank_distributions_match_enumeration() {
        for seed in 0..8u64 {
            let tree = random_tree2(seed, 7, 3);
            let worlds = tree.enumerate_worlds(1 << 18).unwrap();
            let scores = tree.scores();
            let dists = rank_distributions_tree(&tree);
            for t in 0..tree.n_tuples() {
                let brute = worlds.rank_distribution(TupleId(t as u32), tree.n_tuples(), scores);
                for j in 0..tree.n_tuples() {
                    assert!(
                        (dists[t][j] - brute[j]).abs() < 1e-9,
                        "seed {seed} tuple {t} rank {j}: {} vs {}",
                        dists[t][j],
                        brute[j]
                    );
                }
            }
        }
    }

    #[test]
    fn figure1_example_4_rank_probability() {
        let tree = figure1_tree();
        let d = rank_distributions_tree(&tree);
        // Pr(r(t₄)=3) = 0.216 — t₄ is our TupleId(3) (score 95).
        assert!((d[3][2] - 0.216).abs() < 1e-12, "got {}", d[3][2]);
    }

    #[test]
    fn incremental_prf_matches_refold_oracle() {
        for seed in 0..10u64 {
            let tree = random_tree2(seed, 12, 4);
            let weights: Vec<Box<dyn WeightFunction>> = vec![
                Box::new(StepWeight { h: 1 }),
                Box::new(StepWeight { h: 4 }),
                Box::new(ConstantWeight),
                Box::new(PositionWeight { j: 2 }),
                Box::new(ExponentialWeight::real(0.8)),
            ];
            for w in &weights {
                let inc = prf_rank_tree(&tree, w.as_ref());
                let refold = prf_rank_tree_refold(&tree, w.as_ref());
                for t in 0..tree.n_tuples() {
                    assert!(
                        inc[t].approx_eq(refold[t], 1e-9),
                        "seed {seed} {} t{t}: {} vs {}",
                        w.name(),
                        inc[t],
                        refold[t]
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_prfe_matches_recompute() {
        for seed in 0..10u64 {
            let tree = random_tree2(seed, 12, 4);
            for &alpha in &[0.3, 0.9, 1.0] {
                let a = Complex::real(alpha);
                let inc = prfe_rank_tree(&tree, a);
                let rec = prfe_rank_tree_recompute(&tree, a);
                for t in 0..tree.n_tuples() {
                    assert!(
                        inc[t].approx_eq(rec[t], 1e-9),
                        "seed {seed} α={alpha} t{t}: {} vs {}",
                        inc[t],
                        rec[t]
                    );
                }
            }
            // Complex α.
            let a = Complex::new(0.5, 0.4);
            let inc = prfe_rank_tree(&tree, a);
            let rec = prfe_rank_tree_recompute(&tree, a);
            for t in 0..tree.n_tuples() {
                assert!(inc[t].approx_eq(rec[t], 1e-9));
            }
        }
    }

    #[test]
    fn incremental_prfe_matches_symbolic_oracle() {
        let tree = figure1_tree();
        let alpha = 0.6;
        let inc = prfe_rank_tree(&tree, Complex::real(alpha));
        let dists = rank_distributions_tree(&tree);
        for t in 0..tree.n_tuples() {
            let oracle: f64 = dists[t]
                .iter()
                .enumerate()
                .map(|(j0, &p)| p * alpha.powi(j0 as i32 + 1))
                .sum();
            assert!(
                (inc[t].re - oracle).abs() < 1e-10,
                "t{t}: {} vs {oracle}",
                inc[t].re
            );
        }
    }

    #[test]
    fn incremental_handles_certain_tuples_alpha_zero() {
        // p = 1 leaves make factors exactly zero at α = 0 — the division-
        // based formulation needed zero-count bookkeeping; the sibling-
        // product engine needs nothing special.
        let tree = figure1_tree(); // t6 has p = 1
        let inc = prfe_rank_tree(&tree, Complex::real(0.0));
        let rec = prfe_rank_tree_recompute(&tree, Complex::real(0.0));
        for t in 0..tree.n_tuples() {
            assert!(inc[t].approx_eq(rec[t], 1e-12), "t{t}");
        }
        for t in 0..tree.n_tuples() {
            assert!(!inc[t].is_nan(), "t{t} must not be NaN");
        }
    }

    #[test]
    fn interp_matches_symbolic() {
        for seed in [3u64, 11, 42] {
            let tree = random_tree2(seed, 9, 3);
            let w = StepWeight { h: 4 };
            let sym = prf_rank_tree(&tree, &w);
            let itp = prf_rank_tree_interp(&tree, &w);
            for t in 0..tree.n_tuples() {
                assert!(
                    sym[t].approx_eq(itp[t], 1e-8),
                    "seed {seed} t{t}: {} vs {}",
                    sym[t],
                    itp[t]
                );
            }
        }
    }

    #[test]
    fn tree_prf_matches_independent_prf_on_independent_data() {
        let db = IndependentDb::from_pairs([
            (10.0, 0.9),
            (9.0, 0.1),
            (8.0, 0.5),
            (7.0, 1.0),
            (6.0, 0.25),
        ])
        .unwrap();
        let tree = AndXorTree::from_independent(&db);
        let weights: Vec<Box<dyn WeightFunction>> = vec![
            Box::new(StepWeight { h: 3 }),
            Box::new(ConstantWeight),
            Box::new(PositionWeight { j: 2 }),
            Box::new(ExponentialWeight::real(0.8)),
        ];
        for w in &weights {
            let via_tree = prf_rank_tree(&tree, w.as_ref());
            let via_ind = crate::independent::prf_rank(&db, w.as_ref());
            for t in 0..db.len() {
                assert!(
                    via_tree[t].approx_eq(via_ind[t], 1e-9),
                    "{} t{t}: {} vs {}",
                    w.name(),
                    via_tree[t],
                    via_ind[t]
                );
            }
        }
    }

    #[test]
    fn scaled_tree_prfe_matches_plain_at_small_scale() {
        let tree = figure1_tree();
        let alpha = Complex::real(0.85);
        let plain = prfe_rank_tree(&tree, alpha);
        let scaled = prfe_rank_tree_scaled(&tree, alpha);
        for t in 0..tree.n_tuples() {
            assert!((scaled[t].to_plain().re - plain[t].re).abs() < 1e-10);
        }
    }

    #[test]
    fn expected_ranks_match_brute_force() {
        for seed in 0..6u64 {
            let tree = random_tree2(seed, 8, 3);
            let worlds = tree.enumerate_worlds(1 << 18).unwrap();
            let scores = tree.scores();
            let got = expected_ranks_tree(&tree);
            for t in 0..tree.n_tuples() {
                let tid = TupleId(t as u32);
                let brute: f64 = worlds
                    .worlds
                    .iter()
                    .map(|(w, p)| match w.rank_of(tid, scores) {
                        Some(r) => p * r as f64,
                        None => p * w.len() as f64,
                    })
                    .sum();
                assert!(
                    (got[t] - brute).abs() < 1e-8,
                    "seed {seed} t{t}: {} vs {brute}",
                    got[t]
                );
            }
        }
    }

    #[test]
    fn truncated_tree_prf_reads_only_low_ranks() {
        let tree = figure1_tree();
        let full = prf_rank_tree(&tree, &StepWeight { h: 2 });
        let dists = rank_distributions_tree(&tree);
        for t in 0..tree.n_tuples() {
            let expect: f64 = dists[t][..2].iter().sum();
            assert!((full[t].re - expect).abs() < 1e-10);
        }
    }

    #[test]
    fn stats_variants_report_memory() {
        let tree = figure1_tree();
        let (vals, stats) = prf_rank_tree_stats(&tree, &StepWeight { h: 3 });
        assert_eq!(vals, prf_rank_tree(&tree, &StepWeight { h: 3 }));
        assert!(stats.plan_nodes > 0);
        assert!(stats.peak_coefficients >= stats.resident_coefficients);
        let (svals, sstats) = prfe_rank_tree_scaled_stats(&tree, Complex::real(0.7));
        assert_eq!(svals.len(), tree.n_tuples());
        assert!(sstats.plan_nodes > 0);
        // Scalar engines hold no heap coefficients.
        assert_eq!(sstats.peak_coefficients, 0);
        assert!(sstats.peak_bytes > 0);
    }
}
