//! Batched multi-query execution over **one shared score-order walk**.
//!
//! The paper's parameterized ranking function means every semantics —
//! PRFω(h)/PT(h), PRFe(α) at any α, expected ranks — is read off the *same*
//! generating function, walked over the *same* score order. A
//! [`QueryBatch`] exploits that: it compiles N queries against one
//! [`ProbabilisticRelation`] into a [`BatchPlan`] that shares the score
//! sort, the compiled [`crate::incremental::EvalPlan`], and the incremental
//! evaluator state, then extracts every answer from **one leaf-relabeling
//! pass**. PRFe variants become extra evaluation points of the shared
//! generating function (one scalar evaluator per α over the shared plan);
//! PT(h)/PRFω(h) variants become truncation views of one shared
//! truncated-polynomial evaluator (capped at the largest requested
//! horizon); expected ranks ride along as a dual-number evaluation point.
//!
//! ```
//! use prf_core::query::{QueryBatch, RankQuery, Semantics};
//! use prf_pdb::IndependentDb;
//!
//! let db = IndependentDb::from_pairs([(100.0, 0.5), (50.0, 1.0), (80.0, 0.8)])?;
//! let results = QueryBatch::new()
//!     .add(Semantics::Pt(2))
//!     .add(Semantics::ERank)
//!     .add_query(RankQuery::prfe(0.9))
//!     .run(&db)?;
//! assert_eq!(results.len(), 3);
//! // Each result is exactly what the equivalent single query returns…
//! assert_eq!(
//!     results[0].ranking.order(),
//!     RankQuery::pt(2).run(&db)?.ranking.order()
//! );
//! // …and its report records the shared-walk cost attribution.
//! assert!(results[0].report.batch.is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Semantics with no shared-walk form (U-Top's set sweep, U-Rank's
//! candidate tables, the DFT mixture pipeline, E-Score's closed form) still
//! run through the batch API but are evaluated as individual queries
//! ([`BatchRoute::Single`]); their reports carry `batch: None`. Backends
//! without a shared-walk kernel (the graphical adapter) fall back the same
//! way, so a batch is *always* answer-equivalent to the sequence of single
//! queries — enforced to 1e-9 by `tests/batch_equivalence.rs`.

use std::sync::Arc;
use std::time::Instant;

use prf_numeric::{Complex, Scaled};

use super::relation::{CorrelationClass, ProbabilisticRelation};
use super::{
    panic_reason, Algorithm, CancelToken, EvalReport, QueryError, RankQuery, RankedResult,
    Semantics, Values,
};
use crate::incremental::GfStats;
use crate::topk::{Ranking, ValueOrder};
use crate::weights::WeightFunction;

// ---------------------------------------------------------------------
// The shared-walk backend interface
// ---------------------------------------------------------------------

/// One consumer of a shared score-order walk — the backend-facing form of a
/// batched query, produced by [`QueryBatch`] compilation and consumed by
/// [`ProbabilisticRelation::run_shared_walk`].
#[derive(Clone)]
pub enum SharedRequest {
    /// Weight-based Υ extraction (PRFω/PT/Consensus): read the first
    /// `truncation` coefficients of the shared generating function.
    Weight(Arc<dyn WeightFunction + Send + Sync>),
    /// PRFe(α) in plain complex arithmetic — an extra evaluation point of
    /// the shared generating function.
    PrfeComplex(Complex),
    /// PRFe(α) log-domain keys (real `α ∈ [0, 1]`).
    PrfeLog(f64),
    /// PRFe(α) in scaled arithmetic.
    PrfeScaled(Complex),
    /// Expected ranks (lower is better), via a dual-number evaluation
    /// point at `α = 1`.
    ExpectedRanks,
}

impl SharedRequest {
    /// The shared-polynomial extraction cap of a weight request on an
    /// `n`-tuple relation (`None` for non-weight requests) — the single
    /// definition both the tree and independent batch walks parse with,
    /// matching the single kernels' `truncation().unwrap_or(n).min(n)`.
    pub(crate) fn weight_cap(&self, n: usize) -> Option<usize> {
        match self {
            SharedRequest::Weight(w) => Some(w.truncation().unwrap_or(n).min(n)),
            _ => None,
        }
    }
}

impl std::fmt::Debug for SharedRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SharedRequest::Weight(w) => write!(f, "Weight({})", w.name()),
            SharedRequest::PrfeComplex(a) => write!(f, "PrfeComplex({a})"),
            SharedRequest::PrfeLog(a) => write!(f, "PrfeLog({a})"),
            SharedRequest::PrfeScaled(a) => write!(f, "PrfeScaled({a})"),
            SharedRequest::ExpectedRanks => f.write_str("ExpectedRanks"),
        }
    }
}

/// Everything a backend needs to serve a batch from one walk.
#[derive(Clone, Debug)]
pub struct SharedWalkSpec {
    /// The consumers, in batch-entry order.
    pub requests: Vec<SharedRequest>,
    /// Worker threads requested for shard-parallel walks.
    pub threads: Option<usize>,
    /// Cooperative cancellation, polled between score steps. For a batch
    /// this is the **all-of** composite of the consumers' tokens (the walk
    /// serves everyone, so it only aborts once *every* consumer has given
    /// up); a tripped token makes the kernel return `None`, demoting the
    /// entries to individual evaluation where each reports its own
    /// [`QueryError::TimedOut`].
    pub cancel: Option<CancelToken>,
}

impl SharedWalkSpec {
    /// `true` once the walk's composite cancellation token has tripped —
    /// the kernels' periodic poll.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }
}

/// The per-request answer of a shared walk, indexed by tuple id.
#[derive(Clone, Debug)]
pub enum SharedAnswer {
    /// Plain complex Υ values ([`SharedRequest::Weight`] /
    /// [`SharedRequest::PrfeComplex`]).
    Complex(Vec<Complex>),
    /// Log-domain keys ([`SharedRequest::PrfeLog`]).
    Log(Vec<f64>),
    /// Scaled Υ values ([`SharedRequest::PrfeScaled`]).
    Scaled(Vec<Scaled<Complex>>),
    /// Expected ranks, lower is better ([`SharedRequest::ExpectedRanks`]).
    Ranks(Vec<f64>),
}

/// What one shared walk produced.
#[derive(Clone, Debug)]
pub struct SharedWalkOut {
    /// Per-request answers, parallel to [`SharedWalkSpec::requests`].
    pub answers: Vec<SharedAnswer>,
    /// Merged memory accounting of the walk's incremental evaluators
    /// (`None` for closed-form backends).
    pub stats: Option<GfStats>,
    /// Wall-clock seconds of the whole walk (sort + plan + evaluation).
    pub walk_seconds: f64,
}

// ---------------------------------------------------------------------
// Cost attribution
// ---------------------------------------------------------------------

/// Cost attribution recorded in a batched query's
/// [`EvalReport`]: how much walk time was shared, and
/// between how many queries. A batched entry's `kernel_seconds` is its
/// amortized share `walk_seconds / consumers`; queries evaluated
/// individually inside a batch carry `batch: None`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchCost {
    /// Total wall-clock seconds of the shared walk.
    pub walk_seconds: f64,
    /// Number of queries that shared that walk.
    pub consumers: usize,
}

impl BatchCost {
    /// This query's amortized share of the walk.
    pub fn amortized_seconds(&self) -> f64 {
        self.walk_seconds / self.consumers.max(1) as f64
    }
}

// ---------------------------------------------------------------------
// The compiled plan
// ---------------------------------------------------------------------

/// How one batch entry is executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchRoute {
    /// Served by the shared score-order walk.
    Shared,
    /// Evaluated as an individual query (set/position semantics, closed
    /// forms, the DFT mixture, or a backend without a shared-walk kernel).
    Single,
}

/// The compiled form of a [`QueryBatch`] against one backend: every entry's
/// resolved algorithm and execution route. Exposed so callers (and the
/// batch benchmarks) can inspect how much of a batch actually shares the
/// walk before running it.
#[derive(Clone, Debug)]
pub struct BatchPlan {
    resolved: Vec<(Algorithm, BatchRoute)>,
}

impl BatchPlan {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.resolved.len()
    }

    /// `true` when the batch has no entries (never produced by
    /// [`QueryBatch::compile`], which rejects empty batches).
    pub fn is_empty(&self) -> bool {
        self.resolved.is_empty()
    }

    /// The resolved algorithm of entry `i`.
    pub fn algorithm(&self, i: usize) -> Algorithm {
        self.resolved[i].0
    }

    /// The execution route of entry `i`.
    pub fn route(&self, i: usize) -> BatchRoute {
        self.resolved[i].1
    }

    /// How many entries share the walk.
    pub fn shared_consumers(&self) -> usize {
        self.resolved
            .iter()
            .filter(|(_, r)| *r == BatchRoute::Shared)
            .count()
    }
}

// ---------------------------------------------------------------------
// The batch builder
// ---------------------------------------------------------------------

/// A batch of ranking queries against one relation, answered from one
/// shared score-order walk wherever the semantics allow (see the module
/// docs for the sharing rules and the fallback behaviour).
///
/// Entries are full [`RankQuery`]s, so per-entry algorithm, value order and
/// `top_k` overrides compose with the batch-level defaults
/// ([`QueryBatch::top_k`] and [`QueryBatch::parallel`] apply to entries
/// that did not set their own).
#[derive(Clone, Debug, Default)]
pub struct QueryBatch {
    entries: Vec<RankQuery>,
    top_k: Option<usize>,
    threads: Option<usize>,
}

impl QueryBatch {
    /// An empty batch. At least one entry must be added before
    /// [`QueryBatch::run`]; running an empty batch is an error
    /// ([`QueryError::EmptyBatch`]), not an empty answer.
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// Adds a semantics with default options ([`Algorithm::Auto`]).
    // Builder-style `add`, not arithmetic — the trait would be nonsense here.
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, semantics: Semantics) -> Self {
        self.entries.push(RankQuery::new(semantics));
        self
    }

    /// Adds a fully configured query (per-entry algorithm, value order,
    /// `top_k`, …).
    pub fn add_query(mut self, query: RankQuery) -> Self {
        self.entries.push(query);
        self
    }

    /// Adds every query of an iterator.
    pub fn add_queries(mut self, queries: impl IntoIterator<Item = RankQuery>) -> Self {
        self.entries.extend(queries);
        self
    }

    /// Truncates every returned ranking to its best `k` entries (entries
    /// with their own `top_k` keep it).
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Requests `threads` workers for the shared walk (sharded exactly like
    /// [`crate::parallel::prf_rank_tree_parallel`]) and, as a default, for
    /// parallel-capable kernels of individually evaluated entries.
    ///
    /// This batch-level setting is the **only** control over the shared
    /// walk: a per-entry `RankQuery::parallel` cannot shard a walk it
    /// shares with other entries, so it is ignored for shared-routed
    /// entries (their reports echo the walk's actual thread count) and
    /// honoured, entry-first, for individually evaluated ones.
    pub fn parallel(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries were added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, in execution order.
    pub fn queries(&self) -> &[RankQuery] {
        &self.entries
    }

    /// Compiles the batch against a backend without running it: resolves
    /// every entry's algorithm (surfacing incompatibilities exactly like
    /// the equivalent single queries would) and decides which entries share
    /// the walk.
    pub fn compile(
        &self,
        rel: &(impl ProbabilisticRelation + ?Sized),
    ) -> Result<BatchPlan, QueryError> {
        if self.entries.is_empty() {
            return Err(QueryError::EmptyBatch);
        }
        let mut resolved = Vec::with_capacity(self.entries.len());
        for entry in &self.entries {
            let algorithm = entry.resolve_algorithm(rel)?;
            resolved.push((algorithm, route(entry.semantics(), algorithm)));
        }
        Ok(BatchPlan { resolved })
    }

    /// Runs every query, sharing one score-order walk between the entries
    /// the plan routes as [`BatchRoute::Shared`]. Results are in entry
    /// order and answer-equivalent to running each entry individually.
    ///
    /// Any per-entry failure — an unresolvable algorithm or a failing
    /// individually-evaluated entry — fails the whole batch; serving
    /// layers that must keep one bad query from poisoning a flush use
    /// [`QueryBatch::run_isolated`] instead.
    pub fn run(
        &self,
        rel: &(impl ProbabilisticRelation + ?Sized),
    ) -> Result<Vec<RankedResult>, QueryError> {
        let plan = self.compile(rel)?;
        let resolved: Vec<Result<(Algorithm, BatchRoute), QueryError>> =
            plan.resolved.iter().map(|&r| Ok(r)).collect();
        self.execute(rel, &resolved, true).into_iter().collect()
    }

    /// Runs every query with **per-entry error isolation**: each entry
    /// resolves, routes, and (when necessary) falls back independently, so
    /// one incompatible or failing query yields an `Err` in *its* slot
    /// while every other entry still shares the walk. Results are in entry
    /// order; an empty batch returns an empty vector (a serving layer never
    /// flushes an empty queue, so there is no entry to report
    /// [`QueryError::EmptyBatch`] through).
    ///
    /// Ok entries are answer-identical to what [`QueryBatch::run`] produces
    /// for a batch containing only the valid queries.
    pub fn run_isolated(
        &self,
        rel: &(impl ProbabilisticRelation + ?Sized),
    ) -> Vec<Result<RankedResult, QueryError>> {
        let resolved: Vec<Result<(Algorithm, BatchRoute), QueryError>> = self
            .entries
            .iter()
            .map(|e| {
                e.resolve_algorithm(rel)
                    .map(|a| (a, route(e.semantics(), a)))
            })
            .collect();
        self.execute(rel, &resolved, false)
    }

    /// The shared execution core of [`QueryBatch::run`] and
    /// [`QueryBatch::run_isolated`]: entries whose resolution failed carry
    /// their error through; the rest share one walk where routed.
    /// `fail_fast` stops at the first errored entry (the all-or-nothing
    /// `run` path discards everything after it anyway), leaving the
    /// returned vector short.
    fn execute(
        &self,
        rel: &(impl ProbabilisticRelation + ?Sized),
        resolved: &[Result<(Algorithm, BatchRoute), QueryError>],
        fail_fast: bool,
    ) -> Vec<Result<RankedResult, QueryError>> {
        // Assemble the shared-walk spec from the resolvable Shared entries.
        // Entries whose cancellation token already tripped are answered
        // `TimedOut` without joining the walk (or evaluating at all).
        let mut spec = SharedWalkSpec {
            requests: Vec::new(),
            threads: self.threads,
            cancel: None,
        };
        let mut request_of = vec![usize::MAX; self.entries.len()];
        let mut expired = vec![false; self.entries.len()];
        let mut shared_tokens: Vec<CancelToken> = Vec::new();
        let mut shared_untracked = 0usize;
        for (i, entry) in self.entries.iter().enumerate() {
            if entry.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                expired[i] = true;
                continue;
            }
            if let Ok((algorithm, BatchRoute::Shared)) = resolved[i] {
                request_of[i] = spec.requests.len();
                spec.requests
                    .push(shared_request(entry.semantics(), algorithm));
                match &entry.cancel {
                    Some(token) => shared_tokens.push(token.clone()),
                    None => shared_untracked += 1,
                }
            }
        }
        // The walk aborts only once *every* consumer has cancelled — with
        // any token-less consumer aboard it can never be abandoned.
        if shared_untracked == 0 && !shared_tokens.is_empty() {
            spec.cancel = Some(CancelToken::all_of(shared_tokens));
        }

        // One walk serves every shared entry; `None` (no backend kernel, or
        // a walk abandoned because every consumer cancelled) demotes them
        // all to individual evaluation. In isolated mode a panicking walk is
        // caught and demoted the same way: each entry then re-runs (and
        // re-panics) alone, so the failure lands on the culpable entries as
        // [`QueryError::Internal`] instead of unwinding through the caller.
        let walk = if spec.requests.is_empty() {
            None
        } else if fail_fast {
            rel.run_shared_walk(&spec)
        } else {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rel.run_shared_walk(&spec)))
                .unwrap_or(None)
        };
        let (mut answers, stats, walk_seconds, consumers) = match walk {
            Some(out) => {
                let consumers = out.answers.len();
                (
                    out.answers.into_iter().map(Some).collect::<Vec<_>>(),
                    out.stats,
                    out.walk_seconds,
                    consumers,
                )
            }
            None => (Vec::new(), None, 0.0, 0),
        };

        // Take every answered entry's walk answer up front: per-entry
        // finalization (value vector + ranking construction) is
        // independent O(n)–O(n·log n) work that dominates the post-walk
        // wall on multi-entry batches over large relations, so it fans
        // out over scoped threads under the same opt-in contract as the
        // shard-parallel walk (`parallel(t)` requested and every
        // worker's share clearing the parallel floor). Results scatter
        // back by entry index, so entry order is untouched.
        let cost = BatchCost {
            walk_seconds,
            consumers,
        };
        let n_rel = rel.n_tuples();
        let backend = rel.correlation_class();
        let mut jobs: Vec<(usize, Algorithm, SharedAnswer)> = Vec::new();
        for i in 0..self.entries.len() {
            if expired[i] || request_of[i] == usize::MAX || answers.is_empty() {
                continue;
            }
            if let Ok((algorithm, _)) = resolved[i] {
                if let Some(answer) = answers
                    .get_mut(request_of[i])
                    .and_then(std::option::Option::take)
                {
                    jobs.push((i, algorithm, answer));
                }
            }
        }
        let mut shared_results: Vec<Option<RankedResult>> =
            self.entries.iter().map(|_| None).collect();
        let finalize_threads =
            crate::parallel::effective_walk_threads(n_rel, self.threads).min(jobs.len().max(1));
        if finalize_threads > 1 {
            let mut buckets: Vec<Vec<(usize, Algorithm, SharedAnswer)>> =
                (0..finalize_threads).map(|_| Vec::new()).collect();
            for (j, job) in jobs.into_iter().enumerate() {
                buckets[j % finalize_threads].push(job);
            }
            let outs = std::thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        scope.spawn(move || {
                            bucket
                                .into_iter()
                                .map(|(i, algorithm, answer)| {
                                    (
                                        i,
                                        self.finalize_shared(
                                            &self.entries[i],
                                            algorithm,
                                            n_rel,
                                            backend,
                                            answer,
                                            cost,
                                            stats,
                                        ),
                                    )
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(std::thread::ScopedJoinHandle::join)
                    .collect::<Vec<_>>()
            });
            for out in outs {
                match out {
                    Ok(list) => {
                        for (i, r) in list {
                            shared_results[i] = Some(r);
                        }
                    }
                    // A finalize panic propagates exactly like the serial
                    // path's would (finalization is infallible assembly;
                    // a panic there is an internal bug, not an entry
                    // error).
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        } else {
            for (i, algorithm, answer) in jobs {
                shared_results[i] = Some(self.finalize_shared(
                    &self.entries[i],
                    algorithm,
                    n_rel,
                    backend,
                    answer,
                    cost,
                    stats,
                ));
            }
        }

        let mut results = Vec::with_capacity(self.entries.len());
        for (i, entry) in self.entries.iter().enumerate() {
            if expired[i] {
                results.push(Err(QueryError::TimedOut));
                if fail_fast {
                    break;
                }
                continue;
            }
            if let Err(e) = &resolved[i] {
                results.push(Err(e.clone()));
                if fail_fast {
                    break;
                }
                continue;
            }
            let result = match shared_results[i].take() {
                Some(result) => Ok(result),
                // Single-route entries (and every entry when the backend
                // has no shared walk) run as the equivalent single query —
                // in isolated mode with the panic caught, so a poisonous
                // entry fails alone instead of unwinding the flush.
                None if fail_fast => self.effective_single(entry).run(rel),
                None => {
                    let single = self.effective_single(entry);
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| single.run(rel)))
                        .unwrap_or_else(|payload| {
                            Err(QueryError::Internal {
                                reason: panic_reason(payload.as_ref()),
                            })
                        })
                }
            };
            let errored = result.is_err();
            results.push(result);
            if fail_fast && errored {
                break;
            }
        }
        results
    }

    /// The single-query form of an entry with batch-level defaults filled
    /// in (threads, `top_k`).
    fn effective_single(&self, entry: &RankQuery) -> RankQuery {
        let mut q = entry.clone();
        if q.top_k.is_none() {
            q.top_k = self.top_k;
        }
        if q.threads.is_none() {
            q.threads = self.threads;
        }
        q
    }

    /// Builds the [`RankedResult`] of a shared entry from its walk answer,
    /// mirroring the single-query value/ranking construction exactly. A
    /// requested `top_k` is **pushed down** into the ranking construction:
    /// only the best-`k` prefix is selected and sorted (the per-tuple
    /// values stay complete, like the single-query path), which is
    /// answer-identical to materialising the full ranking and truncating —
    /// pinned by `batch_top_k_pushdown_agrees_with_full_rankings` and the
    /// differential suite.
    #[allow(clippy::too_many_arguments)]
    fn finalize_shared(
        &self,
        entry: &RankQuery,
        algorithm: Algorithm,
        n: usize,
        backend: CorrelationClass,
        answer: SharedAnswer,
        cost: BatchCost,
        stats: Option<GfStats>,
    ) -> RankedResult {
        let finalize_start = Instant::now();
        let top_k = entry.top_k.or(self.top_k);
        // The pushdown cap: how much of the ranking to materialise.
        let cap = top_k.unwrap_or(n).min(n);
        let (values, ranking) = match (&entry.semantics, answer) {
            (Semantics::Prf(_), SharedAnswer::Complex(vals)) => {
                let ranking = Ranking::from_values_topk(
                    &vals,
                    entry.value_order.unwrap_or(ValueOrder::Magnitude),
                    cap,
                );
                (Values::Complex(vals), ranking)
            }
            (Semantics::Pt(_) | Semantics::Consensus(_), SharedAnswer::Complex(vals)) => {
                let ranking = Ranking::from_values_topk(
                    &vals,
                    entry.value_order.unwrap_or(ValueOrder::RealPart),
                    cap,
                );
                (Values::Complex(vals), ranking)
            }
            (Semantics::Prfe(_), SharedAnswer::Complex(vals)) => {
                let ranking = Ranking::from_values_topk(
                    &vals,
                    entry.value_order.unwrap_or(ValueOrder::Magnitude),
                    cap,
                );
                (Values::Complex(vals), ranking)
            }
            (Semantics::Prfe(_), SharedAnswer::Log(keys)) => {
                let ranking = Ranking::from_keys_topk(&keys, cap);
                (Values::LogDomain(keys), ranking)
            }
            (Semantics::Prfe(_), SharedAnswer::Scaled(vals)) => {
                let ranking = entry.rank_scaled_topk(&vals, ValueOrder::Magnitude, Some(cap));
                (Values::Scaled(vals), ranking)
            }
            (Semantics::ERank, SharedAnswer::Ranks(er)) => {
                // Negated so higher ranks better, like the single query.
                let vals: Vec<Complex> = er.iter().map(|&e| Complex::real(-e)).collect();
                let keys: Vec<f64> = er.into_iter().map(|e| -e).collect();
                (Values::Complex(vals), Ranking::from_keys_topk(&keys, cap))
            }
            (sem, ans) => unreachable!(
                "shared answer shape mismatch: {sem:?} got {}",
                match ans {
                    SharedAnswer::Complex(_) => "Complex",
                    SharedAnswer::Log(_) => "Log",
                    SharedAnswer::Scaled(_) => "Scaled",
                    SharedAnswer::Ranks(_) => "Ranks",
                }
            ),
        };

        let amortized = cost.amortized_seconds();
        let report = EvalReport {
            semantics: entry.semantics.name(),
            backend,
            algorithm,
            auto_selected: matches!(entry.algorithm, Algorithm::Auto),
            numeric_mode: values.numeric_mode(),
            kernel_seconds: amortized,
            total_seconds: amortized + finalize_start.elapsed().as_secs_f64(),
            truncated_to: top_k,
            // The walk's actual thread count — a per-entry `parallel` has
            // no effect on a walk shared with other entries.
            threads: self.threads,
            memory: stats,
            batch: Some(cost),
            serve: None,
        };
        RankedResult {
            values,
            ranking,
            set: None,
            report,
        }
    }
}

/// Decides whether a (semantics, resolved algorithm) pair can be served by
/// the shared walk.
fn route(semantics: &Semantics, algorithm: Algorithm) -> BatchRoute {
    match (semantics, algorithm) {
        (Semantics::Prf(_) | Semantics::Pt(_) | Semantics::Consensus(_), Algorithm::ExactGf) => {
            BatchRoute::Shared
        }
        (Semantics::Prfe(_), Algorithm::ExactGf | Algorithm::LogDomain | Algorithm::Scaled) => {
            BatchRoute::Shared
        }
        (Semantics::ERank, Algorithm::ExactGf) => BatchRoute::Shared,
        _ => BatchRoute::Single,
    }
}

/// The backend-facing request of a shared entry.
fn shared_request(semantics: &Semantics, algorithm: Algorithm) -> SharedRequest {
    match (semantics, algorithm) {
        (Semantics::Prf(w), _) => SharedRequest::Weight(w.clone()),
        (Semantics::Pt(h) | Semantics::Consensus(h), _) => {
            SharedRequest::Weight(Arc::new(crate::weights::StepWeight { h: *h }))
        }
        (Semantics::Prfe(alpha), Algorithm::ExactGf) => SharedRequest::PrfeComplex(*alpha),
        // Validated real ∈ [0, 1] by `resolve_algorithm`.
        (Semantics::Prfe(alpha), Algorithm::LogDomain) => SharedRequest::PrfeLog(alpha.re),
        (Semantics::Prfe(alpha), Algorithm::Scaled) => SharedRequest::PrfeScaled(*alpha),
        (Semantics::ERank, _) => SharedRequest::ExpectedRanks,
        (sem, alg) => unreachable!("unroutable shared entry: {sem:?} / {}", alg.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::TabulatedWeight;
    use prf_pdb::{AndXorTree, IndependentDb};

    fn db() -> IndependentDb {
        IndependentDb::from_pairs([
            (10.0, 0.4),
            (9.0, 0.45),
            (8.0, 0.8),
            (7.0, 0.95),
            (6.0, 0.3),
            (5.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn empty_batch_is_an_error() {
        assert_eq!(
            QueryBatch::new().run(&db()).unwrap_err(),
            QueryError::EmptyBatch
        );
        assert_eq!(
            QueryBatch::new().compile(&db()).unwrap_err(),
            QueryError::EmptyBatch
        );
    }

    #[test]
    fn plan_routes_shared_and_single() {
        let batch = QueryBatch::new()
            .add(Semantics::Pt(2))
            .add(Semantics::Prfe(Complex::real(0.9)))
            .add(Semantics::ERank)
            .add(Semantics::EScore)
            .add(Semantics::UTop(2))
            .add(Semantics::URank(2));
        let plan = batch.compile(&db()).unwrap();
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.route(0), BatchRoute::Shared);
        assert_eq!(plan.route(1), BatchRoute::Shared);
        assert_eq!(plan.route(2), BatchRoute::Shared);
        assert_eq!(plan.route(3), BatchRoute::Single);
        assert_eq!(plan.route(4), BatchRoute::Single);
        assert_eq!(plan.route(5), BatchRoute::Single);
        assert_eq!(plan.shared_consumers(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn batch_matches_single_queries_on_independent() {
        let db = db();
        let batch = QueryBatch::new()
            .add(Semantics::Pt(2))
            .add(Semantics::Pt(4))
            .add_query(RankQuery::prf(TabulatedWeight::from_real(&[2.0, 1.0, 0.5])))
            .add_query(RankQuery::prfe(0.8))
            .add(Semantics::ERank)
            .add(Semantics::EScore);
        let results = batch.run(&db).unwrap();
        let singles = [
            RankQuery::pt(2),
            RankQuery::pt(4),
            RankQuery::prf(TabulatedWeight::from_real(&[2.0, 1.0, 0.5])),
            RankQuery::prfe(0.8),
            RankQuery::erank(),
            RankQuery::escore(),
        ];
        for (got, q) in results.iter().zip(&singles) {
            let want = q.run(&db).unwrap();
            assert_eq!(
                got.ranking.order(),
                want.ranking.order(),
                "{}",
                want.report.semantics
            );
            if let (Some(g), Some(w)) = (got.values.as_complex(), want.values.as_complex()) {
                assert_eq!(g, w, "{}", want.report.semantics);
            }
        }
        // Shared entries carry cost attribution; Single entries do not.
        assert!(results[0].report.batch.is_some());
        assert_eq!(results[0].report.batch.unwrap().consumers, 5);
        assert!(results[5].report.batch.is_none());
    }

    #[test]
    fn batch_matches_single_queries_on_trees() {
        use prf_pdb::{NodeKind, TreeBuilder};
        let mut b = TreeBuilder::new(NodeKind::Xor);
        let root = b.root();
        let a = b.add_inner(root, NodeKind::And, 0.6).unwrap();
        b.add_leaf(a, 1.0, 10.0).unwrap();
        b.add_leaf(a, 1.0, 9.0).unwrap();
        b.add_leaf(root, 0.4, 8.0).unwrap();
        let tree = b.build().unwrap();

        let batch = QueryBatch::new()
            .add(Semantics::Pt(2))
            .add_query(RankQuery::prfe(0.7).algorithm(Algorithm::ExactGf))
            .add_query(RankQuery::prfe(0.7).algorithm(Algorithm::Scaled))
            .add(Semantics::ERank);
        let results = batch.run(&tree).unwrap();
        let pt = RankQuery::pt(2).run(&tree).unwrap();
        assert_eq!(
            results[0].values.as_complex().unwrap(),
            pt.values.as_complex().unwrap()
        );
        let prfe = RankQuery::prfe(0.7)
            .algorithm(Algorithm::ExactGf)
            .run(&tree)
            .unwrap();
        for (g, w) in results[1]
            .values
            .as_complex()
            .unwrap()
            .iter()
            .zip(prfe.values.as_complex().unwrap())
        {
            assert!(g.approx_eq(*w, 1e-12));
        }
        let er = RankQuery::erank().run(&tree).unwrap();
        assert_eq!(results[3].ranking.order(), er.ranking.order());
        // The tree walk reports evaluator memory.
        assert!(results[0].report.memory.is_some());
    }

    #[test]
    fn batch_top_k_defaults_and_overrides() {
        let db = db();
        let results = QueryBatch::new()
            .add(Semantics::Pt(3))
            .add_query(RankQuery::prfe(0.9).top_k(1))
            .top_k(2)
            .run(&db)
            .unwrap();
        assert_eq!(results[0].ranking.len(), 2); // batch default
        assert_eq!(results[1].ranking.len(), 1); // entry override wins
        assert_eq!(results[0].report.truncated_to, Some(2));
        assert_eq!(results[1].report.truncated_to, Some(1));
    }

    #[test]
    fn run_isolated_isolates_bad_entries() {
        let db = db();
        let results = QueryBatch::new()
            .add(Semantics::Pt(2))
            // Incompatible: PT has no log-domain algorithm.
            .add_query(RankQuery::pt(2).algorithm(Algorithm::LogDomain))
            .add_query(RankQuery::prfe(0.9))
            // Fails at evaluation time: k > n has no set answer.
            .add(Semantics::UTop(99))
            .run_isolated(&db);
        assert_eq!(results.len(), 4);
        assert!(matches!(
            results[1],
            Err(QueryError::IncompatibleAlgorithm { .. })
        ));
        assert!(matches!(results[3], Err(QueryError::NoSetAnswer)));
        // The good entries still share the walk and match their single
        // queries exactly.
        let pt = RankQuery::pt(2).run(&db).unwrap();
        let prfe = RankQuery::prfe(0.9).run(&db).unwrap();
        let got_pt = results[0].as_ref().unwrap();
        let got_prfe = results[2].as_ref().unwrap();
        assert_eq!(got_pt.values.as_complex(), pt.values.as_complex());
        assert_eq!(got_prfe.ranking.order(), prfe.ranking.order());
        assert_eq!(got_pt.report.batch.unwrap().consumers, 2);
        // An empty batch has no entry to report an error through.
        assert!(QueryBatch::new().run_isolated(&db).is_empty());
    }

    #[test]
    fn parallel_finalize_matches_serial() {
        // Large enough that `parallel(2)` clears the per-worker floor, so
        // the shared entries' finalization actually fans out over scoped
        // threads — the results must be bit-identical to the serial
        // batch (same assembly code on the same walk answers).
        let n = 2 * crate::parallel::PARALLEL_MIN_SHARD_TUPLES;
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let db = IndependentDb::from_pairs((0..n).map(|i| ((n - i) as f64, 0.05 + 0.9 * next())))
            .unwrap();
        assert_eq!(
            crate::parallel::effective_walk_threads(n, Some(2)),
            2,
            "gate must open at this size or the test exercises nothing"
        );
        let entries = || {
            vec![
                RankQuery::pt(3),
                RankQuery::prfe(0.9).algorithm(Algorithm::LogDomain),
                RankQuery::erank(),
            ]
        };
        let parallel = QueryBatch::new()
            .add_queries(entries())
            .parallel(2)
            .run(&db)
            .unwrap();
        let serial = QueryBatch::new().add_queries(entries()).run(&db).unwrap();
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(
                p.ranking.order(),
                s.ranking.order(),
                "{}",
                s.report.semantics
            );
            for pos in 0..p.ranking.len() {
                assert_eq!(p.ranking.key_at(pos), s.ranking.key_at(pos));
            }
            assert_eq!(p.values.len(), s.values.len());
        }
    }

    #[test]
    fn batch_top_k_pushdown_agrees_with_full_rankings() {
        // Every entry requests top_k, so each shared ranking is built by
        // partial selection — the result must be identical to the full
        // ranking truncated afterwards, across every answer shape.
        let db = db();
        let tree = AndXorTree::from_independent(&db);
        let entries = || {
            vec![
                RankQuery::pt(3),
                RankQuery::prfe(0.8).algorithm(Algorithm::ExactGf),
                RankQuery::prfe(0.8).algorithm(Algorithm::Scaled),
                RankQuery::erank(),
            ]
        };
        for k in [1usize, 2, 4, 100] {
            let pushed = QueryBatch::new()
                .add_queries(entries())
                .top_k(k)
                .run(&db)
                .unwrap();
            let full = QueryBatch::new().add_queries(entries()).run(&db).unwrap();
            for (p, f) in pushed.iter().zip(&full) {
                let mut truncated = f.ranking.clone();
                truncated.truncate(k);
                assert_eq!(p.ranking.order(), truncated.order(), "k={k}");
                for pos in 0..p.ranking.len() {
                    assert_eq!(p.ranking.key_at(pos), truncated.key_at(pos), "k={k}");
                }
                assert_eq!(p.values.len(), db.len(), "values stay complete");
            }
            // Log-domain PRFe only routes shared on the independent
            // backend; trees cover the Complex/Scaled/Ranks shapes.
            let pushed = QueryBatch::new()
                .add_queries(entries())
                .top_k(k)
                .run(&tree)
                .unwrap();
            let full = QueryBatch::new().add_queries(entries()).run(&tree).unwrap();
            for (p, f) in pushed.iter().zip(&full) {
                let mut truncated = f.ranking.clone();
                truncated.truncate(k);
                assert_eq!(p.ranking.order(), truncated.order(), "tree k={k}");
            }
        }
        // Log-domain answer shape on the independent fast path.
        let pushed = QueryBatch::new()
            .add_query(
                RankQuery::prfe(0.7)
                    .algorithm(Algorithm::LogDomain)
                    .top_k(2),
            )
            .run(&db)
            .unwrap();
        let single = RankQuery::prfe(0.7)
            .algorithm(Algorithm::LogDomain)
            .run(&db)
            .unwrap();
        assert_eq!(pushed[0].ranking.order(), &single.ranking.order()[..2]);
    }

    #[test]
    fn incompatible_entry_fails_the_whole_batch() {
        let err = QueryBatch::new()
            .add(Semantics::Pt(2))
            .add_query(RankQuery::pt(2).algorithm(Algorithm::LogDomain))
            .run(&db())
            .unwrap_err();
        assert!(matches!(err, QueryError::IncompatibleAlgorithm { .. }));
    }

    #[test]
    fn auto_resolution_matches_single_queries() {
        let tree = AndXorTree::from_independent(&db());
        let batch = QueryBatch::new()
            .add(Semantics::Prfe(Complex::real(0.5)))
            .add(Semantics::Pt(3));
        let plan = batch.compile(&tree).unwrap();
        for (i, q) in batch.queries().iter().enumerate() {
            assert_eq!(plan.algorithm(i), q.resolve_algorithm(&tree).unwrap());
        }
    }
}
