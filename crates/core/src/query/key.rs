//! Canonical cache keys for ranking queries.
//!
//! A serving layer that caches answers needs a notion of "the same query":
//! two [`RankQuery`]s must map to the same key **iff** they are guaranteed
//! to produce the same [`crate::query::RankedResult`] against the same
//! relation state. [`RankQuery::cache_key`] builds that canonical form:
//!
//! * the semantics parameters are normalized bit-exactly (`−0.0` folds
//!   into `+0.0` for PRFe's α, so the two spellings of zero share a key);
//! * the requested [`Algorithm`] is part of the key — an explicit
//!   `LogDomain` request and an `Auto` request are distinct keys even when
//!   `Auto` would resolve to `LogDomain`, because resolution depends on
//!   the relation and the report echoes the request;
//! * `top_k` and the [`ValueOrder`] override are part of the key (they
//!   change the answer); the `threads` hint and any cancellation token are
//!   **not** (they change only how the answer is computed);
//! * `PT(h)` and `Consensus(h)` keep **distinct** keys even though they
//!   are value-identical by Theorem 2 — the report's semantics echo
//!   differs, and a cache must return byte-faithful answers.
//!
//! Two query shapes are deliberately **uncacheable** (`cache_key` returns
//! `None`): PRFω with an arbitrary weight function (closure identity is
//! not canonicalizable) and an explicit [`Algorithm::DftApprox`] request
//! (its config carries free-form floats; the `Auto` route that *resolves*
//! to a DFT mixture stays cacheable because resolution is deterministic).

use crate::topk::ValueOrder;

use super::{Algorithm, RankQuery, Semantics};

/// Bit pattern of an `f64` with `−0.0` folded into `+0.0` and every NaN
/// folded into the one canonical quiet NaN: the two zeros compare equal
/// and evaluate identically, and all NaN payloads evaluate identically (a
/// degenerate PRFe α), so each family shares one key — distinct payloads
/// would otherwise hash to distinct `QueryKey`s that can never hit.
fn canon_bits(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else if x.is_nan() {
        f64::NAN.to_bits()
    } else {
        x.to_bits()
    }
}

/// The semantics part of a [`QueryKey`]: every cacheable variant with its
/// parameters in canonical (bit-exact, hashable) form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum SemanticsKey {
    /// PRFe(α), α as canonical `(re, im)` bit patterns.
    Prfe(u64, u64),
    Pt(usize),
    UTop(usize),
    URank(usize),
    ERank,
    EScore,
    Consensus(usize),
}

/// The algorithm part of a [`QueryKey`]: the *requested* strategy.
/// `DftApprox` has no entry — explicit requests are uncacheable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum AlgorithmKey {
    Auto,
    ExactGf,
    LogDomain,
    Scaled,
}

/// Canonical identity of a cacheable [`RankQuery`]: equal keys guarantee
/// value-identical answers against the same relation state (same
/// generation). Built by [`RankQuery::cache_key`]; opaque beyond
/// `Eq + Hash` — the serving layer uses it purely as a map key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    semantics: SemanticsKey,
    algorithm: AlgorithmKey,
    top_k: Option<usize>,
    value_order: Option<ValueOrder>,
}

impl RankQuery {
    /// The query's canonical cache key, or `None` for query shapes whose
    /// identity cannot be canonicalized — PRFω with an arbitrary weight
    /// function, and explicit [`Algorithm::DftApprox`] requests.
    ///
    /// Equal keys guarantee value-identical answers against the same
    /// relation state: the semantics parameters enter bit-exactly (with
    /// `−0.0` folded into `+0.0`), the *requested* algorithm, `top_k`,
    /// and any [`ValueOrder`] override are part of the key, while the
    /// `threads` hint and cancellation token (which change only how the
    /// answer is computed, never its value) are not. `PT(h)` and
    /// `Consensus(h)` keep distinct keys: value-identical by Theorem 2,
    /// but their reports echo different semantics names and a cached
    /// answer must be byte-faithful.
    pub fn cache_key(&self) -> Option<QueryKey> {
        let semantics = match self.semantics() {
            // An arbitrary ω is a closure behind an `Arc`: no canonical
            // identity, so no key — such queries always evaluate.
            Semantics::Prf(_) => return None,
            Semantics::Prfe(alpha) => {
                SemanticsKey::Prfe(canon_bits(alpha.re), canon_bits(alpha.im))
            }
            Semantics::Pt(h) => SemanticsKey::Pt(*h),
            Semantics::UTop(k) => SemanticsKey::UTop(*k),
            Semantics::URank(k) => SemanticsKey::URank(*k),
            Semantics::ERank => SemanticsKey::ERank,
            Semantics::EScore => SemanticsKey::EScore,
            Semantics::Consensus(k) => SemanticsKey::Consensus(*k),
        };
        let algorithm = match self.algorithm {
            Algorithm::Auto => AlgorithmKey::Auto,
            Algorithm::ExactGf => AlgorithmKey::ExactGf,
            Algorithm::LogDomain => AlgorithmKey::LogDomain,
            Algorithm::Scaled => AlgorithmKey::Scaled,
            // The mixture config carries free-form floats (oversampling,
            // damping); keep explicit requests out of the cache rather
            // than guess at their equivalence classes.
            Algorithm::DftApprox(_) => return None,
        };
        Some(QueryKey {
            semantics,
            algorithm,
            top_k: self.top_k,
            value_order: self.value_order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_numeric::Complex;

    use crate::weights::StepWeight;

    #[test]
    fn identical_queries_share_a_key() {
        let a = RankQuery::prfe(0.9).top_k(3);
        let b = RankQuery::prfe(0.9).top_k(3);
        assert_eq!(a.cache_key(), b.cache_key());
        assert!(a.cache_key().is_some());
    }

    #[test]
    fn parameters_that_change_the_answer_change_the_key() {
        let base = RankQuery::pt(2).cache_key().unwrap();
        assert_ne!(RankQuery::pt(3).cache_key().unwrap(), base);
        assert_ne!(RankQuery::pt(2).top_k(1).cache_key().unwrap(), base);
        assert_ne!(
            RankQuery::pt(2)
                .value_order(ValueOrder::RealPart)
                .cache_key()
                .unwrap(),
            base
        );
        assert_ne!(
            RankQuery::pt(2)
                .algorithm(Algorithm::ExactGf)
                .cache_key()
                .unwrap(),
            base
        );
    }

    #[test]
    fn threads_and_cancellation_do_not_change_the_key() {
        let base = RankQuery::prfe(0.5).cache_key().unwrap();
        assert_eq!(RankQuery::prfe(0.5).parallel(4).cache_key().unwrap(), base);
        assert_eq!(
            RankQuery::prfe(0.5)
                .cancel_token(crate::query::CancelToken::new())
                .cache_key()
                .unwrap(),
            base
        );
    }

    #[test]
    fn negative_zero_alpha_folds_into_positive_zero() {
        assert_eq!(
            RankQuery::prfe(0.0).cache_key(),
            RankQuery::prfe(-0.0).cache_key()
        );
        assert_eq!(
            RankQuery::prfe_complex(Complex::new(0.5, -0.0)).cache_key(),
            RankQuery::prfe_complex(Complex::new(0.5, 0.0)).cache_key()
        );
    }

    #[test]
    fn nan_alpha_payloads_fold_into_one_key() {
        // Every NaN bit pattern (signalling-ish payloads, negative NaN)
        // evaluates identically, so all must share one canonical key.
        let payload_nan = f64::from_bits(f64::NAN.to_bits() | 0xdead_beef);
        assert!(payload_nan.is_nan());
        assert_eq!(
            RankQuery::prfe(f64::NAN).cache_key(),
            RankQuery::prfe(payload_nan).cache_key()
        );
        assert_eq!(
            RankQuery::prfe(f64::NAN).cache_key(),
            RankQuery::prfe(-f64::NAN).cache_key()
        );
        assert_eq!(
            RankQuery::prfe_complex(Complex::new(0.5, f64::NAN)).cache_key(),
            RankQuery::prfe_complex(Complex::new(0.5, payload_nan)).cache_key()
        );
        // But NaN stays distinct from every number.
        assert_ne!(
            RankQuery::prfe(f64::NAN).cache_key(),
            RankQuery::prfe(0.0).cache_key()
        );
    }

    #[test]
    fn pt_and_consensus_stay_distinct() {
        // Value-identical by Theorem 2, but the report's semantics echo
        // differs — a cache hit must be byte-faithful.
        assert_ne!(
            RankQuery::pt(4).cache_key().unwrap(),
            RankQuery::consensus(4).cache_key().unwrap()
        );
    }

    #[test]
    fn uncacheable_shapes_have_no_key() {
        assert!(RankQuery::prf(StepWeight { h: 2 }).cache_key().is_none());
        assert!(RankQuery::pt(300)
            .algorithm(Algorithm::DftApprox(
                crate::mixture::DftApproxConfig::refined(40)
            ))
            .cache_key()
            .is_none());
    }
}
