//! The backend abstraction of the unified query engine.
//!
//! A [`ProbabilisticRelation`] is anything the engine can rank: it exposes
//! the scored-tuple view plus the evaluation primitives each numeric mode
//! needs. `prf-core` implements it for [`IndependentDb`] and [`AndXorTree`];
//! `prf-graphical` implements it for junction-tree-correlated relations via
//! its `NetworkRelation` ranking adapter.

use prf_numeric::{Complex, GfValue, Scaled};
use prf_pdb::{AndXorTree, IndependentDb, TupleId};

use super::batch::{SharedWalkOut, SharedWalkSpec};
use super::kernels;
use super::QueryError;
use crate::incremental::GfStats;
use crate::mixture::ExpMixture;
use crate::weights::{PositionWeight, WeightFunction};

/// How the tuples of a relation may be correlated — drives the `Auto`
/// algorithm heuristic and is echoed in the evaluation report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorrelationClass {
    /// Fully independent tuples.
    Independent,
    /// X-tuples: mutually exclusive groups, independent across groups
    /// (height-2 and/xor trees).
    XTuple,
    /// A general probabilistic and/xor tree.
    Tree,
    /// Arbitrary correlations through a graphical model.
    Graphical,
}

impl std::fmt::Display for CorrelationClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CorrelationClass::Independent => "independent",
            CorrelationClass::XTuple => "x-tuple",
            CorrelationClass::Tree => "and/xor tree",
            CorrelationClass::Graphical => "graphical",
        };
        f.write_str(s)
    }
}

/// World-count budget for the exact enumerated U-Top path on correlated
/// backends; beyond it the query reports `Unsupported`.
const UTOP_WORLD_LIMIT: usize = 1 << 20;

/// A probabilistic relation the [`super::RankQuery`] engine can evaluate.
///
/// Required methods cover the PRF family (every semantics of
/// [`super::Semantics`] reduces to them or to the optional hooks); the
/// provided defaults implement the remaining numeric modes and semantics in
/// terms of the required ones, so a minimal backend (like `prf-graphical`'s
/// adapter) only supplies exact PRFω/PRFe evaluation.
pub trait ProbabilisticRelation {
    /// Number of tuples.
    fn n_tuples(&self) -> usize;

    /// Tuple scores, indexed by tuple id.
    fn tuple_scores(&self) -> Vec<f64>;

    /// Tuple existence marginals `Pr(t ∈ pw)`, indexed by tuple id.
    fn tuple_marginals(&self) -> Vec<f64>;

    /// The correlation structure of this backend.
    fn correlation_class(&self) -> CorrelationClass;

    /// Exact PRF values `Υ_ω(t)` for every tuple (indexed by tuple id).
    /// `threads` requests data-parallel evaluation where the backend
    /// supports it (currently the general-tree expansion); backends are free
    /// to ignore it.
    fn prf_values(
        &self,
        omega: &(dyn WeightFunction + Sync),
        threads: Option<usize>,
    ) -> Vec<Complex>;

    /// Exact PRFe(α) values in plain complex arithmetic.
    fn prfe_values(&self, alpha: Complex) -> Vec<Complex>;

    /// [`Self::prf_values`] plus the evaluator's memory accounting, for
    /// backends whose kernels run the incremental generating-function
    /// engine (and/xor trees). The default reports no accounting.
    fn prf_values_with_stats(
        &self,
        omega: &(dyn WeightFunction + Sync),
        threads: Option<usize>,
    ) -> (Vec<Complex>, Option<GfStats>) {
        (self.prf_values(omega, threads), None)
    }

    /// [`Self::prfe_values`] plus the evaluator's memory accounting (see
    /// [`Self::prf_values_with_stats`]).
    fn prfe_values_with_stats(&self, alpha: Complex) -> (Vec<Complex>, Option<GfStats>) {
        (self.prfe_values(alpha), None)
    }

    /// [`Self::prfe_values_scaled`] plus the evaluator's memory accounting
    /// (see [`Self::prf_values_with_stats`]).
    fn prfe_values_scaled_with_stats(
        &self,
        alpha: Complex,
    ) -> (Vec<Scaled<Complex>>, Option<GfStats>) {
        (self.prfe_values_scaled(alpha), None)
    }

    /// PRFe(α) in scaled arithmetic (immune to underflow at any scale).
    /// The default wraps the plain values and therefore inherits their
    /// underflow — backends whose plain kernels underflow at scale must
    /// override. (`Algorithm::Auto` only selects `Scaled` for the
    /// Independent/XTuple/Tree classes, whose built-in backends override
    /// with genuinely scaled kernels; explicit `Scaled` on a minimal
    /// backend gives plain-complex precision.)
    fn prfe_values_scaled(&self, alpha: Complex) -> Vec<Scaled<Complex>> {
        self.prfe_values(alpha)
            .into_iter()
            .map(Scaled::new)
            .collect()
    }

    /// Log-domain PRFe ranking keys (`ln Υ`) for real `α ∈ [0, 1]`; `-∞`
    /// for tuples with `Υ = 0`. The default derives them from the scaled
    /// values' log₂ magnitudes.
    fn prfe_log_keys(&self, alpha: f64) -> Vec<f64> {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "log-domain PRFe requires α ∈ [0, 1], got {alpha}"
        );
        self.prfe_values_scaled(Complex::real(alpha))
            .iter()
            .map(|v| v.magnitude_key() * std::f64::consts::LN_2)
            .collect()
    }

    /// [`Self::prfe_log_keys`] together with the tuple order they induce
    /// (best first, ties by tuple id — the exact order
    /// [`crate::topk::Ranking::from_keys`] produces), when the backend can
    /// deliver that order cheaper than the engine's own sort. `None` (the
    /// default) sends the engine down the ordinary keys-then-sort path.
    ///
    /// [`crate::live::LiveRelation`] overrides this: after a reweight it
    /// re-ranks by an O(n) three-way merge (the mutation shifts every
    /// lower-scored key by one shared constant, so relative order inside
    /// the prefix and suffix survives), which is what makes
    /// requery-after-mutation asymptotically cheaper than rebuilding.
    fn prfe_log_ranked(&self, alpha: f64) -> Option<(Vec<f64>, Vec<TupleId>)> {
        let _ = alpha;
        None
    }

    /// Scaled Υ values of a PRFe mixture: `Υ(t) = Σ_l u_l·Υ_{PRFe(α_l)}(t)`.
    /// Backends get this for free on top of [`Self::prfe_values_scaled`]
    /// (it is the same accumulation `ExpMixture::upsilons_*` performs, so
    /// no override is needed).
    fn mixture_values(&self, mix: &ExpMixture) -> Vec<Scaled<Complex>> {
        let mut acc = vec![Scaled::<Complex>::zero(); self.n_tuples()];
        for &(u, alpha) in &mix.terms {
            let us = Scaled::new(u);
            let vals = self.prfe_values_scaled(alpha);
            for (a, v) in acc.iter_mut().zip(vals) {
                *a = a.add(&v.mul(&us));
            }
        }
        acc
    }

    /// Expected ranks (lower is better), or `None` when the backend has no
    /// exact expected-rank algorithm.
    fn expected_ranks(&self) -> Option<Vec<f64>> {
        None
    }

    /// The most probable top-k *set* (score-descending members, ln
    /// probability). `Err(Unsupported)` when the backend has no exact
    /// algorithm; `Err(NoSetAnswer)` when `k` exceeds the relation or no
    /// set has positive probability.
    fn most_probable_topk(&self, k: usize) -> Result<(Vec<TupleId>, f64), QueryError> {
        let _ = k;
        Err(QueryError::Unsupported {
            semantics: "U-Top",
            backend: self.correlation_class(),
        })
    }

    /// A monotone counter identifying the current *version* of the
    /// relation's data. Immutable backends return `0` forever (the
    /// default); mutable wrappers like [`crate::live::LiveRelation`] bump
    /// it on every applied [`crate::live::Mutation`]. A
    /// [`super::PreparedRelation`] compares this against the generation its
    /// cached state was built from and re-prepares on mismatch instead of
    /// silently serving a stale sort/plan/marginal cache.
    fn generation(&self) -> u64 {
        0
    }

    /// Serves every request of a [`super::QueryBatch`] from **one** shared
    /// score-order walk — one sort, one compiled evaluation plan, one
    /// leaf-relabeling pass with a shared truncated-polynomial evaluator
    /// plus one scalar evaluator per PRFe/E-Rank request. Returning `None`
    /// (the default) tells the batch engine this backend has no shared
    /// kernel; every entry is then evaluated as an individual query, so
    /// minimal backends stay correct without overriding.
    fn run_shared_walk(&self, spec: &SharedWalkSpec) -> Option<SharedWalkOut> {
        let _ = spec;
        None
    }

    /// Builds the backend's reusable evaluation state — the score sort,
    /// compiled [`crate::incremental::EvalPlan`], and whatever else the
    /// backend's walk kernels rebuild per call. A
    /// [`super::PreparedRelation`] calls this **once** at registration and
    /// threads the result through every later walk via
    /// [`Self::run_shared_walk_prepared`] / [`Self::prf_values_prepared`].
    /// The default is the empty state: backends without cacheable
    /// preparation stay correct (the prepared hooks fall back to the
    /// unprepared paths).
    fn prepare(&self) -> super::PreparedState {
        super::PreparedState::empty()
    }

    /// [`Self::run_shared_walk`] against state built by [`Self::prepare`].
    /// The default ignores the state and runs the unprepared walk, so
    /// backends that don't cache anything need no override; backends that
    /// do must also handle foreign state (another backend's, or empty) by
    /// falling back.
    fn run_shared_walk_prepared(
        &self,
        spec: &SharedWalkSpec,
        prep: &super::PreparedState,
    ) -> Option<SharedWalkOut> {
        let _ = prep;
        self.run_shared_walk(spec)
    }

    /// [`Self::prf_values_with_stats`] against state built by
    /// [`Self::prepare`] (same contract as
    /// [`Self::run_shared_walk_prepared`]).
    fn prf_values_prepared(
        &self,
        omega: &(dyn WeightFunction + Sync),
        threads: Option<usize>,
        prep: &super::PreparedState,
    ) -> (Vec<Complex>, Option<GfStats>) {
        let _ = prep;
        self.prf_values_with_stats(omega, threads)
    }

    /// Coefficients of the presence-count generating function
    /// `G(x) = Σ_a Pr(|pw ∩ R| = a)·xᵃ`, truncated to `cap` coefficients
    /// (degrees `< cap`; trailing zeros may be trimmed, missing entries are
    /// zero). This is the *monoid element* sharding composes: across
    /// independent score-contiguous shards the global GF is the product of
    /// the per-shard GFs, so [`crate::shard::ShardedRelation`] folds these
    /// to build each shard's incoming prefix state. `None` (the default)
    /// marks a backend that cannot be sharded over.
    fn presence_gf_coeffs(&self, cap: usize) -> Option<Vec<f64>> {
        let _ = cap;
        None
    }

    /// The presence-count generating function evaluated at the point `α`,
    /// in scaled arithmetic: `G(α) = Σ_a Pr(|pw ∩ R| = a)·αᵃ` — the scalar
    /// monoid element PRFe sharding composes (see
    /// [`Self::presence_gf_coeffs`]). `None` (the default) marks a backend
    /// that cannot be sharded over.
    fn presence_gf_point(&self, alpha: Complex) -> Option<Scaled<Complex>> {
        let _ = alpha;
        None
    }

    /// Bounded per-position candidate lists `Pr(r(t) = j)` for `j ≤ k` —
    /// the substrate of U-Rank. The default runs `k` PRF passes with the
    /// position-indicator weight `ω(i) = δ(i = j)` (the paper's reduction);
    /// backends override with single-pass kernels.
    fn positional_candidates(&self, k: usize) -> kernels::PositionalCandidates {
        let mut table = kernels::PositionalCandidates::new(k);
        for j in 1..=k {
            let vals = self.prf_values(&PositionWeight { j }, None);
            for (t, v) in vals.iter().enumerate() {
                table.push(j - 1, v.re, TupleId(t as u32));
            }
        }
        table
    }
}

impl ProbabilisticRelation for IndependentDb {
    fn n_tuples(&self) -> usize {
        self.len()
    }

    fn tuple_scores(&self) -> Vec<f64> {
        self.scores()
    }

    fn tuple_marginals(&self) -> Vec<f64> {
        self.probabilities()
    }

    fn correlation_class(&self) -> CorrelationClass {
        CorrelationClass::Independent
    }

    fn prf_values(
        &self,
        omega: &(dyn WeightFunction + Sync),
        _threads: Option<usize>,
    ) -> Vec<Complex> {
        crate::independent::prf_rank(self, omega)
    }

    fn prfe_values(&self, alpha: Complex) -> Vec<Complex> {
        crate::independent::prfe_rank(self, alpha)
    }

    fn prfe_values_scaled(&self, alpha: Complex) -> Vec<Scaled<Complex>> {
        crate::independent::prfe_rank_scaled(self, alpha)
    }

    fn prfe_log_keys(&self, alpha: f64) -> Vec<f64> {
        crate::independent::prfe_rank_log(self, alpha)
    }

    fn expected_ranks(&self) -> Option<Vec<f64>> {
        Some(kernels::expected_ranks_independent(self))
    }

    fn most_probable_topk(&self, k: usize) -> Result<(Vec<TupleId>, f64), QueryError> {
        kernels::most_probable_topk_independent(self, k).ok_or(QueryError::NoSetAnswer)
    }

    fn positional_candidates(&self, k: usize) -> kernels::PositionalCandidates {
        kernels::positional_candidates_independent(self, k)
    }

    fn run_shared_walk(&self, spec: &SharedWalkSpec) -> Option<SharedWalkOut> {
        crate::independent::batch_walk_independent(self, spec)
    }

    fn prepare(&self) -> super::PreparedState {
        super::PreparedState::independent(self.ids_by_score_desc())
    }

    fn run_shared_walk_prepared(
        &self,
        spec: &SharedWalkSpec,
        prep: &super::PreparedState,
    ) -> Option<SharedWalkOut> {
        match prep.independent_order() {
            Some(order) if order.len() == self.len() => {
                crate::independent::batch_walk_independent_prepared(self, spec, order)
            }
            _ => self.run_shared_walk(spec),
        }
    }

    fn presence_gf_coeffs(&self, cap: usize) -> Option<Vec<f64>> {
        let mut g = prf_numeric::Poly::one();
        for p in self.probabilities() {
            g.mul_linear_in_place(1.0 - p, p, cap.max(1));
        }
        Some(g.coeffs().to_vec())
    }

    fn presence_gf_point(&self, alpha: Complex) -> Option<Scaled<Complex>> {
        let mut g = Scaled::<Complex>::one();
        for p in self.probabilities() {
            g = g.mul(&Scaled::new(Complex::real(1.0 - p) + alpha * p));
        }
        Some(g)
    }

    fn prf_values_prepared(
        &self,
        omega: &(dyn WeightFunction + Sync),
        threads: Option<usize>,
        prep: &super::PreparedState,
    ) -> (Vec<Complex>, Option<GfStats>) {
        match prep.independent_order() {
            Some(order) if order.len() == self.len() => {
                let h = omega.truncation().unwrap_or(self.len());
                (
                    crate::independent::prf_rank_truncated_prepared(self, omega, h, order),
                    None,
                )
            }
            _ => self.prf_values_with_stats(omega, threads),
        }
    }
}

impl ProbabilisticRelation for AndXorTree {
    fn n_tuples(&self) -> usize {
        AndXorTree::n_tuples(self)
    }

    fn tuple_scores(&self) -> Vec<f64> {
        AndXorTree::scores(self).to_vec()
    }

    fn tuple_marginals(&self) -> Vec<f64> {
        self.marginals()
    }

    fn correlation_class(&self) -> CorrelationClass {
        if self.x_tuple_groups().is_some() {
            CorrelationClass::XTuple
        } else {
            CorrelationClass::Tree
        }
    }

    fn prf_values(
        &self,
        omega: &(dyn WeightFunction + Sync),
        threads: Option<usize>,
    ) -> Vec<Complex> {
        self.prf_values_with_stats(omega, threads).0
    }

    fn prfe_values(&self, alpha: Complex) -> Vec<Complex> {
        crate::tree::prfe_rank_tree(self, alpha)
    }

    fn prf_values_with_stats(
        &self,
        omega: &(dyn WeightFunction + Sync),
        threads: Option<usize>,
    ) -> (Vec<Complex>, Option<GfStats>) {
        // Priority: the O(n·h·log n) x-tuple fast path (when truncated and
        // applicable), then the requested parallel walk (gated — sharding
        // below `PARALLEL_MIN_SHARD_TUPLES` per shard loses to serial, so
        // small relations degrade to the serial route), then the serial
        // incremental walk.
        if omega.truncation().is_some() {
            if let Some(v) = crate::xtuple::prf_omega_rank_xtuple(self, omega) {
                return (v, None);
            }
        }
        match crate::parallel::effective_walk_threads(AndXorTree::n_tuples(self), threads) {
            t if t > 1 => {
                let (v, s) = crate::parallel::prf_rank_tree_parallel_stats(self, omega, t);
                (v, Some(s))
            }
            _ => {
                let (v, s) = crate::tree::prf_rank_tree_stats(self, omega);
                (v, Some(s))
            }
        }
    }

    fn prfe_values_with_stats(&self, alpha: Complex) -> (Vec<Complex>, Option<GfStats>) {
        let (v, s) = crate::tree::prfe_rank_tree_stats(self, alpha);
        (v, Some(s))
    }

    fn prfe_values_scaled(&self, alpha: Complex) -> Vec<Scaled<Complex>> {
        crate::tree::prfe_rank_tree_scaled(self, alpha)
    }

    fn prfe_values_scaled_with_stats(
        &self,
        alpha: Complex,
    ) -> (Vec<Scaled<Complex>>, Option<GfStats>) {
        let (v, s) = crate::tree::prfe_rank_tree_scaled_stats(self, alpha);
        (v, Some(s))
    }

    fn expected_ranks(&self) -> Option<Vec<f64>> {
        Some(crate::tree::expected_ranks_tree(self))
    }

    fn most_probable_topk(&self, k: usize) -> Result<(Vec<TupleId>, f64), QueryError> {
        if k == 0 || k > AndXorTree::n_tuples(self) {
            return Err(QueryError::NoSetAnswer);
        }
        let worlds =
            self.enumerate_worlds(UTOP_WORLD_LIMIT)
                .map_err(|_| QueryError::Unsupported {
                    semantics: "U-Top (exact enumeration exceeds the world budget)",
                    backend: self.correlation_class(),
                })?;
        kernels::most_probable_topk_enumerated(&worlds, AndXorTree::scores(self), k)
            .ok_or(QueryError::NoSetAnswer)
    }

    fn positional_candidates(&self, k: usize) -> kernels::PositionalCandidates {
        kernels::positional_candidates_tree(self, k)
    }

    fn run_shared_walk(&self, spec: &SharedWalkSpec) -> Option<SharedWalkOut> {
        // Sharding is *gated*, not merely clamped: setup pays one shared
        // prefix sweep plus a snapshot clone per worker, so below
        // `PARALLEL_MIN_SHARD_TUPLES` tuples per shard the parallel walk
        // loses to serial outright and the request degrades to the serial
        // route (identical answers, strictly less work).
        let n = AndXorTree::n_tuples(self);
        match crate::parallel::effective_walk_threads(n, spec.threads) {
            t if t > 1 => crate::parallel::batch_walk_tree_parallel(self, spec, t),
            _ => crate::tree::batch_walk_tree(self, spec),
        }
    }

    fn prepare(&self) -> super::PreparedState {
        if AndXorTree::n_tuples(self) == 0 {
            return super::PreparedState::empty();
        }
        super::PreparedState::tree(crate::tree::TreePrepared::new(self))
    }

    fn run_shared_walk_prepared(
        &self,
        spec: &SharedWalkSpec,
        prep: &super::PreparedState,
    ) -> Option<SharedWalkOut> {
        let n = AndXorTree::n_tuples(self);
        match prep.tree_prepared() {
            Some(tp) if tp.order.len() == n && n > 0 => {
                match crate::parallel::effective_walk_threads(n, spec.threads) {
                    t if t > 1 => {
                        crate::parallel::batch_walk_tree_parallel_prepared(self, spec, t, tp)
                    }
                    _ => crate::tree::batch_walk_tree_prepared(self, spec, tp),
                }
            }
            _ => self.run_shared_walk(spec),
        }
    }

    fn presence_gf_coeffs(&self, cap: usize) -> Option<Vec<f64>> {
        if AndXorTree::n_tuples(self) == 0 {
            return Some(vec![1.0]);
        }
        let g = self.generating_function(|_| prf_numeric::RankPoly::x().with_cap(cap.max(1)));
        Some(g.a.coeffs().to_vec())
    }

    fn presence_gf_point(&self, alpha: Complex) -> Option<Scaled<Complex>> {
        if AndXorTree::n_tuples(self) == 0 {
            return Some(Scaled::one());
        }
        Some(self.generating_function(|_| Scaled::new(alpha)))
    }

    fn prf_values_prepared(
        &self,
        omega: &(dyn WeightFunction + Sync),
        threads: Option<usize>,
        prep: &super::PreparedState,
    ) -> (Vec<Complex>, Option<GfStats>) {
        let n = AndXorTree::n_tuples(self);
        // Same priority order as the unprepared path: the x-tuple fast
        // path needs no plan, so preparation doesn't change its route.
        if omega.truncation().is_some() {
            if let Some(v) = crate::xtuple::prf_omega_rank_xtuple(self, omega) {
                return (v, None);
            }
        }
        match prep.tree_prepared() {
            Some(tp) if tp.order.len() == n && n > 0 => {
                match crate::parallel::effective_walk_threads(n, threads) {
                    t if t > 1 => {
                        let (v, s) = crate::parallel::prf_rank_tree_parallel_stats_prepared(
                            self, omega, t, tp,
                        );
                        (v, Some(s))
                    }
                    _ => {
                        let (v, s) = crate::tree::prf_rank_tree_stats_prepared(self, omega, tp);
                        (v, Some(s))
                    }
                }
            }
            _ => self.prf_values_with_stats(omega, threads),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::StepWeight;

    #[test]
    fn backends_report_their_class() {
        let db = IndependentDb::from_pairs([(10.0, 0.5), (5.0, 0.4)]).unwrap();
        assert_eq!(db.correlation_class(), CorrelationClass::Independent);
        let xt = AndXorTree::from_x_tuples(&[vec![(10.0, 0.5), (5.0, 0.4)]]).unwrap();
        assert_eq!(
            ProbabilisticRelation::correlation_class(&xt),
            CorrelationClass::XTuple
        );
    }

    #[test]
    fn trait_and_inherent_views_agree() {
        let db = IndependentDb::from_pairs([(10.0, 0.5), (5.0, 0.4), (1.0, 1.0)]).unwrap();
        assert_eq!(ProbabilisticRelation::n_tuples(&db), 3);
        assert_eq!(db.tuple_scores(), vec![10.0, 5.0, 1.0]);
        let direct = crate::independent::prf_rank(&db, &StepWeight { h: 2 });
        let via_trait = ProbabilisticRelation::prf_values(&db, &StepWeight { h: 2 }, None);
        assert_eq!(direct, via_trait);
    }

    #[test]
    fn default_positional_candidates_match_specialised() {
        let db = IndependentDb::from_pairs([
            (10.0, 0.4),
            (9.0, 0.45),
            (8.0, 0.8),
            (7.0, 0.95),
            (6.0, 0.3),
        ])
        .unwrap();
        // Compare the k-pass default against the single-pass kernel.
        struct Generic<'a>(&'a IndependentDb);
        impl ProbabilisticRelation for Generic<'_> {
            fn n_tuples(&self) -> usize {
                self.0.len()
            }
            fn tuple_scores(&self) -> Vec<f64> {
                self.0.scores()
            }
            fn tuple_marginals(&self) -> Vec<f64> {
                self.0.probabilities()
            }
            fn correlation_class(&self) -> CorrelationClass {
                CorrelationClass::Graphical
            }
            fn prf_values(
                &self,
                omega: &(dyn WeightFunction + Sync),
                threads: Option<usize>,
            ) -> Vec<Complex> {
                self.0.prf_values(omega, threads)
            }
            fn prfe_values(&self, alpha: Complex) -> Vec<Complex> {
                self.0.prfe_values(alpha)
            }
        }
        for k in [1usize, 3, 5] {
            let fast = db.positional_candidates(k).select_distinct();
            let slow = Generic(&db).positional_candidates(k).select_distinct();
            assert_eq!(
                fast.iter().map(|c| c.1).collect::<Vec<_>>(),
                slow.iter().map(|c| c.1).collect::<Vec<_>>(),
                "k={k}"
            );
        }
    }
}
